"""``repro.engine`` -- parallel, cached, fault-tolerant experiment runs.

The engine is the execution substrate under the heavy experiment paths
(wafer Monte Carlo, the DSE sweep, the figure/table pipeline):

- :class:`Job` + :class:`ChildSeed` -- declarative work units whose
  per-job seeds come from ``numpy.random.SeedSequence.spawn``, so
  serial and parallel runs agree bit-for-bit;
- :class:`Engine` -- a scheduler fanning jobs over a process pool with
  chunking, per-job timeouts, bounded retry with backoff, and graceful
  degradation to serial when workers die;
- :class:`ResultCache` -- a content-addressed on-disk cache keyed on
  function identity + params + seed + package version, making repeat
  figure/table/DSE runs near-instant;
- :mod:`~repro.engine.metrics` -- progress hooks and the data behind
  ``repro engine stats``.

Library call sites accept an ``engine=`` argument and fall back to the
process-wide default configured here (serial, cache off -- the exact
legacy behavior) so nothing changes unless asked to::

    from repro import engine
    engine.configure(jobs=4, cache=True)       # e.g. from the CLI
    summary = run_yield_study(..., seed=2022)  # now parallel + cached
"""

from repro.engine.cache import (  # noqa: F401
    CACHE_DIR_ENV,
    CACHE_SHARDS_ENV,
    ResultCache,
    ShardIndex,
    default_cache_dir,
    job_cache_key,
)
from repro.engine.executors import (  # noqa: F401
    Executor,
    ExecutorBroken,
    executor_names,
    make_executor,
)
from repro.engine.graph import (  # noqa: F401
    GraphError,
    JobNode,
)
from repro.engine.job import (  # noqa: F401
    ChildSeed,
    Job,
    as_child_seed,
    spawn_seeds,
)
from repro.engine.metrics import (  # noqa: F401
    EngineMetrics,
    load_last_run,
    progress_printer,
)
from repro.engine.registry import (  # noqa: F401
    function_identity,
    job_function,
    registered,
)
from repro.engine.scheduler import (  # noqa: F401
    Engine,
    EngineCancelled,
    EngineJobError,
    cancel_all_engines,
    live_engines,
    retry_delay_s,
)

__all__ = [
    "CACHE_DIR_ENV", "CACHE_SHARDS_ENV", "ChildSeed", "Engine",
    "EngineCancelled", "EngineJobError", "EngineMetrics", "Executor",
    "ExecutorBroken", "GraphError", "Job", "JobNode", "ResultCache",
    "ShardIndex", "as_child_seed", "cancel_all_engines", "configure",
    "current_engine", "default_cache_dir", "engine_or_default",
    "executor_names", "function_identity", "job_cache_key",
    "job_function", "live_engines", "load_last_run", "make_executor",
    "progress_printer", "registered", "reset", "retry_delay_s",
    "spawn_seeds",
]

#: Process-wide default configuration.  Serial and cache-less by
#: default so library imports behave exactly like the pre-engine code;
#: the CLI (and tests) opt in via :func:`configure`.
_DEFAULTS = {
    "jobs": 1,
    "cache": None,        # None | True | path | ResultCache
    "timeout": None,
    "retries": 2,
    "backoff": 0.05,
    "hooks": None,
    "executor": None,     # None/"local" | "steal" | "socket" | Executor
}
_config = dict(_DEFAULTS)
_default_engine = None


def configure(**overrides):
    """Update the process-wide default engine (e.g. ``jobs=4,
    cache=True``).  Returns the new default engine."""
    global _default_engine
    unknown = set(overrides) - set(_DEFAULTS)
    if unknown:
        raise TypeError(f"unknown engine options: {sorted(unknown)}")
    _config.update(overrides)
    _default_engine = None
    return current_engine()


def reset():
    """Restore the serial, cache-less default configuration."""
    global _default_engine
    _config.clear()
    _config.update(_DEFAULTS)
    _default_engine = None


def current_engine():
    """The lazily-built process-wide default :class:`Engine`."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine(**_config)
    return _default_engine


def engine_or_default(engine=None):
    """Call-site helper: an explicit engine wins, else the default."""
    return engine if engine is not None else current_engine()
