"""Registry of engine job functions.

Registration serves two purposes:

- **Stable cache identity.**  Cache keys embed the registered name and
  version rather than ``module.qualname``, so refactors that move a
  function do not invalidate its cached results -- while bumping
  ``version`` when the *math* changes forces recomputation.
- **Introspection.**  ``repro engine stats`` groups the on-disk cache by
  registered name, and the registry is the index of what can appear.

Functions are still pickled by reference for worker processes, so they
must remain importable module-level callables.
"""

from typing import Callable, Dict

#: name -> callable, populated at import time by :func:`job_function`.
_REGISTRY: Dict[str, Callable] = {}


def job_function(name, version="1"):
    """Decorator: register ``fn`` as an engine job function.

    ``name`` is a dotted namespace (``"fab.wafer_yield"``); ``version``
    is a cache salt -- bump it whenever the function's output for the
    same ``(params, seed)`` changes.
    """

    def decorate(fn):
        previous = _REGISTRY.get(name)
        if previous is not None and previous is not fn:
            raise ValueError(
                f"engine job function {name!r} registered twice"
            )
        fn.__engine_name__ = name
        fn.__engine_version__ = str(version)
        _REGISTRY[name] = fn
        return fn

    return decorate


def resolve(name):
    """Look up a registered job function by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown engine job function {name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        ) from None


def registered():
    """Snapshot of the registry ({name: callable})."""
    return dict(_REGISTRY)


def function_identity(fn):
    """(stable name, version) used in cache keys.

    Unregistered functions fall back to ``module.qualname`` with
    version ``"0"`` -- still deterministic, just refactor-fragile.
    """
    name = getattr(fn, "__engine_name__", None)
    if name is not None:
        return name, getattr(fn, "__engine_version__", "1")
    return f"{fn.__module__}.{fn.__qualname__}", "0"
