"""The ``repro worker join`` process: one cluster crew member.

Connects to a :class:`~repro.engine.executors.socketcluster.\
SocketClusterExecutor` coordinator, heartbeats once a second from a
background thread, and executes one job frame at a time.  For every
cache-keyed job the worker consults, in order:

1. its *local* :class:`~repro.engine.cache.ResultCache` (``--cache-dir``),
2. the coordinator's shared cache tier (``cache_get`` → blob on hit),
3. actual computation -- after which the digest-addressed blob is
   stored locally *and* shipped back (``cache_put``) so the next
   worker's miss is a hit.

The job frame carries the engine's observability context; spans and
metric deltas recorded here travel back in the result frame, which is
how a cross-node trace renders as one tree in ``repro client trace``.
"""

import os
import pickle
import socket
import threading
import time
import traceback

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.registry import function_identity
from repro.engine.executors.socketcluster import (
    HEARTBEAT_S,
    decode_blob,
    encode_blob,
    recv_frame,
    send_frame,
)


class _Link:
    """One coordinator connection: locked writes, single-threaded reads."""

    def __init__(self, sock):
        self.sock = sock
        self.write_lock = threading.Lock()
        self._rpc_seq = 0
        self.deferred = []  # control frames that arrived mid-RPC

    def send(self, frame):
        send_frame(self.sock, frame, lock=self.write_lock)

    def rpc(self, frame):
        """Send a request frame and wait for its ``rpc``-tagged reply.

        Only the main thread reads the socket, so interleaved frames
        here can only be control traffic (``pong``/``shutdown``),
        which is deferred for the main loop.
        """
        self._rpc_seq += 1
        rpc_id = self._rpc_seq
        self.send(dict(frame, rpc=rpc_id))
        while True:
            reply = recv_frame(self.sock)
            if reply.get("rpc") == rpc_id:
                return reply
            if reply.get("type") != "pong":
                self.deferred.append(reply)


def _cache_lookup(link, local_cache, fn_name, key, counters):
    """Resolve a cached value: local tier, then the coordinator."""
    if local_cache is not None:
        blob = local_cache.get_blob(fn_name, key)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                blob = None
            else:
                counters["local_hits"] += 1
                return True, value
    reply = link.rpc({"type": "cache_get", "fn": fn_name, "key": key})
    if reply.get("type") != "cache_hit":
        return False, None
    blob = decode_blob(reply["blob"])
    try:
        value = pickle.loads(blob)
    except Exception:
        return False, None
    counters["remote_hits"] += 1
    if local_cache is not None:
        local_cache.put_blob(fn_name, key, blob)
    return True, value


def _run_job_frame(link, local_cache, frame):
    """Execute one job frame; returns the result frame to send."""
    task_id = frame.get("task_id")
    try:
        payload, obs_ctx = pickle.loads(decode_blob(frame["blob"]))
    except Exception as exc:
        return {
            "type": "result", "task_id": task_id,
            "error": f"worker could not decode job: "
                     f"{type(exc).__name__}: {exc}",
        }
    if obs_ctx is not None:
        obs.enter_worker(obs_ctx)
    counters = {"local_hits": 0, "remote_hits": 0, "computed": 0}
    outcomes = []
    for entry in payload:
        fn, params, seed, label = entry[0], entry[1], entry[2], entry[3]
        key = entry[4] if len(entry) > 4 else None
        fn_name = function_identity(fn)[0]
        started = time.perf_counter()
        if key is not None:
            hit, value = _cache_lookup(
                link, local_cache, fn_name, key, counters
            )
            if hit:
                outcomes.append(
                    ("ok", value, time.perf_counter() - started)
                )
                continue
        try:
            with obs.span("engine.job", label=label, where="socket"):
                value = fn(params, seed)
        except Exception as exc:
            outcomes.append((
                "err", f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            ))
            continue
        counters["computed"] += 1
        outcomes.append(("ok", value, time.perf_counter() - started))
        if key is not None:
            try:
                blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            except Exception:
                continue  # unpicklable results stay compute-only
            if local_cache is not None:
                local_cache.put_blob(fn_name, key, blob,
                                     meta={"label": label})
            link.send({
                "type": "cache_put", "fn": fn_name, "key": key,
                "blob": encode_blob(blob), "meta": {"label": label},
            })
    obs_payload = obs.leave_worker() if obs_ctx is not None else None
    return {
        "type": "result", "task_id": task_id,
        "blob": encode_blob(pickle.dumps(
            (outcomes, obs_payload), pickle.HIGHEST_PROTOCOL
        )),
        **counters,
    }


def run_worker(host, port, cache_dir=None, heartbeat_s=HEARTBEAT_S,
               on_event=None):
    """Join a coordinator and serve jobs until it shuts us down.

    ``on_event(kind, detail)`` (optional) observes lifecycle moments
    (``joined``, ``job``, ``shutdown``) -- the CLI prints them.
    Returns the number of job frames served.
    """
    notify = on_event or (lambda kind, detail: None)
    sock = socket.create_connection((host, int(port)))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    link = _Link(sock)
    local_cache = ResultCache(cache_dir) if cache_dir else None
    link.send({
        "type": "hello", "pid": os.getpid(),
        "host": socket.gethostname(), "cache": bool(cache_dir),
    })

    stop = threading.Event()

    def _pinger():
        while not stop.wait(heartbeat_s):
            try:
                link.send({"type": "ping"})
            except OSError:
                return

    threading.Thread(target=_pinger, name="repro-worker-ping",
                     daemon=True).start()

    served = 0
    try:
        while True:
            if link.deferred:
                frame = link.deferred.pop(0)
            else:
                try:
                    frame = recv_frame(sock)
                except (EOFError, OSError):
                    break
            kind = frame.get("type")
            if kind == "welcome":
                notify("joined", {"worker_id": frame.get("worker_id")})
            elif kind == "job":
                try:
                    result = _run_job_frame(link, local_cache, frame)
                    link.send(result)
                except (EOFError, OSError):
                    break  # coordinator went away mid-job
                served += 1
                notify("job", {"task_id": frame.get("task_id")})
            elif kind == "shutdown":
                notify("shutdown", {})
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return served
