"""Multi-host backend: a stdlib-socket coordinator plus joinable workers.

The engine side (:class:`SocketClusterExecutor`) binds a TCP port and
accepts workers started with ``repro worker join <host:port>``
(:mod:`repro.engine.executors.worker`).  The protocol is length-prefixed
JSON frames (4-byte big-endian length, UTF-8 JSON body); binary values
(pickled payloads, cached result blobs) ride inside frames as base64.

Frame types
-----------
worker → coordinator: ``hello``, ``result``, ``cache_get``,
``cache_put``, ``ping``; coordinator → worker: ``welcome``, ``job``,
``cache_hit``, ``cache_miss``, ``pong``, ``shutdown``.

Fault model
-----------
One task is in flight per worker.  Workers heartbeat (``ping``) every
second; a worker that disconnects or goes silent past the dead-worker
window has its in-flight task requeued **exactly once** -- a second
loss converts the task to ``err`` outcomes so a poison job cannot
bounce around the cluster forever.  If no workers are connected for
``worker_wait_s``, pending work is surrendered via
:class:`~repro.engine.executors.base.ExecutorBroken` and the engine
degrades to serial.

Cache tier
----------
The coordinator exposes its :class:`~repro.engine.cache.ResultCache`
(shared index + shards) over ``cache_get``/``cache_put``: a worker
that misses locally asks the coordinator before computing, and ships
the digest-addressed blob back after computing, so one worker's miss
becomes every other worker's hit.  The engine's observability context
(including the W3C trace id) is pickled into each job frame, so spans
recorded on remote workers join the parent trace.
"""

import base64
import json
import pickle
import queue
import socket
import struct
import threading
import time
from collections import deque

from repro.engine.executors.base import (
    Executor,
    ExecutorBroken,
    register_executor,
)

#: Seconds between worker heartbeats.
HEARTBEAT_S = 1.0
#: A worker silent this long is declared dead (generous multiple of
#: the heartbeat so a busy host does not get its work stolen).
DEAD_AFTER_S = 30.0

_LEN = struct.Struct(">I")
#: Frames larger than this are protocol errors (64 MiB).
MAX_FRAME = 64 << 20


def send_frame(sock, obj, lock=None):
    """Serialize one frame; ``lock`` guards interleaved writers."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    data = _LEN.pack(len(body)) + body
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise EOFError("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock):
    """One decoded frame; raises ``EOFError`` on a closed peer."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise EOFError(f"oversized frame ({length} bytes)")
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def encode_blob(data):
    return base64.b64encode(data).decode("ascii")


def decode_blob(text):
    return base64.b64decode(text.encode("ascii"))


class _Task:
    __slots__ = ("task_id", "payload", "obs_ctx")

    def __init__(self, task_id, payload, obs_ctx):
        self.task_id = task_id
        self.payload = payload
        self.obs_ctx = obs_ctx


class _Worker:
    __slots__ = ("wid", "sock", "lock", "last_seen", "inflight", "info")

    def __init__(self, wid, sock, info):
        self.wid = wid
        self.sock = sock
        self.lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.inflight = None  # _Task | None
        self.info = info


class SocketClusterExecutor(Executor):
    """Coordinator for ``repro worker join`` workers."""

    name = "socket"
    wants_cache_keys = True

    def __init__(self, bind="127.0.0.1:0", min_workers=1,
                 worker_wait_s=60.0, cache=None, workers=None,
                 pool_factory=None, dead_after_s=DEAD_AFTER_S):
        # ``workers``/``pool_factory`` are accepted for interface
        # parity with the other backends; cluster size is whatever
        # joins.  ``min_workers`` only gates how long submit-time
        # waits tolerate an empty cluster.
        host, _, port = str(bind).partition(":")
        self._bind = (host or "127.0.0.1", int(port or 0))
        self.min_workers = max(1, int(min_workers))
        self.worker_wait_s = worker_wait_s
        self.dead_after_s = dead_after_s
        self.cache = cache
        self._listener = None
        self._accept_thread = None
        self._lock = threading.Lock()
        self._workers = {}            # wid -> _Worker
        self._next_wid = 0
        self._pending = deque()       # _Task
        self._results = queue.Queue()  # (task_id, outcomes, obs_payload)
        self._requeued = set()
        self._closing = False
        self._started_at = None
        self._last_worker_at = None
        self.requeues = 0
        self.remote_cache_hits = 0
        self.local_cache_hits = 0
        self.remote_computed = 0

    # -- lifecycle -----------------------------------------------------

    def start(self):
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._bind)
        listener.listen(16)
        self._listener = listener
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept",
            daemon=True,
        )
        self._accept_thread.start()

    @property
    def address(self):
        """``(host, port)`` the coordinator listens on (after start)."""
        self.start()
        return self._listener.getsockname()

    @property
    def workers(self):
        with self._lock:
            return len(self._workers)

    def preferred_chunk_size(self, njobs, workers):
        return 1

    # -- accept / per-worker handler ----------------------------------

    def _accept_loop(self):
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_worker, args=(sock,),
                name="repro-cluster-worker", daemon=True,
            ).start()

    def _serve_worker(self, sock):
        try:
            hello = recv_frame(sock)
        except (EOFError, OSError, ValueError):
            sock.close()
            return
        if hello.get("type") != "hello":
            sock.close()
            return
        with self._lock:
            wid = self._next_wid
            self._next_wid += 1
            worker = _Worker(wid, sock, {
                "pid": hello.get("pid"),
                "host": hello.get("host"),
                "has_cache": bool(hello.get("cache")),
            })
            self._workers[wid] = worker
            self._last_worker_at = time.monotonic()
        send_frame(sock, {"type": "welcome", "worker_id": wid},
                   lock=worker.lock)
        self._dispatch()
        try:
            while not self._closing:
                frame = recv_frame(sock)
                worker.last_seen = time.monotonic()
                self._handle_frame(worker, frame)
        except (EOFError, OSError, ValueError):
            pass
        finally:
            self._worker_died(worker)

    def _handle_frame(self, worker, frame):
        kind = frame.get("type")
        if kind == "result":
            self._handle_result(worker, frame)
        elif kind == "cache_get":
            self._handle_cache_get(worker, frame)
        elif kind == "cache_put":
            self._handle_cache_put(frame)
        elif kind == "ping":
            send_frame(worker.sock, {"type": "pong"}, lock=worker.lock)

    def _handle_result(self, worker, frame):
        with self._lock:
            task = worker.inflight
            worker.inflight = None
        if task is None or task.task_id != frame.get("task_id"):
            return  # stale result from a task already requeued
        if "error" in frame:
            outcomes = [("err", frame["error"], "")
                        for _ in task.payload]
            obs_payload = None
        else:
            try:
                outcomes, obs_payload = pickle.loads(
                    decode_blob(frame["blob"])
                )
            except Exception as exc:
                outcomes = [(
                    "err", f"undecodable result: {exc}", "",
                ) for _ in task.payload]
                obs_payload = None
        self.local_cache_hits += int(frame.get("local_hits", 0))
        self.remote_cache_hits += int(frame.get("remote_hits", 0))
        self.remote_computed += int(frame.get("computed", 0))
        self._results.put((task.task_id, outcomes, obs_payload))
        self._dispatch()

    def _handle_cache_get(self, worker, frame):
        blob = None
        if self.cache is not None:
            # The shared index tier says which function/shard recorded
            # the digest; the frame's fn is only a fallback probe.
            _fn, blob = self.cache.shared_lookup(
                frame.get("key"), fn_name=frame.get("fn")
            )
        if blob is None:
            reply = {"type": "cache_miss", "rpc": frame.get("rpc")}
        else:
            reply = {"type": "cache_hit", "rpc": frame.get("rpc"),
                     "blob": encode_blob(blob)}
        send_frame(worker.sock, reply, lock=worker.lock)

    def _handle_cache_put(self, frame):
        if self.cache is None:
            return
        try:
            self.cache.put_blob(
                frame.get("fn"), frame.get("key"),
                decode_blob(frame["blob"]), meta=frame.get("meta"),
            )
        except Exception:
            pass  # a failed share-back never fails the job

    # -- scheduling ----------------------------------------------------

    def submit(self, task_id, payload, obs_ctx=None):
        self.start()
        with self._lock:
            self._pending.append(_Task(task_id, payload, obs_ctx))
        self._dispatch()

    def _dispatch(self):
        sends = []
        with self._lock:
            for worker in self._workers.values():
                if worker.inflight is not None:
                    continue
                if not self._pending:
                    break
                task = self._pending.popleft()
                worker.inflight = task
                sends.append((worker, task))
        for worker, task in sends:
            blob = encode_blob(pickle.dumps(
                (task.payload, task.obs_ctx), pickle.HIGHEST_PROTOCOL
            ))
            try:
                send_frame(worker.sock, {
                    "type": "job", "task_id": task.task_id, "blob": blob,
                }, lock=worker.lock)
            except (OSError, ValueError):
                self._worker_died(worker)

    def _worker_died(self, worker):
        with self._lock:
            if self._workers.pop(worker.wid, None) is None:
                return  # already reaped by another path
            task, worker.inflight = worker.inflight, None
        try:
            worker.sock.close()
        except OSError:
            pass
        if task is None:
            self._dispatch()
            return
        if task.task_id in self._requeued:
            self._results.put((
                task.task_id,
                [("err", "socket worker died (twice) running job", "")
                 for _ in task.payload],
                None,
            ))
        else:
            self._requeued.add(task.task_id)
            self.requeues += 1
            with self._lock:
                self._pending.appendleft(task)
        self._dispatch()

    def _reap_silent_workers(self):
        now = time.monotonic()
        stale = [
            worker for worker in list(self._workers.values())
            if now - worker.last_seen > self.dead_after_s
        ]
        for worker in stale:
            self._worker_died(worker)

    def next_result(self, timeout):
        try:
            return self._results.get(timeout=timeout)
        except queue.Empty:
            pass
        self._reap_silent_workers()
        with self._lock:
            outstanding = bool(self._pending) or any(
                w.inflight is not None for w in self._workers.values()
            )
            have_workers = bool(self._workers)
        if outstanding and not have_workers:
            anchor = max(self._started_at or 0.0,
                         self._last_worker_at or 0.0)
            if time.monotonic() - anchor > self.worker_wait_s:
                raise ExecutorBroken(
                    f"no workers joined within {self.worker_wait_s:.0f}s",
                    lost=self._drain_lost(),
                )
        return None

    def _drain_lost(self):
        with self._lock:
            lost = [task.task_id for task in self._pending]
            self._pending.clear()
            for worker in self._workers.values():
                if worker.inflight is not None:
                    lost.append(worker.inflight.task_id)
                    worker.inflight = None
        return lost

    def shutdown(self):
        self._closing = True
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            try:
                send_frame(worker.sock, {"type": "shutdown"},
                           lock=worker.lock)
            except (OSError, ValueError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    def describe(self):
        with self._lock:
            members = [dict(w.info, worker_id=w.wid,
                            busy=w.inflight is not None)
                       for w in self._workers.values()]
        stats = {
            "executor": self.name,
            "workers": len(members),
            "members": members,
            "requeues": self.requeues,
            "remote_cache_hits": self.remote_cache_hits,
            "local_cache_hits": self.local_cache_hits,
            "remote_computed": self.remote_computed,
        }
        if self._listener is not None:
            stats["bind"] = "%s:%d" % self._listener.getsockname()[:2]
        return stats


register_executor("socket", SocketClusterExecutor)
