"""The executor contract: where engine jobs physically run.

The scheduler (:mod:`repro.engine.scheduler`) decides *what* to run and
in *which order*; an :class:`Executor` decides *where*.  The contract is
deliberately tiny so backends can range from an in-process pool to a
socket cluster:

- :meth:`Executor.submit` takes an opaque ``task_id``, a payload of
  ``(fn, params, seed, label, cache_key)`` tuples, and an optional obs
  context, and returns immediately;
- :meth:`Executor.next_result` blocks up to ``timeout`` seconds and
  returns one finished ``(task_id, outcomes, obs_payload)`` triple (or
  ``None`` on timeout), in *completion* order -- the scheduler
  reassembles submission order itself;
- a backend that loses work it cannot recover raises
  :class:`ExecutorBroken` carrying the lost task ids, and the scheduler
  degrades those tasks to serial execution.

Outcomes use the same shape everywhere: ``("ok", value, elapsed_s)`` or
``("err", message, traceback_text)``, one per payload entry, in payload
order.  Exceptions are flattened to strings on the worker side because
a raw exception object may itself fail to pickle on the way back.
"""

import time
import traceback

from repro import obs

#: Registered executor factories, keyed by spec name.
_REGISTRY = {}


class ExecutorBroken(RuntimeError):
    """The backend lost tasks it cannot recover (dead pool, no workers).

    ``lost`` holds the task ids whose results will never arrive; the
    scheduler re-runs them serially.
    """

    def __init__(self, reason, lost=()):
        super().__init__(reason)
        self.lost = list(lost)


def execute_payload(payload, obs_ctx=None):
    """Worker-side entry point: run one payload of job tuples.

    ``obs_ctx`` carries the parent's observability context
    (:func:`repro.obs.worker_context`); when present, each job runs
    under its own span and the worker's recorded spans and metric
    deltas travel back with the results.
    """
    if obs_ctx is not None:
        obs.enter_worker(obs_ctx)
    results = []
    for entry in payload:
        fn, params, seed, label = entry[0], entry[1], entry[2], entry[3]
        started = time.perf_counter()
        try:
            with obs.span("engine.job", label=label, where="pool"):
                value = fn(params, seed)
        except Exception as exc:
            results.append((
                "err",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            ))
        else:
            results.append(("ok", value, time.perf_counter() - started))
    return results, (obs.leave_worker() if obs_ctx is not None else None)


class Executor:
    """Abstract backend running payloads of engine jobs.

    Lifecycle: construct → :meth:`start` (idempotent) → any number of
    :meth:`submit`/:meth:`next_result` cycles → :meth:`shutdown`.  A
    single executor instance may serve many ``Engine.run`` calls; the
    scheduler namespaces task ids per run so late results from an
    abandoned (cancelled / timed-out) run are discarded on arrival.
    """

    #: Spec name (``local`` / ``steal`` / ``socket``).
    name = "?"
    #: True when the backend wants cache keys in payload entries even
    #: if the parent engine itself runs cache-less (remote workers keep
    #: their own cache tier keyed by the same digests).
    wants_cache_keys = False

    def start(self):
        """Bring up workers; idempotent."""
        raise NotImplementedError

    def submit(self, task_id, payload, obs_ctx=None):
        """Queue one payload; returns immediately."""
        raise NotImplementedError

    def next_result(self, timeout):
        """One finished ``(task_id, outcomes, obs_payload)`` or ``None``.

        Blocks at most ``timeout`` seconds so the scheduler can poll
        its cancel flag between waits.
        """
        raise NotImplementedError

    def shutdown(self):
        """Tear down workers; idempotent."""
        raise NotImplementedError

    @property
    def workers(self):
        """Current worker count (may change at runtime for clusters)."""
        return 1

    def preferred_chunk_size(self, njobs, workers):
        """Jobs per payload when the engine has no explicit setting."""
        return max(1, -(-njobs // (max(1, workers) * 4)))

    def describe(self):
        """Stats snapshot for ``repro engine stats`` / ``/v1/stats``."""
        return {"executor": self.name, "workers": self.workers}


def register_executor(name, factory):
    """Register ``factory(**options) -> Executor`` under ``name``."""
    _REGISTRY[name] = factory
    return factory


def executor_names():
    return sorted(_REGISTRY)


def make_executor(spec, **options):
    """Build an executor from a spec.

    ``spec`` is an :class:`Executor` instance (returned as-is), a
    registered name (``local`` / ``steal`` / ``socket``), or ``None``
    (the local default).  Unknown names raise ``ValueError`` listing
    the registered backends.
    """
    if isinstance(spec, Executor):
        return spec
    name = spec or "local"
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of "
            f"{', '.join(executor_names())}"
        ) from None
    return factory(**options)
