"""The default backend: a local :class:`ProcessPoolExecutor`.

This is the pre-refactor engine behavior, preserved exactly: payloads
go to ``pool.submit(execute_payload, ...)`` and results come back
through futures.  Completion order is surfaced through
``add_done_callback`` when the pool's futures support it; with a
minimal future (tests substitute fakes exposing only ``result()``),
the backend falls back to awaiting submissions in order, which is
also correct -- just less overlapped.
"""

import queue
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.engine.executors.base import (
    Executor,
    ExecutorBroken,
    execute_payload,
    register_executor,
)

#: Poll slice while waiting on a future without completion callbacks.
_WAIT_SLICE_S = 0.05


def _default_pool_factory(workers):
    return ProcessPoolExecutor(max_workers=workers)


class LocalPoolExecutor(Executor):
    """Process-pool backend on this host (the default)."""

    name = "local"

    def __init__(self, workers=1, pool_factory=None):
        self._workers = max(1, int(workers))
        self._pool_factory = pool_factory or _default_pool_factory
        self._pool = None
        self._futures = {}        # task_id -> future
        self._done = queue.Queue()  # task_ids, in completion order
        self._inorder = deque()   # task_ids lacking done callbacks

    @property
    def workers(self):
        return self._workers

    def start(self):
        if self._pool is None:
            self._pool = self._pool_factory(self._workers)

    def submit(self, task_id, payload, obs_ctx=None):
        self.start()
        args = (payload, obs_ctx) if obs_ctx is not None else (payload,)
        try:
            future = self._pool.submit(execute_payload, *args)
        except Exception as exc:
            raise ExecutorBroken(
                f"could not submit to pool: {exc}", lost=[task_id]
            ) from exc
        self._futures[task_id] = future
        callback = getattr(future, "add_done_callback", None)
        if callable(callback):
            callback(lambda _f, t=task_id: self._done.put(t))
        else:
            self._inorder.append(task_id)

    def next_result(self, timeout):
        if self._inorder:
            return self._next_inorder(timeout)
        try:
            task_id = self._done.get(timeout=timeout)
        except queue.Empty:
            return None
        future = self._futures.pop(task_id, None)
        if future is None:  # already abandoned by _broken()
            return None
        try:
            outcomes, obs_payload = future.result(timeout=0)
        except (BrokenProcessPool, OSError) as exc:
            raise self._broken(exc, also_lost=[task_id]) from exc
        return task_id, outcomes, obs_payload

    def _next_inorder(self, timeout):
        """Head-of-line wait for pools whose futures lack callbacks."""
        task_id = self._inorder[0]
        future = self._futures[task_id]
        try:
            outcomes, obs_payload = future.result(timeout=timeout)
        except FutureTimeoutError:
            return None
        except TypeError:
            # Minimal fakes take no timeout argument at all.
            try:
                outcomes, obs_payload = future.result()
            except (BrokenProcessPool, OSError) as exc:
                raise self._broken(exc) from exc
        except (BrokenProcessPool, OSError) as exc:
            raise self._broken(exc) from exc
        self._inorder.popleft()
        self._futures.pop(task_id, None)
        return task_id, outcomes, obs_payload

    def _broken(self, exc, also_lost=()):
        """A dead pool loses every outstanding task; drop the pool so
        the next :meth:`start` builds a fresh one."""
        lost = list(also_lost) + list(self._futures)
        self._futures.clear()
        self._inorder.clear()
        self._done = queue.Queue()
        self.shutdown()
        return ExecutorBroken(
            f"{type(exc).__name__}: worker pool broke", lost=lost
        )

    def shutdown(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except TypeError:  # fakes with a bare shutdown()
                pool.shutdown()
            except Exception:
                pass

    def describe(self):
        return {
            "executor": self.name,
            "workers": self._workers,
            "running": self._pool is not None,
        }


register_executor("local", LocalPoolExecutor)
