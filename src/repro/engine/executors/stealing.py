"""Work-stealing backend for skewed job costs.

A fixed crew of worker processes, each fed over its own pipe with one
task in flight at a time.  The parent keeps a deque per worker; tasks
are dealt round-robin, and when a worker goes idle with an empty deque
it *steals half* of the longest backlog.  Long-tailed workloads (fault
campaigns where one wafer draws the pathological die) finish earlier
because idle workers drain the laggard's queue instead of barriering
on it.

A worker that dies mid-task gets its task requeued exactly once; a
second loss converts the task's jobs to ``err`` outcomes (the
scheduler then retries them serially under the normal retry budget).
"""

import multiprocessing
from collections import deque
from multiprocessing.connection import wait as connection_wait

from repro.engine.executors.base import (
    Executor,
    ExecutorBroken,
    execute_payload,
    register_executor,
)


def _steal_worker_main(conn):
    """Child process loop: one task at a time over the pipe."""
    # The fork inherits whatever cooperative signal handlers the parent
    # installed (repro.engine.signals); those swallow the SIGTERM that
    # multiprocessing sends daemon children at interpreter exit, which
    # would leave the parent's final join() hanging.  Workers take the
    # default behavior: die on TERM, let the loop's except catch INT.
    import signal as signal_module

    for signum in (signal_module.SIGTERM, signal_module.SIGINT):
        try:
            signal_module.signal(signum, signal_module.SIG_DFL)
        except (ValueError, OSError):
            pass
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, task_id, payload, obs_ctx = message
            outcomes, obs_payload = execute_payload(payload, obs_ctx)
            conn.send((task_id, outcomes, obs_payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass


class _Task:
    __slots__ = ("task_id", "payload", "obs_ctx")

    def __init__(self, task_id, payload, obs_ctx):
        self.task_id = task_id
        self.payload = payload
        self.obs_ctx = obs_ctx


class WorkStealingExecutor(Executor):
    """Per-worker deques with steal-half rebalancing."""

    name = "steal"

    def __init__(self, workers=2, pool_factory=None):
        # pool_factory is accepted (and ignored) so every backend can
        # be built from the same engine options.
        self._workers = max(1, int(workers))
        self._procs = []
        self._conns = []
        self._alive = []
        self._deques = []
        self._inflight = []      # per worker: _Task | None
        self._results = deque()
        self._deal = 0
        self._requeued = set()   # task ids already requeued once
        self.steals = 0
        self.requeues = 0

    @property
    def workers(self):
        return self._workers

    def preferred_chunk_size(self, njobs, workers):
        # Fine-grained tasks are the whole point: stealing cannot
        # rebalance work hidden inside a large chunk.
        return 1

    def start(self):
        if self._procs:
            return
        ctx = multiprocessing.get_context()
        for _ in range(self._workers):
            parent_end, child_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_steal_worker_main, args=(child_end,), daemon=True
            )
            proc.start()
            child_end.close()
            self._procs.append(proc)
            self._conns.append(parent_end)
            self._alive.append(True)
            self._deques.append(deque())
            self._inflight.append(None)

    def submit(self, task_id, payload, obs_ctx=None):
        self.start()
        if not any(self._alive):
            raise ExecutorBroken("all stealing workers died",
                                 lost=[task_id])
        slot = self._deal % self._workers
        self._deal += 1
        if not self._alive[slot]:
            slot = next(i for i, up in enumerate(self._alive) if up)
        self._deques[slot].append(_Task(task_id, payload, obs_ctx))
        self._dispatch()

    def _dispatch(self):
        for index in range(self._workers):
            if not self._alive[index] or self._inflight[index] is not None:
                continue
            task = self._take_for(index)
            if task is None:
                continue
            try:
                self._conns[index].send(
                    ("job", task.task_id, task.payload, task.obs_ctx)
                )
            except (OSError, ValueError, BrokenPipeError):
                self._worker_died(index, pending_task=task)
                continue
            self._inflight[index] = task

    def _take_for(self, index):
        """The worker's own queue first, else steal half the longest."""
        own = self._deques[index]
        if own:
            return own.popleft()
        victim = max(
            (i for i in range(self._workers) if i != index),
            key=lambda i: len(self._deques[i]),
            default=None,
        )
        if victim is None or not self._deques[victim]:
            return None
        take = (len(self._deques[victim]) + 1) // 2
        # Steal from the back (newest) end, classic thief protocol:
        # the victim keeps working the front of its own queue.
        for _ in range(take):
            own.appendleft(self._deques[victim].pop())
        self.steals += 1
        return own.popleft()

    def next_result(self, timeout):
        if self._results:
            return self._results.popleft()
        watch = [self._conns[i] for i in range(self._workers)
                 if self._alive[i] and self._inflight[i] is not None]
        if not watch:
            if any(task for task in self._inflight) or \
                    any(self._deques):
                self._dispatch()
                if not any(self._alive):
                    raise ExecutorBroken(
                        "all stealing workers died",
                        lost=self._drain_lost(),
                    )
            return self._results.popleft() if self._results else None
        for conn in connection_wait(watch, timeout=timeout):
            index = self._conns.index(conn)
            try:
                task_id, outcomes, obs_payload = conn.recv()
            except (EOFError, OSError):
                self._worker_died(index)
                continue
            self._inflight[index] = None
            self._results.append((task_id, outcomes, obs_payload))
        self._dispatch()
        return self._results.popleft() if self._results else None

    def _worker_died(self, index, pending_task=None):
        """Requeue the dead worker's task once; twice lost is an err."""
        self._alive[index] = False
        try:
            self._conns[index].close()
        except OSError:
            pass
        task = pending_task or self._inflight[index]
        self._inflight[index] = None
        # Strand the dead worker's backlog onto a survivor.
        backlog = self._deques[index]
        if any(self._alive):
            refuge = next(i for i, up in enumerate(self._alive) if up)
            while backlog:
                self._deques[refuge].append(backlog.popleft())
        if task is None:
            return
        if task.task_id in self._requeued or not any(self._alive):
            self._results.append((
                task.task_id,
                [("err", "worker process died while running job", "")
                 for _ in task.payload],
                None,
            ))
            return
        self._requeued.add(task.task_id)
        self.requeues += 1
        refuge = next(i for i, up in enumerate(self._alive) if up)
        self._deques[refuge].appendleft(task)

    def _drain_lost(self):
        lost = [task.task_id for task in self._inflight
                if task is not None]
        for backlog in self._deques:
            lost.extend(task.task_id for task in backlog)
            backlog.clear()
        self._inflight = [None] * self._workers
        return lost

    def shutdown(self):
        for index, conn in enumerate(self._conns):
            if self._alive[index]:
                try:
                    conn.send(("stop",))
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
        self._procs = []
        self._conns = []
        self._alive = []
        self._deques = []
        self._inflight = []

    def describe(self):
        return {
            "executor": self.name,
            "workers": self._workers,
            "alive": sum(1 for up in self._alive if up),
            "steals": self.steals,
            "requeues": self.requeues,
        }


register_executor("steal", WorkStealingExecutor)
