"""Pluggable execution backends for :class:`repro.engine.Engine`.

Three backends ship in-tree, all implementing the same small
:class:`~repro.engine.executors.base.Executor` contract:

=========  =========================================  =================
spec       class                                      good for
=========  =========================================  =================
``local``  :class:`~.local.LocalPoolExecutor`         one host
                                                      (the default)
``steal``  :class:`~.stealing.WorkStealingExecutor`   skewed job costs
``socket`` :class:`~.socketcluster.                   many hosts via
           SocketClusterExecutor`                     ``repro worker
                                                      join``
=========  =========================================  =================

Select one with ``Engine(executor="steal")``,
``engine.configure(executor="socket")``, or ``--executor`` on the CLI.
"""

from repro.engine.executors.base import (  # noqa: F401
    Executor,
    ExecutorBroken,
    execute_payload,
    executor_names,
    make_executor,
    register_executor,
)
from repro.engine.executors.local import LocalPoolExecutor  # noqa: F401
from repro.engine.executors.socketcluster import (  # noqa: F401
    SocketClusterExecutor,
)
from repro.engine.executors.stealing import (  # noqa: F401
    WorkStealingExecutor,
)

__all__ = [
    "Executor", "ExecutorBroken", "LocalPoolExecutor",
    "SocketClusterExecutor", "WorkStealingExecutor", "execute_payload",
    "executor_names", "make_executor", "register_executor",
]
