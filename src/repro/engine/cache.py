"""Content-addressed on-disk result cache.

A cache entry is addressed by the SHA-256 of a canonical JSON document
naming everything that determines the result:

- the job function's registered name and version
  (:func:`repro.engine.registry.function_identity`),
- the package version (``repro.__version__``),
- the canonicalized job parameters,
- the seed token (entropy + spawn key).

Layout on disk (default root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``)::

    <root>/<function-name>/<digest>.pkl    pickled result
    <root>/<function-name>/<digest>.json   human-readable entry metadata
    <root>/last_run.json                   metrics of the latest engine run

With ``shards > 1`` (constructor argument, ``$REPRO_CACHE_SHARDS``, or
a persisted ``shards.json``) entries spread over N key-hash shards, and
an append-only *index tier* records every put so a cluster coordinator
can answer "who has this digest" without walking the tree::

    <root>/shards.json                     {"shards": N}
    <root>/shard-03/<function-name>/<digest>.pkl
    <root>/index/shard-03.jsonl            one JSON line per put

Index lines are written with a single ``O_APPEND`` write (the same
crash-safety discipline as :func:`repro.obs.state.append_jsonl`): a
crash can tear at most the final line, and readers skip torn lines.
The index is advisory -- lookups verify the blob on disk -- so a stale
or missing index never serves wrong data.  A sharded cache still reads
legacy flat-layout entries, so enabling sharding on an existing cache
loses no hits.

Values that cannot be canonicalized deterministically (arbitrary objects
whose ``repr`` embeds addresses) are rejected with ``TypeError`` rather
than silently producing an unstable key; jobs with such parameters must
supply ``Job.cache_key`` themselves.
"""

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import shutil
import time
from pathlib import Path

import numpy as np

#: Environment override for the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment override for the shard count of new caches.
CACHE_SHARDS_ENV = "REPRO_CACHE_SHARDS"
#: Project-local default cache root.
DEFAULT_CACHE_DIRNAME = ".repro-cache"
#: File persisting a cache's shard count so reopens agree.
SHARDS_FILENAME = "shards.json"


def default_cache_dir():
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIRNAME


def _package_version():
    try:
        from repro import __version__
        return __version__
    except Exception:  # pragma: no cover - import cycle guard
        return "0"


def canonical(value):
    """Reduce ``value`` to a deterministic JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return {"__float__": repr(float(value))}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(value)).hexdigest()}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (frozenset, set)):
        items = [canonical(item) for item in value]
        return {"__set__": sorted(items, key=json.dumps)}
    if isinstance(value, dict):
        return {
            "__map__": sorted(
                ([canonical(k), canonical(v)] for k, v in value.items()),
                key=json.dumps,
            )
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    token = getattr(value, "cache_token", None)
    if callable(token):
        return {"__token__": canonical(token())}
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}; "
        "pass primitives/dataclasses or set Job.cache_key explicitly"
    )


def job_cache_key(job):
    """The content address of a job's result (hex digest)."""
    if job.cache_key is not None:
        return job.cache_key
    from repro.engine.registry import function_identity

    name, version = function_identity(job.fn)
    document = {
        "fn": name,
        "fn_version": version,
        "package": _package_version(),
        "params": canonical(dict(job.params)),
        "seed": job.seed.token() if job.seed is not None else None,
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _safe_name(name):
    return "".join(c if (c.isalnum() or c in "._-") else "_"
                   for c in name) or "anonymous"


class ShardIndex:
    """Append-only "who has what" ledger over a sharded cache.

    One JSONL file per shard under ``<root>/index/``; every
    :meth:`record` is a single ``O_APPEND`` write so concurrent
    writers (engine + cluster workers sharing a filesystem) interleave
    whole lines and a crash tears at most the last one.  Lookups are
    served from an mtime-validated in-memory load and are *advisory*:
    callers must verify the blob exists before trusting a hit.
    """

    def __init__(self, root):
        self.root = Path(root) / "index"
        self._loaded = None     # {key: {"fn", "shard", "bytes"}}
        self._loaded_stamp = None

    def _file(self, shard):
        return self.root / f"shard-{int(shard):02d}.jsonl"

    def record(self, shard, fn_name, key, nbytes):
        """Append one put record; IO errors are swallowed (the index
        is a hint tier, never load-bearing for correctness)."""
        line = json.dumps(
            {"key": key, "fn": fn_name, "shard": int(shard),
             "bytes": int(nbytes), "t": time.time()},
            separators=(",", ":"),
        ) + "\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self._file(shard),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644,
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass

    def _stamp(self):
        try:
            return tuple(sorted(
                (path.name, path.stat().st_mtime_ns, path.stat().st_size)
                for path in self.root.glob("shard-*.jsonl")
            ))
        except OSError:
            return ()

    def load(self):
        """``{key: {"fn", "shard", "bytes"}}``, newest record wins."""
        stamp = self._stamp()
        if self._loaded is not None and stamp == self._loaded_stamp:
            return self._loaded
        mapping = {}
        for path in sorted(self.root.glob("shard-*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    record = json.loads(line)
                    mapping[record["key"]] = {
                        "fn": record["fn"],
                        "shard": record["shard"],
                        "bytes": record.get("bytes", 0),
                    }
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn/foreign line -- skip, never fail
        self._loaded = mapping
        self._loaded_stamp = stamp
        return mapping

    def lookup(self, key):
        """The recorded ``{"fn", "shard", "bytes"}`` for a digest."""
        return self.load().get(key)

    def __len__(self):
        return len(self.load())


class ResultCache:
    """Pickle-backed result store with hit/miss accounting.

    ``shards`` selects the N-way key-hash layout (see the module
    docstring); the default (``1``) is the exact legacy flat layout.
    A cache that was ever written sharded remembers its shard count in
    ``shards.json`` so later opens agree without repeating the option.
    """

    def __init__(self, root=None, shards=None):
        self.root = Path(root or default_cache_dir())
        self.shards = self._resolve_shards(shards)
        self.index = ShardIndex(self.root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._announced_shards = False

    def _resolve_shards(self, shards):
        if shards is None:
            persisted = self._read_persisted_shards()
            if persisted is not None:
                return persisted
            shards = os.environ.get(CACHE_SHARDS_ENV) or 1
        try:
            return max(1, int(shards))
        except (TypeError, ValueError):
            return 1

    def _read_persisted_shards(self):
        try:
            with open(self.root / SHARDS_FILENAME) as handle:
                return max(1, int(json.load(handle)["shards"]))
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            return None

    def _persist_shards(self):
        if self._announced_shards or self.shards <= 1:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.root / SHARDS_FILENAME
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w") as handle:
                json.dump({"shards": self.shards}, handle)
            os.replace(tmp, path)
            self._announced_shards = True
        except OSError:
            pass

    # -- addressing ----------------------------------------------------

    def shard_of(self, key):
        """Which shard a digest lives in (``0`` when unsharded)."""
        if self.shards <= 1:
            return 0
        try:
            bucket = int(str(key)[:8], 16)
        except ValueError:
            bucket = int.from_bytes(
                hashlib.sha256(str(key).encode("utf-8")).digest()[:4],
                "big",
            )
        return bucket % self.shards

    def _shard_dir(self, shard):
        if self.shards <= 1:
            return self.root
        return self.root / f"shard-{int(shard):02d}"

    def _paths(self, fn_name, key):
        directory = (self._shard_dir(self.shard_of(key))
                     / _safe_name(fn_name))
        return directory / f"{key}.pkl", directory / f"{key}.json"

    def _legacy_paths(self, fn_name, key):
        directory = self.root / _safe_name(fn_name)
        return directory / f"{key}.pkl", directory / f"{key}.json"

    def _candidate_paths(self, fn_name, key):
        primary = self._paths(fn_name, key)
        yield primary
        legacy = self._legacy_paths(fn_name, key)
        if legacy[0] != primary[0]:
            yield legacy

    # -- lookup / store ------------------------------------------------

    def get(self, fn_name, key):
        """(hit, value); a corrupt or unreadable entry counts as a miss.

        A *corrupt* entry (the pickle exists but does not deserialize --
        truncated by a crash mid-write, or referencing symbols this
        checkout no longer has) is quarantined: both the ``.pkl`` and
        its ``.json`` metadata are deleted so the next ``put`` starts
        from a clean slot instead of shadowing good data with bad.
        A sharded cache falls back to the legacy flat path, so turning
        sharding on over an existing cache keeps its hits.
        """
        for data_path, meta_path in self._candidate_paths(fn_name, key):
            try:
                with open(data_path, "rb") as handle:
                    value = pickle.load(handle)
            except OSError:
                continue
            except (pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, ValueError):
                self._quarantine(fn_name, data_path, meta_path)
                self.misses += 1
                return False, None
            self.hits += 1
            # Mark the entry recently-used so :meth:`gc` evicts cold
            # entries first (mtime is the LRU clock; atime is
            # unreliable on noatime/relatime mounts).
            try:
                os.utime(data_path)
            except OSError:
                pass
            return True, value
        self.misses += 1
        return False, None

    def _quarantine(self, fn_name, data_path, meta_path):
        self.corrupt += 1
        for path in (data_path, meta_path):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            from repro import obs
            if obs.active():
                obs.registry().counter(
                    "engine_cache_corrupt_total",
                    "Corrupt cache entries quarantined",
                ).inc(fn=fn_name)
        except Exception:  # pragma: no cover - obs must never break IO
            pass

    def put(self, fn_name, key, value, meta=None):
        """Atomically store a result (tmp file + rename)."""
        return self._store(
            fn_name, key, meta,
            lambda handle: pickle.dump(
                value, handle, pickle.HIGHEST_PROTOCOL
            ),
        )

    def put_blob(self, fn_name, key, blob, meta=None):
        """Store an already-pickled result blob (the wire format the
        cluster ships between workers); same atomicity as :meth:`put`."""
        return self._store(
            fn_name, key, meta, lambda handle: handle.write(blob)
        )

    def _store(self, fn_name, key, meta, write):
        data_path, meta_path = self._paths(fn_name, key)
        try:
            data_path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        tmp = data_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                write(handle)
            os.replace(tmp, data_path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError):
            tmp.unlink(missing_ok=True)
            # Never leave metadata describing a value that was not
            # stored: a stale .json next to no (or an older) .pkl lies
            # about what the entry holds.
            if not data_path.exists():
                try:
                    meta_path.unlink()
                except OSError:
                    pass
            return False
        entry_meta = {"fn": fn_name, "key": key,
                      "created": time.time()}
        entry_meta.update(meta or {})
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(meta_tmp, "w") as handle:
                json.dump(entry_meta, handle, indent=2, default=str)
            os.replace(meta_tmp, meta_path)
        except OSError:
            try:
                meta_tmp.unlink()
            except OSError:
                pass
        self._persist_shards()
        try:
            nbytes = data_path.stat().st_size
        except OSError:
            nbytes = 0
        self.index.record(self.shard_of(key), fn_name, key, nbytes)
        return True

    def get_blob(self, fn_name, key):
        """The raw pickled bytes for an entry, or ``None`` on miss.

        This is the cluster's cache-sharing read: no deserialization
        (the coordinator relays bytes it never needs to understand)
        and no hit/miss accounting (session counters stay about *this*
        process's lookups).
        """
        for data_path, _meta in self._candidate_paths(fn_name, key):
            try:
                with open(data_path, "rb") as handle:
                    return handle.read()
            except OSError:
                continue
        return None

    def shared_lookup(self, key, fn_name=None):
        """Resolve a digest through the index tier: ``(fn, blob)``.

        The index says which function/shard recorded the digest; the
        filesystem is the authority (a stale index entry whose blob is
        gone is a miss).  ``fn_name`` is a fallback probe for entries
        that predate the index.
        """
        record = self.index.lookup(key)
        if record is not None:
            blob = self.get_blob(record["fn"], key)
            if blob is not None:
                return record["fn"], blob
        if fn_name is not None:
            blob = self.get_blob(fn_name, key)
            if blob is not None:
                return fn_name, blob
        return None, None

    def has(self, fn_name, key):
        return any(
            data.exists()
            for data, _meta in self._candidate_paths(fn_name, key)
        )

    # -- maintenance / reporting ---------------------------------------

    def clear(self):
        """Delete every cache entry (and the last-run metrics)."""
        if self.root.exists():
            shutil.rmtree(self.root)

    def gc(self, max_bytes):
        """Evict least-recently-used entries down to ``max_bytes``.

        A long-lived service accumulates results without bound; this
        walks every ``.pkl`` entry, sorts by mtime (refreshed on every
        :meth:`get` hit, so it is an LRU clock), and deletes the
        coldest entries (data + metadata) until the total is within
        budget.  Returns ``{"before_bytes", "after_bytes",
        "evicted_entries", "evicted_bytes", "max_bytes"}``.
        """
        max_bytes = max(0, int(max_bytes))
        records = []
        for _shard, _fn_name, data_path in self._scan():
            try:
                stat = data_path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime, stat.st_size, data_path))
        total = sum(size for _, size, _ in records)
        before = total
        evicted = 0
        evicted_bytes = 0
        for _, size, data_path in sorted(records, key=lambda r: r[0]):
            if total <= max_bytes:
                break
            for path in (data_path, data_path.with_suffix(".json")):
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= size
            evicted += 1
            evicted_bytes += size
        return {
            "before_bytes": before,
            "after_bytes": total,
            "evicted_entries": evicted,
            "evicted_bytes": evicted_bytes,
            "max_bytes": max_bytes,
        }

    def _scan(self):
        """Yield ``(shard, fn_name, data_path)`` for every entry.

        Walks both the sharded layout and legacy flat directories;
        skips the index tier and the service artifact store, which
        share the root but are not result entries.
        """
        if not self.root.exists():
            return
        for child in sorted(self.root.iterdir()):
            if not child.is_dir() or child.name in ("index", "artifacts"):
                continue
            if child.name.startswith("shard-"):
                try:
                    shard = int(child.name.split("-", 1)[1])
                except ValueError:
                    continue
                for fn_dir in sorted(child.iterdir()):
                    if not fn_dir.is_dir():
                        continue
                    for data_path in fn_dir.glob("*.pkl"):
                        yield shard, fn_dir.name, data_path
            else:
                for data_path in child.glob("*.pkl"):
                    yield 0, child.name, data_path

    def stats(self):
        """{function name: {"entries": n, "bytes": total}} plus totals,
        and (for sharded caches) a per-shard entry/byte breakdown."""
        by_fn = {}
        by_shard = {}
        total_entries = 0
        total_bytes = 0
        for shard, fn_name, data_path in self._scan():
            try:
                size = data_path.stat().st_size
            except OSError:
                continue
            fn_slot = by_fn.setdefault(fn_name,
                                       {"entries": 0, "bytes": 0})
            fn_slot["entries"] += 1
            fn_slot["bytes"] += size
            shard_slot = by_shard.setdefault(
                shard, {"entries": 0, "bytes": 0}
            )
            shard_slot["entries"] += 1
            shard_slot["bytes"] += size
            total_entries += 1
            total_bytes += size
        return {
            "root": str(self.root),
            "functions": by_fn,
            "entries": total_entries,
            "bytes": total_bytes,
            "cache_bytes": total_bytes,
            "shards": self.shards,
            "per_shard": {
                f"shard-{shard:02d}": counts
                for shard, counts in sorted(by_shard.items())
            },
            "index_entries": len(self.index),
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_corrupt": self.corrupt,
        }

    @property
    def hit_rate(self):
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0
