"""Content-addressed on-disk result cache.

A cache entry is addressed by the SHA-256 of a canonical JSON document
naming everything that determines the result:

- the job function's registered name and version
  (:func:`repro.engine.registry.function_identity`),
- the package version (``repro.__version__``),
- the canonicalized job parameters,
- the seed token (entropy + spawn key).

Layout on disk (default root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``)::

    <root>/<function-name>/<digest>.pkl    pickled result
    <root>/<function-name>/<digest>.json   human-readable entry metadata
    <root>/last_run.json                   metrics of the latest engine run

Values that cannot be canonicalized deterministically (arbitrary objects
whose ``repr`` embeds addresses) are rejected with ``TypeError`` rather
than silently producing an unstable key; jobs with such parameters must
supply ``Job.cache_key`` themselves.
"""

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import shutil
import time
from pathlib import Path

import numpy as np

#: Environment override for the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Project-local default cache root.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir():
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIRNAME


def _package_version():
    try:
        from repro import __version__
        return __version__
    except Exception:  # pragma: no cover - import cycle guard
        return "0"


def canonical(value):
    """Reduce ``value`` to a deterministic JSON-safe structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return {"__float__": repr(float(value))}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(value)).hexdigest()}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (frozenset, set)):
        items = [canonical(item) for item in value]
        return {"__set__": sorted(items, key=json.dumps)}
    if isinstance(value, dict):
        return {
            "__map__": sorted(
                ([canonical(k), canonical(v)] for k, v in value.items()),
                key=json.dumps,
            )
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    token = getattr(value, "cache_token", None)
    if callable(token):
        return {"__token__": canonical(token())}
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}; "
        "pass primitives/dataclasses or set Job.cache_key explicitly"
    )


def job_cache_key(job):
    """The content address of a job's result (hex digest)."""
    if job.cache_key is not None:
        return job.cache_key
    from repro.engine.registry import function_identity

    name, version = function_identity(job.fn)
    document = {
        "fn": name,
        "fn_version": version,
        "package": _package_version(),
        "params": canonical(dict(job.params)),
        "seed": job.seed.token() if job.seed is not None else None,
    }
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _safe_name(name):
    return "".join(c if (c.isalnum() or c in "._-") else "_"
                   for c in name) or "anonymous"


class ResultCache:
    """Pickle-backed result store with hit/miss accounting."""

    def __init__(self, root=None):
        self.root = Path(root or default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- addressing ----------------------------------------------------

    def _paths(self, fn_name, key):
        directory = self.root / _safe_name(fn_name)
        return directory / f"{key}.pkl", directory / f"{key}.json"

    # -- lookup / store ------------------------------------------------

    def get(self, fn_name, key):
        """(hit, value); a corrupt or unreadable entry counts as a miss.

        A *corrupt* entry (the pickle exists but does not deserialize --
        truncated by a crash mid-write, or referencing symbols this
        checkout no longer has) is quarantined: both the ``.pkl`` and
        its ``.json`` metadata are deleted so the next ``put`` starts
        from a clean slot instead of shadowing good data with bad.
        """
        data_path, meta_path = self._paths(fn_name, key)
        try:
            with open(data_path, "rb") as handle:
                value = pickle.load(handle)
        except OSError:
            self.misses += 1
            return False, None
        except (pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, ValueError):
            self._quarantine(fn_name, data_path, meta_path)
            self.misses += 1
            return False, None
        self.hits += 1
        # Mark the entry recently-used so :meth:`gc` evicts cold
        # entries first (mtime is the LRU clock; atime is unreliable
        # on noatime/relatime mounts).
        try:
            os.utime(data_path)
        except OSError:
            pass
        return True, value

    def _quarantine(self, fn_name, data_path, meta_path):
        self.corrupt += 1
        for path in (data_path, meta_path):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            from repro import obs
            if obs.active():
                obs.registry().counter(
                    "engine_cache_corrupt_total",
                    "Corrupt cache entries quarantined",
                ).inc(fn=fn_name)
        except Exception:  # pragma: no cover - obs must never break IO
            pass

    def put(self, fn_name, key, value, meta=None):
        """Atomically store a result (tmp file + rename)."""
        data_path, meta_path = self._paths(fn_name, key)
        data_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = data_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, data_path)
        except (OSError, pickle.PicklingError):
            tmp.unlink(missing_ok=True)
            # Never leave metadata describing a value that was not
            # stored: a stale .json next to no (or an older) .pkl lies
            # about what the entry holds.
            if not data_path.exists():
                try:
                    meta_path.unlink()
                except OSError:
                    pass
            return False
        entry_meta = {"fn": fn_name, "key": key,
                      "created": time.time()}
        entry_meta.update(meta or {})
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(meta_tmp, "w") as handle:
                json.dump(entry_meta, handle, indent=2, default=str)
            os.replace(meta_tmp, meta_path)
        except OSError:
            try:
                meta_tmp.unlink()
            except OSError:
                pass
        return True

    # -- maintenance / reporting ---------------------------------------

    def clear(self):
        """Delete every cache entry (and the last-run metrics)."""
        if self.root.exists():
            shutil.rmtree(self.root)

    def gc(self, max_bytes):
        """Evict least-recently-used entries down to ``max_bytes``.

        A long-lived service accumulates results without bound; this
        walks every ``.pkl`` entry, sorts by mtime (refreshed on every
        :meth:`get` hit, so it is an LRU clock), and deletes the
        coldest entries (data + metadata) until the total is within
        budget.  Returns ``{"before_bytes", "after_bytes",
        "evicted_entries", "evicted_bytes", "max_bytes"}``.
        """
        max_bytes = max(0, int(max_bytes))
        records = []
        if self.root.exists():
            for directory in self.root.iterdir():
                if not directory.is_dir():
                    continue
                for data_path in directory.glob("*.pkl"):
                    try:
                        stat = data_path.stat()
                    except OSError:
                        continue
                    records.append(
                        (stat.st_mtime, stat.st_size, data_path)
                    )
        total = sum(size for _, size, _ in records)
        before = total
        evicted = 0
        evicted_bytes = 0
        for _, size, data_path in sorted(records, key=lambda r: r[0]):
            if total <= max_bytes:
                break
            for path in (data_path, data_path.with_suffix(".json")):
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= size
            evicted += 1
            evicted_bytes += size
        return {
            "before_bytes": before,
            "after_bytes": total,
            "evicted_entries": evicted,
            "evicted_bytes": evicted_bytes,
            "max_bytes": max_bytes,
        }

    def stats(self):
        """{function name: {"entries": n, "bytes": total}} plus totals."""
        by_fn = {}
        total_entries = 0
        total_bytes = 0
        if self.root.exists():
            for directory in sorted(self.root.iterdir()):
                if not directory.is_dir():
                    continue
                entries = list(directory.glob("*.pkl"))
                size = sum(p.stat().st_size for p in entries)
                if entries:
                    by_fn[directory.name] = {
                        "entries": len(entries), "bytes": size,
                    }
                    total_entries += len(entries)
                    total_bytes += size
        return {
            "root": str(self.root),
            "functions": by_fn,
            "entries": total_entries,
            "bytes": total_bytes,
            "cache_bytes": total_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_corrupt": self.corrupt,
        }

    @property
    def hit_rate(self):
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0
