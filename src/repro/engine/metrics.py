"""Engine run metrics and progress hooks.

The scheduler emits an event stream through registered hooks and folds
the same events into an :class:`EngineMetrics` record.  Events:

``job_start``      {label, fn}
``job_done``       {label, fn, status, attempts, elapsed_s, where}
``stage_done``     {stage, jobs, cache_hits, wall_s}
``degraded``       {reason}

``status`` is one of ``cached | completed | failed``; ``where`` is
``pool`` or ``serial``.  Hooks must never raise into the scheduler -- a
failing hook is dropped for the remainder of the run.
"""

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: File name (under the cache root) holding the latest run's metrics.
LAST_RUN_FILENAME = "last_run.json"


@dataclass
class StageMetrics:
    """One ``Engine.run`` invocation."""

    stage: str
    jobs: int = 0
    cache_hits: int = 0
    computed: int = 0
    wall_s: float = 0.0


@dataclass
class EngineMetrics:
    """Counters for one engine lifetime (possibly several stages)."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0
    #: Graph nodes never run because an upstream dependency failed.
    cancelled: int = 0
    worker_failures: int = 0
    degraded: bool = False
    wall_s: float = 0.0
    workers: int = 1
    #: Active executor backend (``local`` / ``steal`` / ``socket``).
    executor: str = "local"
    stages: List[StageMetrics] = field(default_factory=list)

    @property
    def cache_hit_rate(self):
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    def to_dict(self):
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "retries": self.retries,
            "failures": self.failures,
            "cancelled": self.cancelled,
            "worker_failures": self.worker_failures,
            "degraded": self.degraded,
            "wall_s": round(self.wall_s, 4),
            "workers": self.workers,
            "executor": self.executor,
            "stages": [
                {
                    "stage": s.stage,
                    "jobs": s.jobs,
                    "cache_hits": s.cache_hits,
                    "computed": s.computed,
                    "wall_s": round(s.wall_s, 4),
                }
                for s in self.stages
            ],
        }

    def summary(self):
        """One-paragraph human rendering (the ``engine stats`` view)."""
        lines = [
            f"jobs: {self.jobs_completed}/{self.jobs_submitted} completed"
            f" ({self.executor} executor, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}"
            f"{', degraded to serial' if self.degraded else ''})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            f" ({100 * self.cache_hit_rate:.0f}% hit rate)",
            f"failures: {self.failures} "
            f"(retries {self.retries}, worker failures "
            f"{self.worker_failures})",
            f"wall clock: {self.wall_s:.2f} s",
        ]
        for stage in self.stages:
            lines.append(
                f"  stage {stage.stage}: {stage.jobs} jobs, "
                f"{stage.cache_hits} cached, {stage.computed} computed, "
                f"{stage.wall_s:.2f} s"
            )
        return "\n".join(lines)


class HookSet:
    """Fan-out of engine events to user callbacks, failure-isolated."""

    def __init__(self, hooks=None):
        self._hooks: List[Callable[[str, Dict], None]] = list(hooks or [])

    def add(self, hook):
        self._hooks.append(hook)

    def emit(self, event, payload):
        dead = []
        for hook in self._hooks:
            try:
                hook(event, payload)
            except Exception:
                dead.append(hook)
        for hook in dead:
            self._hooks.remove(hook)


def progress_printer(stream=None):
    """A ready-made hook rendering one line per finished job/stage.

    Lines go through the structured logger's human renderer to the
    given stream (stderr by default), bypassing the level threshold:
    installing this hook *is* the opt-in (``--engine-verbose``).
    """
    import sys

    from repro.obs.logging import render_human

    def hook(event, payload):
        out = stream or sys.stderr
        if event == "job_done":
            line = render_human(
                "repro.engine", "info",
                f"{payload['label']}: {payload['status']}",
                {"elapsed_s": payload["elapsed_s"],
                 "where": payload["where"]},
            )
        elif event == "stage_done":
            line = render_human(
                "repro.engine", "info",
                f"stage {payload['stage']} done",
                {"jobs": payload["jobs"],
                 "cached": payload["cache_hits"],
                 "wall_s": payload["wall_s"]},
            )
        elif event == "degraded":
            line = render_human(
                "repro.engine", "warning", "degraded to serial",
                {"reason": payload["reason"]},
            )
        else:
            return
        out.write(line + "\n")

    return hook


def persist_last_run(metrics, cache_root=None, executor=None):
    """Persist the metrics snapshot for ``repro engine stats``.

    The authoritative copy goes to the observability state directory
    (:mod:`repro.obs.state`), which exists whether or not caching is
    on; when a cache root is given, a second copy lands there for
    readers that address the snapshot by cache directory.
    ``executor`` (a backend ``describe()`` dict) rides along so stats
    can report the active backend and its worker census.
    """
    from pathlib import Path

    from repro.obs import state as obs_state

    payload = dict(metrics.to_dict(), written=time.time())
    if executor is not None:
        payload["executor_info"] = executor
    obs_state.write_json(LAST_RUN_FILENAME, payload)
    if cache_root is None:
        return
    root = Path(cache_root)
    try:
        root.mkdir(parents=True, exist_ok=True)
        with open(root / LAST_RUN_FILENAME, "w") as handle:
            json.dump(payload, handle, indent=2)
    except OSError:
        pass


def load_last_run(cache_root=None):
    """The latest persisted run metrics.

    With a ``cache_root``, reads both the cache-rooted copy and the
    state-directory copy and returns the newer; with none, reads the
    state directory alone (the ``--no-cache`` case).
    """
    from pathlib import Path

    from repro.obs import state as obs_state

    candidates = [obs_state.read_json(LAST_RUN_FILENAME)]
    if cache_root is not None:
        path = Path(cache_root) / LAST_RUN_FILENAME
        try:
            with open(path) as handle:
                candidates.append(json.load(handle))
        except (OSError, json.JSONDecodeError):
            pass
    candidates = [c for c in candidates if c is not None]
    if not candidates:
        return None
    return max(candidates, key=lambda c: c.get("written", 0.0))
