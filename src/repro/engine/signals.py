"""Graceful SIGINT/SIGTERM shutdown for engine-backed runs.

Without this, a Ctrl-C in the middle of a campaign lands as a
``KeyboardInterrupt`` at an arbitrary bytecode: pool workers can be
left mid-chunk, the last-run snapshot never gets written, and whatever
the observability layer collected dies with the process.

:func:`install` converts the *first* signal into a cooperative
cancellation instead:

1. every engine that is mid-run gets :meth:`~Engine.cancel`, so blocked
   chunk waits wake up, pending chunks are cancelled, and ``run()``
   raises :class:`~repro.engine.scheduler.EngineCancelled` through its
   ``finally`` block -- which persists the last-run metrics and shuts
   the worker pool down on the way out;
2. the collected observability snapshot (metrics + spans) is flushed to
   the state directory so ``repro obs`` still works after the abort.

A *second* signal (or a signal arriving while no engine is running)
restores the previous handlers and re-raises, giving the default
behavior -- Ctrl-C twice still kills a hung process immediately.
"""

import signal
import threading

#: {signum: previous handler} while our handlers are installed.
_installed = {}
_lock = threading.Lock()

DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def install(signums=DEFAULT_SIGNALS):
    """Install the cooperative handlers (idempotent; main thread only).

    Returns the list of signal numbers actually taken over -- empty
    when called off the main thread, where ``signal.signal`` is
    unavailable and the default behavior is kept.
    """
    taken = []
    with _lock:
        for signum in signums:
            if signum in _installed:
                taken.append(signum)
                continue
            try:
                previous = signal.signal(signum, _handle)
            except (ValueError, OSError):  # not the main thread
                continue
            _installed[signum] = previous
            taken.append(signum)
    return taken


def uninstall():
    """Restore whatever handlers :func:`install` replaced."""
    with _lock:
        for signum, previous in list(_installed.items()):
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
            del _installed[signum]


def installed():
    """Signal numbers currently owned by this module."""
    with _lock:
        return sorted(_installed)


def _handle(signum, frame):
    from repro.engine.scheduler import cancel_all_engines

    cancelled = cancel_all_engines()
    flush_observability()
    if not cancelled:
        # Nothing to wind down (or the user insists): fall back to the
        # default behavior immediately.  ``uninstall`` also covers the
        # the-user-insists case -- a second signal finds the original
        # handlers and terminates the process the normal way.
        uninstall()
        signal.raise_signal(signum)


def flush_observability():
    """Persist whatever the observability layer collected so far.

    Best-effort by design: a flush failure must never mask the
    shutdown path that triggered it.
    """
    try:
        from repro import obs

        if obs.active() or obs.tracing_enabled():
            obs.persist_snapshot()
    except Exception:
        pass
