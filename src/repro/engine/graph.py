"""The dependency-graph layer: jobs wired by ``deps``, run streaming.

``Engine.submit(job, deps=...)`` returns a :class:`JobNode`;
``Engine.run_graph()`` topologically streams nodes whose dependencies
have finished straight into the executor, so independent branches
overlap instead of barriering stage-by-stage.

Dependencies come in two flavors:

- *ordering-only*: ``deps=[node_a, node_b]`` -- the job runs after
  them but does not consume their results.  Because the job's output
  is already fully determined by its own ``(fn, params, seed)``, these
  do **not** widen the node's cache key.
- *result-injection*: ``deps={"per_wafer": [node_a, node_b]}`` -- the
  dependency results are injected into ``params`` under the given name
  at dispatch time (a single node injects the bare result, a list of
  nodes injects a list).  These *do* widen the cache key: the node's
  digest covers its own job key plus every injected dependency's key,
  so a graph node is content-addressed through its whole ancestry.

Failure semantics: a node that exhausts its retry budget is marked
``failed`` and every transitive dependent is marked ``cancelled``
*without running*; unrelated branches keep going, and the first
failure is raised once the graph has drained.
"""

import hashlib
import json

#: Node lifecycle states.
PENDING = "pending"
DISPATCHED = "dispatched"
DONE = "done"
CACHED = "cached"
FAILED = "failed"
CANCELLED = "cancelled"


class GraphError(ValueError):
    """A malformed graph (bad deps, unsubmitted dependency node)."""


class JobNode:
    """One submitted job plus its place in the dependency graph."""

    __slots__ = ("index", "job", "deps", "key", "status", "result",
                 "error", "dependents", "waiting")

    def __init__(self, index, job, deps):
        self.index = index
        self.job = job
        self.deps = deps          # [(param_name | None, node | [node])]
        self.key = None           # content address (set by the engine)
        self.status = PENDING
        self.result = None
        self.error = None         # EngineJobError | str (cancel reason)
        self.dependents = []
        self.waiting = set()      # dep nodes not yet finished

    def dep_nodes(self):
        """Every distinct dependency node, injection or ordering."""
        seen = []
        for _name, dep in self.deps:
            for node in (dep if isinstance(dep, list) else [dep]):
                if node not in seen:
                    seen.append(node)
        return seen

    @property
    def done(self):
        return self.status in (DONE, CACHED)

    def __repr__(self):
        return (f"JobNode({self.index}, {self.job.label!r}, "
                f"{self.status})")


def normalize_deps(deps):
    """Coerce the ``deps`` argument into ``[(name | None, node|list)]``.

    Accepts ``None``, an iterable of nodes (ordering-only), or a
    mapping of ``param name -> node | [nodes]`` (result-injection).
    """
    if deps is None:
        return []
    normalized = []
    if hasattr(deps, "items"):
        for name, dep in sorted(deps.items()):
            _require_nodes(dep)
            normalized.append(
                (name, list(dep) if isinstance(dep, (list, tuple))
                 else dep)
            )
        return normalized
    deps = list(deps)
    _require_nodes(deps)
    return [(None, node) for node in deps]


def _require_nodes(dep):
    nodes = dep if isinstance(dep, (list, tuple)) else [dep]
    for node in nodes:
        if not isinstance(node, JobNode):
            raise GraphError(
                f"graph deps must be JobNode handles from "
                f"Engine.submit, got {type(node).__name__}"
            )


def node_cache_key(base_key, deps):
    """The node's content address: its own job key widened by every
    *injected* dependency's key (ordering-only deps don't affect the
    result, so they don't affect the address)."""
    if base_key is None:
        return None
    injected = {}
    for name, dep in deps:
        if name is None:
            continue
        if isinstance(dep, list):
            keys = [node.key for node in dep]
        else:
            keys = dep.key
        flat = keys if isinstance(keys, list) else [keys]
        if any(k is None for k in flat):
            return None  # an unkeyable ancestor poisons the address
        injected[name] = keys
    if not injected:
        return base_key
    document = {"base": base_key, "deps": injected}
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def effective_params(node):
    """The params the node's job actually runs with: declared params
    plus injected dependency results."""
    params = dict(node.job.params)
    for name, dep in node.deps:
        if name is None:
            continue
        if isinstance(dep, list):
            params[name] = [d.result for d in dep]
        else:
            params[name] = dep.result
    return params
