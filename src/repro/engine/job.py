"""The declarative job model of the experiment engine.

A :class:`Job` names *what* to compute -- a registered (module-level)
function, its parameters, and an optional :class:`ChildSeed` -- without
saying *where* or *when*.  The scheduler may run it inline, in a worker
process, or not at all (on a cache hit); because the job carries its own
seed, the answer is the same in every case.

Determinism contract
--------------------
Child seeds are derived with the :class:`numpy.random.SeedSequence`
spawning protocol: the ``i``-th job of a stage seeded with ``s`` draws
from ``SeedSequence(entropy=s, spawn_key=(i,))``, which is exactly the
``i``-th child of ``SeedSequence(s).spawn(n)``.  The derivation depends
only on ``(s, i)`` -- never on execution order, worker count, or
chunking -- so serial and parallel runs agree bit-for-bit.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ChildSeed:
    """A reconstructible spawn of a :class:`numpy.random.SeedSequence`.

    Carrying ``(entropy, spawn_key)`` instead of a live ``Generator``
    keeps the seed picklable, hashable, and representable in cache keys.
    """

    entropy: int
    spawn_key: Tuple[int, ...] = ()

    def seed_sequence(self):
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key
        )

    def rng(self):
        """A fresh, independent :class:`numpy.random.Generator`."""
        return np.random.default_rng(self.seed_sequence())

    def spawn(self, count):
        """The ``count`` children of this seed (appends one spawn-key
        level, matching ``SeedSequence.spawn``)."""
        return [
            ChildSeed(self.entropy, self.spawn_key + (index,))
            for index in range(count)
        ]

    def token(self):
        """Stable, JSON-safe identity for cache keys."""
        return [int(self.entropy), [int(k) for k in self.spawn_key]]


def as_child_seed(seed):
    """Coerce an int (or pass through a :class:`ChildSeed`)."""
    if seed is None:
        return None
    if isinstance(seed, ChildSeed):
        return seed
    return ChildSeed(entropy=int(seed))


def spawn_seeds(seed, count):
    """``count`` independent child seeds of ``seed`` (int or ChildSeed).

    Equivalent to ``SeedSequence(seed).spawn(count)`` but returning
    picklable :class:`ChildSeed` handles.
    """
    base = as_child_seed(seed)
    if base is None:
        raise ValueError("spawn_seeds requires a non-None seed")
    return base.spawn(count)


@dataclass
class Job:
    """One unit of work: ``fn(params, seed) -> result``.

    ``fn`` must be a module-level callable (so worker processes can
    import it by reference); registering it with
    :func:`repro.engine.registry.job_function` additionally pins a
    stable name and version for cache keys.  ``params`` must be built
    from cache-representable values (primitives, sequences, mappings,
    enums, frozen dataclasses -- see :mod:`repro.engine.cache`) unless
    ``cache_key`` overrides the derived key.
    """

    fn: Callable[[Mapping[str, Any], Optional[ChildSeed]], Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[ChildSeed] = None
    label: Optional[str] = None
    cache_key: Optional[str] = None
    #: ``False`` opts this job out of the result cache entirely -- used
    #: for cheap merge/fold nodes in a graph whose inputs are already
    #: cached, where an extra entry would only dilute hit accounting.
    cached: bool = True

    def __post_init__(self):
        self.seed = as_child_seed(self.seed)
        if self.label is None:
            self.label = getattr(
                self.fn, "__engine_name__",
                getattr(self.fn, "__qualname__", repr(self.fn)),
            )
