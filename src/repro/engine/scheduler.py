"""The experiment scheduler: fan jobs out, survive failures, stay exact.

Execution strategy for one :meth:`Engine.run`:

1. every job is first looked up in the result cache (when enabled);
2. misses run either inline (``jobs <= 1``) or on a
   :class:`concurrent.futures.ProcessPoolExecutor`, chunked to amortize
   IPC, with an optional per-job timeout;
3. a job that raises inside a worker is retried *serially* with
   exponential backoff (bounded by ``retries``);
4. a broken pool or a timeout degrades the whole run to serial for the
   remaining jobs rather than failing it.

Because every job carries its own :class:`~repro.engine.job.ChildSeed`
and results are reassembled in submission order, none of the above
changes a single bit of the output.
"""

import threading
import time
import traceback
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from math import ceil

from repro import obs
from repro.engine.cache import ResultCache, job_cache_key
from repro.engine.job import Job
from repro.engine.metrics import (
    EngineMetrics,
    HookSet,
    StageMetrics,
    persist_last_run,
)


class EngineJobError(RuntimeError):
    """A job kept failing after its retry budget was spent."""

    def __init__(self, label, attempts, cause):
        super().__init__(
            f"job {label!r} failed after {attempts} attempt(s): {cause}"
        )
        self.label = label
        self.attempts = attempts
        self.cause = cause


class EngineCancelled(RuntimeError):
    """A run was cancelled (``Engine.cancel``) before it finished."""


#: Every live engine, so a signal handler (or a service drain) can reach
#: in-flight runs without threading a reference through every call site.
_LIVE_ENGINES = weakref.WeakSet()

#: How often a blocked parallel wait rechecks the cancel flag (seconds).
_CANCEL_POLL_S = 0.2


def live_engines():
    """Engines currently executing a :meth:`Engine.run`."""
    return [engine for engine in list(_LIVE_ENGINES) if engine.running]


def cancel_all_engines():
    """Cancel every engine that is mid-run; returns how many were
    *newly* cancelled (an engine already winding down counts zero, so
    a repeated interrupt can escalate instead of being swallowed)."""
    cancelled = 0
    for engine in live_engines():
        if engine.cancel():
            cancelled += 1
    return cancelled


def _execute_chunk(payloads, obs_ctx=None):
    """Worker-side entry point: run a chunk of (fn, params, seed, label).

    Exceptions are flattened to strings here -- a raw exception object
    may itself fail to pickle on the way back, which would take the
    whole pool down instead of one job.

    ``obs_ctx`` carries the parent's observability context
    (:func:`repro.obs.worker_context`); when present, each job runs
    under its own span and the worker's recorded spans and metric
    deltas travel back with the results.
    """
    if obs_ctx is not None:
        obs.enter_worker(obs_ctx)
    results = []
    for fn, params, seed, label in payloads:
        started = time.perf_counter()
        try:
            with obs.span("engine.job", label=label, where="pool"):
                value = fn(params, seed)
        except Exception as exc:
            results.append((
                "err",
                f"{type(exc).__name__}: {exc}",
                traceback.format_exc(),
            ))
        else:
            results.append(("ok", value, time.perf_counter() - started))
    return results, (obs.leave_worker() if obs_ctx is not None else None)


def _default_pool_factory(workers):
    return ProcessPoolExecutor(max_workers=workers)


class Engine:
    """Parallel, cached, fault-tolerant runner for :class:`Job` lists.

    Parameters
    ----------
    jobs:
        Worker-process count; ``<= 1`` runs everything inline.
    cache:
        ``None`` (disabled), ``True`` (default directory), a path, or a
        ready :class:`~repro.engine.cache.ResultCache`.
    timeout:
        Optional per-job seconds; enforced while waiting on worker
        results (a timed-out chunk degrades the run to serial).
    retries / backoff:
        Failed jobs are re-run up to ``retries`` more times, sleeping
        ``backoff * 2**attempt`` seconds between attempts.
    chunk_size:
        Jobs per worker submission; defaults to ``n / (4 * workers)``.
    hooks:
        Iterable of ``hook(event, payload)`` progress callbacks.
    """

    def __init__(self, jobs=1, cache=None, timeout=None, retries=2,
                 backoff=0.05, chunk_size=None, hooks=None,
                 pool_factory=None):
        self.jobs = max(1, int(jobs))
        if cache is True:
            cache = ResultCache()
        elif isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.chunk_size = chunk_size
        self.hooks = HookSet(hooks)
        self.hooks.add(obs.engine_bridge())
        self.metrics = EngineMetrics(workers=self.jobs)
        self._pool_factory = pool_factory or _default_pool_factory
        self._cancel = threading.Event()
        self._running = False
        _LIVE_ENGINES.add(self)

    # -- public API ----------------------------------------------------

    def cancel(self):
        """Ask the engine to stop at the next job/chunk boundary.

        Safe from any thread or a signal handler.  An in-flight
        :meth:`run` raises :class:`EngineCancelled` promptly (blocked
        parallel waits poll the flag); a cancelled engine refuses
        further runs until :meth:`uncancel`.  Returns True when this
        call flipped the flag (False when already cancelled).
        """
        already = self._cancel.is_set()
        self._cancel.set()
        if not already:
            self.hooks.emit("cancelled", {"reason": "cancel requested"})
        return not already

    def uncancel(self):
        """Clear a previous :meth:`cancel` so the engine can run again."""
        self._cancel.clear()

    @property
    def cancelled(self):
        return self._cancel.is_set()

    @property
    def running(self):
        """True while a :meth:`run` is executing (any thread)."""
        return self._running

    def _check_cancelled(self):
        if self._cancel.is_set():
            raise EngineCancelled("engine run cancelled")

    def run(self, jobs, stage="run"):
        """Run every job; return results in submission order."""
        jobs = [job if isinstance(job, Job) else Job(*job)
                for job in jobs]
        started = time.perf_counter()
        stage_metrics = StageMetrics(stage=stage, jobs=len(jobs))
        self.metrics.jobs_submitted += len(jobs)
        self._check_cancelled()
        self._running = True

        results = [None] * len(jobs)
        try:
            with obs.span(f"engine.{stage}", jobs=len(jobs)):
                pending = []
                keys = [None] * len(jobs)
                for index, job in enumerate(jobs):
                    if self.cache is not None:
                        keys[index] = job_cache_key(job)
                        hit, value = self.cache.get(
                            _fn_name(job), keys[index]
                        )
                        if hit:
                            results[index] = value
                            self.metrics.cache_hits += 1
                            self.metrics.jobs_completed += 1
                            stage_metrics.cache_hits += 1
                            self.hooks.emit("job_done", {
                                "label": job.label, "fn": _fn_name(job),
                                "status": "cached", "attempts": 0,
                                "elapsed_s": 0.0, "where": "cache",
                            })
                            continue
                        self.metrics.cache_misses += 1
                    pending.append(index)

                if pending:
                    if self.jobs <= 1 or len(pending) == 1:
                        self._run_serial(jobs, pending, results)
                    else:
                        self._run_parallel(jobs, pending, results)
                    for index in pending:
                        if self.cache is not None:
                            self.cache.put(
                                _fn_name(jobs[index]), keys[index],
                                results[index], meta={
                                    "label": jobs[index].label,
                                    "seed": (jobs[index].seed.token()
                                             if jobs[index].seed
                                             else None),
                                },
                            )
                    stage_metrics.computed = len(pending)

                self.hooks.emit("stage_done", {
                    "stage": stage, "jobs": len(jobs),
                    "cache_hits": stage_metrics.cache_hits,
                    "wall_s": time.perf_counter() - started,
                })
        finally:
            # Runs on success, failure, *and* cancellation: the metrics
            # record and the last-run snapshot must reflect what really
            # happened, so an interrupted campaign never leaves a
            # half-written or stale `.repro-state/` behind.  The
            # snapshot goes to the state directory no matter how (or
            # whether) results were cached, so `repro engine stats`
            # reflects --no-cache runs too; a copy lands next to the
            # cache for backward compatibility with cache-rooted
            # readers.
            self._running = False
            stage_metrics.wall_s = time.perf_counter() - started
            self.metrics.wall_s += stage_metrics.wall_s
            self.metrics.stages.append(stage_metrics)
            persist_last_run(
                self.metrics,
                self.cache.root if self.cache is not None else None,
            )
        return results

    def run_one(self, job):
        return self.run([job], stage=job.label)[0]

    # -- serial path ---------------------------------------------------

    def _run_serial(self, jobs, indices, results, attempts_used=0):
        for index in indices:
            self._check_cancelled()
            results[index] = self._attempt_until_done(
                jobs[index], attempts_used
            )

    def _attempt_until_done(self, job, attempts_used=0):
        attempt = attempts_used
        last_error = None
        while attempt <= self.retries:
            self._check_cancelled()
            attempt += 1
            started = time.perf_counter()
            try:
                with obs.span("engine.job", label=job.label,
                              where="serial"):
                    value = job.fn(dict(job.params), job.seed)
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt <= self.retries:
                    self.metrics.retries += 1
                    time.sleep(self.backoff * (2 ** (attempt - 1)))
                continue
            self.metrics.jobs_completed += 1
            self.hooks.emit("job_done", {
                "label": job.label, "fn": _fn_name(job),
                "status": "completed", "attempts": attempt,
                "elapsed_s": time.perf_counter() - started,
                "where": "serial",
            })
            return value
        self.metrics.failures += 1
        self.hooks.emit("job_done", {
            "label": job.label, "fn": _fn_name(job),
            "status": "failed", "attempts": attempt,
            "elapsed_s": 0.0, "where": "serial",
        })
        try:
            from repro.obs import flight
            flight.dump("engine_job_failure", context={
                "label": job.label, "fn": _fn_name(job),
                "attempts": attempt, "error": str(last_error),
            })
        except Exception:  # diagnostics must not mask the real failure
            pass
        raise EngineJobError(job.label, attempt, last_error)

    # -- parallel path -------------------------------------------------

    def _run_parallel(self, jobs, indices, results):
        workers = min(self.jobs, len(indices))
        chunk_size = self.chunk_size or max(
            1, ceil(len(indices) / (workers * 4))
        )
        chunks = [
            indices[start:start + chunk_size]
            for start in range(0, len(indices), chunk_size)
        ]
        retry_serial = []   # indices that failed once in a worker
        leftover = []       # indices never run because the pool died

        try:
            executor = self._pool_factory(workers)
        except Exception as exc:
            self._degrade(f"could not start worker pool: {exc}")
            self._run_serial(jobs, indices, results)
            return

        obs_ctx = obs.worker_context()
        try:
            futures = []
            for chunk in chunks:
                payload = [
                    (jobs[i].fn, dict(jobs[i].params), jobs[i].seed,
                     jobs[i].label)
                    for i in chunk
                ]
                submit_args = (payload, obs_ctx) if obs_ctx is not None \
                    else (payload,)
                futures.append((chunk, executor.submit(
                    _execute_chunk, *submit_args
                )))
            broken = False
            for position, (chunk, future) in enumerate(futures):
                if broken:
                    leftover.extend(chunk)
                    continue
                chunk_timeout = (self.timeout * len(chunk)
                                 if self.timeout else None)
                try:
                    outcomes, obs_payload = self._await_future(
                        future, chunk_timeout
                    )
                    obs.absorb(obs_payload)
                except (BrokenProcessPool, FutureTimeoutError,
                        OSError) as exc:
                    self.metrics.worker_failures += 1
                    self._degrade(
                        f"{type(exc).__name__} while waiting on "
                        f"chunk of {len(chunk)} job(s)"
                    )
                    leftover.extend(chunk)
                    broken = True
                    continue
                for index, outcome in zip(chunk, outcomes):
                    if outcome[0] == "ok":
                        results[index] = outcome[1]
                        self.metrics.jobs_completed += 1
                        self.hooks.emit("job_done", {
                            "label": jobs[index].label,
                            "fn": _fn_name(jobs[index]),
                            "status": "completed", "attempts": 1,
                            "elapsed_s": outcome[2], "where": "pool",
                        })
                    else:
                        self.metrics.worker_failures += 1
                        retry_serial.append(index)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

        if leftover:
            self._run_serial(jobs, leftover, results)
        if retry_serial:
            # One attempt already happened in the worker.
            self._run_serial(jobs, retry_serial, results,
                             attempts_used=1)

    def _await_future(self, future, chunk_timeout):
        """``future.result`` in short slices so a :meth:`cancel` from
        another thread (or a signal handler) interrupts the wait within
        ``_CANCEL_POLL_S`` instead of after the whole chunk."""
        deadline = (time.monotonic() + chunk_timeout
                    if chunk_timeout is not None else None)
        while True:
            self._check_cancelled()
            step = _CANCEL_POLL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FutureTimeoutError()
                step = min(step, remaining)
            try:
                return future.result(timeout=step)
            except FutureTimeoutError:
                continue

    def _degrade(self, reason):
        self.metrics.degraded = True
        self.hooks.emit("degraded", {"reason": reason})


def _fn_name(job):
    from repro.engine.registry import function_identity

    return function_identity(job.fn)[0]
