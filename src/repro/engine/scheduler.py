"""The experiment scheduler: fan jobs out, survive failures, stay exact.

Since the pluggable-executor refactor the scheduler is one of three
layers:

- **this module** decides *what* runs and in *which order* -- flat
  batches through :meth:`Engine.run`, dependency graphs through
  :meth:`Engine.submit` + :meth:`Engine.run_graph`;
- an :mod:`executor <repro.engine.executors>` decides *where* --
  ``local`` (process pool, the default), ``steal`` (work-stealing
  deques for skewed costs), or ``socket`` (a coordinator that
  ``repro worker join`` workers attach to);
- the :class:`~repro.engine.cache.ResultCache` remembers results by
  content address, now sharded with a shared index tier.

Execution strategy for one :meth:`Engine.run`:

1. every job is first looked up in the result cache (when enabled);
2. misses run either inline (``jobs <= 1``) or on the executor,
   chunked to amortize IPC, with an optional per-job timeout;
3. a job that raises inside a worker is retried *serially* with
   exponential backoff plus deterministic-seeded jitter (bounded by
   ``retries``);
4. a broken executor or a timeout degrades the run to serial for the
   remaining jobs rather than failing it.

:meth:`Engine.run_graph` streams nodes whose dependencies have
finished straight into the executor, so independent branches overlap;
a node that exhausts its retries marks every transitive dependent
``cancelled`` without running it, and unrelated branches continue.

Because every job carries its own :class:`~repro.engine.job.ChildSeed`
and results are reassembled in submission order, none of the above
changes a single bit of the output.
"""

import hashlib
import json
import threading
import time
import weakref
from collections import deque

from repro import obs
from repro.engine.cache import ResultCache, job_cache_key
from repro.engine.executors.base import (
    ExecutorBroken,
    execute_payload,
    make_executor,
)
from repro.engine.graph import (
    CACHED,
    CANCELLED,
    DISPATCHED,
    DONE,
    FAILED,
    PENDING,
    GraphError,
    JobNode,
    effective_params,
    node_cache_key,
    normalize_deps,
)
from repro.engine.job import Job
from repro.engine.metrics import (
    EngineMetrics,
    HookSet,
    StageMetrics,
    persist_last_run,
)

#: Back-compat alias: the worker-side entry point moved to
#: :mod:`repro.engine.executors.base`.
_execute_chunk = execute_payload


class EngineJobError(RuntimeError):
    """A job kept failing after its retry budget was spent."""

    def __init__(self, label, attempts, cause):
        super().__init__(
            f"job {label!r} failed after {attempts} attempt(s): {cause}"
        )
        self.label = label
        self.attempts = attempts
        self.cause = cause


class EngineCancelled(RuntimeError):
    """A run was cancelled (``Engine.cancel``) before it finished."""


#: Every live engine, so a signal handler (or a service drain) can reach
#: in-flight runs without threading a reference through every call site.
_LIVE_ENGINES = weakref.WeakSet()

#: How often a blocked parallel wait rechecks the cancel flag (seconds).
_CANCEL_POLL_S = 0.2


def live_engines():
    """Engines currently executing a :meth:`Engine.run`."""
    return [engine for engine in list(_LIVE_ENGINES) if engine.running]


def cancel_all_engines():
    """Cancel every engine that is mid-run; returns how many were
    *newly* cancelled (an engine already winding down counts zero, so
    a repeated interrupt can escalate instead of being swallowed)."""
    cancelled = 0
    for engine in live_engines():
        # Only engines actually mid-run: an idle engine (or a forked
        # child's copy of one) must not absorb the signal -- the
        # handler falls through to the default behavior instead.
        if engine.running and engine.cancel():
            cancelled += 1
    return cancelled


def retry_delay_s(job, attempt, backoff):
    """Exponential backoff with deterministic-seeded jitter.

    ``backoff * 2**(attempt-1)`` scaled into ``[0.75, 1.25)`` by a
    hash of the job's identity and the attempt number, so a crowd of
    parallel workers retrying the same stage desynchronizes instead of
    stampeding the cache/index in lockstep -- while any single job's
    retry schedule stays bit-for-bit reproducible.
    """
    base = backoff * (2 ** (attempt - 1))
    basis = json.dumps([
        job.label,
        job.seed.token() if job.seed is not None else None,
        attempt,
    ], sort_keys=True)
    digest = hashlib.sha256(basis.encode("utf-8")).digest()
    jitter01 = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (0.75 + 0.5 * jitter01)


class Engine:
    """Parallel, cached, fault-tolerant runner for :class:`Job` lists.

    Parameters
    ----------
    jobs:
        Worker count; ``<= 1`` runs everything inline.
    cache:
        ``None`` (disabled), ``True`` (default directory), a path, or a
        ready :class:`~repro.engine.cache.ResultCache`.
    timeout:
        Optional per-job seconds; enforced while waiting on worker
        results (a timed-out chunk degrades the run to serial).
    retries / backoff:
        Failed jobs are re-run up to ``retries`` more times, sleeping
        ``backoff * 2**attempt`` seconds (with deterministic jitter)
        between attempts.
    chunk_size:
        Jobs per worker submission; defaults to the executor's
        preference (``n / (4 * workers)`` for the local pool, ``1``
        for stealing/socket backends).
    hooks:
        Iterable of ``hook(event, payload)`` progress callbacks.
    executor:
        Backend spec: ``None``/``"local"`` (process pool),
        ``"steal"``, ``"socket"``, or a ready
        :class:`~repro.engine.executors.base.Executor` instance.
    """

    def __init__(self, jobs=1, cache=None, timeout=None, retries=2,
                 backoff=0.05, chunk_size=None, hooks=None,
                 pool_factory=None, executor=None):
        self.jobs = max(1, int(jobs))
        if cache is True:
            cache = ResultCache()
        elif isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
            cache = ResultCache(cache)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.chunk_size = chunk_size
        self.hooks = HookSet(hooks)
        self.hooks.add(obs.engine_bridge())
        self._pool_factory = pool_factory
        self._executor_spec = executor
        self._executor = None
        self.metrics = EngineMetrics(
            workers=self.jobs, executor=self.executor_name,
        )
        self._cancel = threading.Event()
        self._running = False
        self._run_seq = 0
        self._graph = []
        self._graph_seq = 0
        _LIVE_ENGINES.add(self)

    # -- executor plumbing --------------------------------------------

    @property
    def executor_name(self):
        """The configured backend's spec name (without starting it)."""
        spec = self._executor_spec
        name = getattr(spec, "name", None)
        if name is not None:
            return name
        return spec or "local"

    @property
    def executor(self):
        """The live executor instance, or ``None`` before first use."""
        return self._executor

    def _ensure_executor(self):
        if self._executor is None:
            self._executor = make_executor(
                self._executor_spec,
                workers=self.jobs,
                pool_factory=self._pool_factory,
            )
            # A cluster coordinator answers workers' cache_get probes
            # from the engine's own cache tier; wire it in when the
            # backend has a cache slot it didn't fill itself.
            if (getattr(self._executor, "cache", False) is None
                    and self.cache is not None):
                self._executor.cache = self.cache
        self._executor.start()
        self.metrics.executor = self._executor.name
        return self._executor

    def close(self):
        """Shut down the executor (workers, sockets); idempotent."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def describe_executor(self):
        """Stats snapshot of the backend for ``repro engine stats``."""
        if self._executor is not None:
            return self._executor.describe()
        return {"executor": self.executor_name, "workers": self.jobs}

    # -- public API ----------------------------------------------------

    def cancel(self):
        """Ask the engine to stop at the next job/chunk boundary.

        Safe from any thread or a signal handler.  An in-flight
        :meth:`run` raises :class:`EngineCancelled` promptly (blocked
        parallel waits poll the flag); a cancelled engine refuses
        further runs until :meth:`uncancel`.  Returns True when this
        call flipped the flag (False when already cancelled).
        """
        already = self._cancel.is_set()
        self._cancel.set()
        if not already:
            self.hooks.emit("cancelled", {"reason": "cancel requested"})
        return not already

    def uncancel(self):
        """Clear a previous :meth:`cancel` so the engine can run again."""
        self._cancel.clear()

    @property
    def cancelled(self):
        return self._cancel.is_set()

    @property
    def running(self):
        """True while a :meth:`run` is executing (any thread)."""
        return self._running

    def _check_cancelled(self):
        if self._cancel.is_set():
            raise EngineCancelled("engine run cancelled")

    def run(self, jobs, stage="run"):
        """Run every job; return results in submission order."""
        jobs = [job if isinstance(job, Job) else Job(*job)
                for job in jobs]
        started = time.perf_counter()
        stage_metrics = StageMetrics(stage=stage, jobs=len(jobs))
        self.metrics.jobs_submitted += len(jobs)
        self._check_cancelled()
        self._running = True

        results = [None] * len(jobs)
        try:
            with obs.span(f"engine.{stage}", jobs=len(jobs)):
                pending = []
                keys = [None] * len(jobs)
                for index, job in enumerate(jobs):
                    if self.cache is not None and job.cached:
                        keys[index] = job_cache_key(job)
                        hit, value = self.cache.get(
                            _fn_name(job), keys[index]
                        )
                        if hit:
                            results[index] = value
                            self.metrics.cache_hits += 1
                            self.metrics.jobs_completed += 1
                            stage_metrics.cache_hits += 1
                            self.hooks.emit("job_done", {
                                "label": job.label, "fn": _fn_name(job),
                                "status": "cached", "attempts": 0,
                                "elapsed_s": 0.0, "where": "cache",
                            })
                            continue
                        self.metrics.cache_misses += 1
                    pending.append(index)

                if pending:
                    # A non-local backend is worth engaging even at
                    # jobs=1 (its workers live elsewhere); the local
                    # pool is not.
                    if ((self.jobs <= 1
                         and self.executor_name == "local")
                            or len(pending) == 1):
                        self._run_serial(jobs, pending, results)
                    else:
                        self._run_parallel(jobs, pending, results, keys)
                    for index in pending:
                        if self.cache is not None and jobs[index].cached:
                            self.cache.put(
                                _fn_name(jobs[index]), keys[index],
                                results[index], meta={
                                    "label": jobs[index].label,
                                    "seed": (jobs[index].seed.token()
                                             if jobs[index].seed
                                             else None),
                                },
                            )
                    stage_metrics.computed = len(pending)

                self.hooks.emit("stage_done", {
                    "stage": stage, "jobs": len(jobs),
                    "cache_hits": stage_metrics.cache_hits,
                    "wall_s": time.perf_counter() - started,
                })
        finally:
            # Runs on success, failure, *and* cancellation: the metrics
            # record and the last-run snapshot must reflect what really
            # happened, so an interrupted campaign never leaves a
            # half-written or stale `.repro-state/` behind.  The
            # snapshot goes to the state directory no matter how (or
            # whether) results were cached, so `repro engine stats`
            # reflects --no-cache runs too; a copy lands next to the
            # cache for backward compatibility with cache-rooted
            # readers.
            self._running = False
            if self._cancel.is_set():
                # A cancelled executor may hold arbitrarily stale
                # work; drop it so the next run starts clean.
                self.close()
            stage_metrics.wall_s = time.perf_counter() - started
            self.metrics.wall_s += stage_metrics.wall_s
            self.metrics.stages.append(stage_metrics)
            persist_last_run(
                self.metrics,
                self.cache.root if self.cache is not None else None,
                executor=self.describe_executor(),
            )
        return results

    def run_one(self, job):
        return self.run([job], stage=job.label)[0]

    # -- graph API -----------------------------------------------------

    def submit(self, job, deps=None):
        """Add one job to the pending graph; returns its
        :class:`~repro.engine.graph.JobNode` handle.

        ``deps`` is an iterable of nodes (ordering-only) or a mapping
        of ``param name -> node | [nodes]`` whose results are injected
        into ``params`` at dispatch time.  The next
        :meth:`run_graph` call runs everything submitted since the
        last one.
        """
        job = job if isinstance(job, Job) else Job(*job)
        node = JobNode(self._graph_seq, job, normalize_deps(deps))
        self._graph_seq += 1
        for dep in node.dep_nodes():
            if dep.status in (FAILED, CANCELLED):
                raise GraphError(
                    f"dependency {dep.job.label!r} already "
                    f"{dep.status}; cannot submit {job.label!r}"
                )
        try:
            base_key = job_cache_key(job)
        except TypeError:
            base_key = None
        node.key = node_cache_key(base_key, node.deps)
        self._graph.append(node)
        return node

    def run_graph(self, stage="graph", raise_on_error=True):
        """Run every node submitted since the last graph run.

        Nodes stream into the executor as their dependencies finish,
        so independent branches overlap.  Returns results in
        submission order (``None`` for failed/cancelled nodes).  With
        ``raise_on_error`` (default) the first
        :class:`EngineJobError` is raised *after* the graph has
        drained -- inspect the returned node handles for per-branch
        status when catching it.
        """
        nodes, self._graph = self._graph, []
        if not nodes:
            return []
        started = time.perf_counter()
        stage_metrics = StageMetrics(stage=stage, jobs=len(nodes))
        self.metrics.jobs_submitted += len(nodes)
        self._check_cancelled()
        self._running = True

        ready = deque()
        queued = set()
        failures = []

        def push_ready(node):
            if (node.index not in queued and node.status == PENDING
                    and not node.waiting):
                queued.add(node.index)
                ready.append(node)

        def resolve(node, value, *, where, attempts, elapsed,
                    cached=False, announced=False):
            node.result = value
            node.status = DONE
            if cached:
                node.status = CACHED
                self.metrics.cache_hits += 1
                stage_metrics.cache_hits += 1
            else:
                stage_metrics.computed += 1
                if (self.cache is not None and node.job.cached
                        and node.key is not None):
                    self.cache.put(
                        _fn_name(node.job), node.key, value, meta={
                            "label": node.job.label,
                            "seed": (node.job.seed.token()
                                     if node.job.seed else None),
                            "graph": True,
                        },
                    )
            if not announced:
                self.metrics.jobs_completed += 1
                self.hooks.emit("job_done", {
                    "label": node.job.label, "fn": _fn_name(node.job),
                    "status": "cached" if cached else "completed",
                    "attempts": attempts, "elapsed_s": elapsed,
                    "where": where,
                })
            for dependent in node.dependents:
                dependent.waiting.discard(node)
                push_ready(dependent)

        def fail(node, error):
            node.status = FAILED
            node.error = error
            failures.append(error)
            stack = list(node.dependents)
            while stack:
                dependent = stack.pop()
                if dependent.status != PENDING:
                    continue
                dependent.status = CANCELLED
                dependent.error = (
                    f"upstream job {node.job.label!r} failed"
                )
                self.metrics.cancelled += 1
                self.hooks.emit("job_done", {
                    "label": dependent.job.label,
                    "fn": _fn_name(dependent.job),
                    "status": "cancelled", "attempts": 0,
                    "elapsed_s": 0.0, "where": "graph",
                })
                stack.extend(dependent.dependents)

        def run_serial_node(node, attempts_used=0):
            try:
                value = self._attempt_until_done(
                    self._effective_job(node), attempts_used
                )
            except EngineJobError as err:
                fail(node, err)
            else:
                resolve(node, value, where="serial",
                        attempts=attempts_used + 1, elapsed=0.0,
                        announced=True)

        try:
            with obs.span(f"engine.{stage}", jobs=len(nodes),
                          graph=True):
                for node in nodes:
                    for dep in node.dep_nodes():
                        if dep.status in (FAILED, CANCELLED):
                            raise GraphError(
                                f"dependency {dep.job.label!r} is "
                                f"{dep.status}"
                            )
                        if not dep.done:
                            node.waiting.add(dep)
                            dep.dependents.append(node)

                for node in nodes:
                    if (self.cache is not None and node.job.cached
                            and node.key is not None):
                        hit, value = self.cache.get(
                            _fn_name(node.job), node.key
                        )
                        if hit:
                            resolve(node, value, where="cache",
                                    attempts=0, elapsed=0.0,
                                    cached=True)
                            continue
                        self.metrics.cache_misses += 1
                for node in nodes:
                    push_ready(node)

                self._drive_graph(ready, resolve, fail,
                                  run_serial_node)

                self.hooks.emit("stage_done", {
                    "stage": stage, "jobs": len(nodes),
                    "cache_hits": stage_metrics.cache_hits,
                    "wall_s": time.perf_counter() - started,
                })
        finally:
            self._running = False
            if self._cancel.is_set():
                self.close()
            stage_metrics.wall_s = time.perf_counter() - started
            self.metrics.wall_s += stage_metrics.wall_s
            self.metrics.stages.append(stage_metrics)
            persist_last_run(
                self.metrics,
                self.cache.root if self.cache is not None else None,
                executor=self.describe_executor(),
            )
        if failures and raise_on_error:
            raise failures[0]
        return [node.result for node in nodes]

    def _effective_job(self, node):
        """The node's job with dependency results injected."""
        job = node.job
        return Job(job.fn, effective_params(node), job.seed,
                   job.label, node.key, cached=job.cached)

    def _drive_graph(self, ready, resolve, fail, run_serial_node):
        use_parallel = self.jobs > 1 or self.executor_name != "local"
        executor = None
        if use_parallel:
            try:
                executor = self._ensure_executor()
            except Exception as exc:
                self._degrade(f"could not start executor: {exc}")
                use_parallel = False
        obs_ctx = obs.worker_context() if use_parallel else None
        self._run_seq += 1
        prefix = f"g{self._run_seq}"
        outstanding = {}
        deadlines = {}

        def dispatch(node):
            job = node.job
            entry = (
                job.fn, effective_params(node), job.seed, job.label,
                node.key if job.cached else None,
            )
            task_id = f"{prefix}:{node.index}"
            executor.submit(task_id, [entry], obs_ctx)
            node.status = DISPATCHED
            outstanding[task_id] = node
            if self.timeout:
                deadlines[task_id] = time.monotonic() + self.timeout

        while ready or outstanding:
            self._check_cancelled()
            if not use_parallel:
                run_serial_node(ready.popleft())
                continue
            broken = None
            while ready and broken is None:
                node = ready.popleft()
                try:
                    dispatch(node)
                except ExecutorBroken as exc:
                    node.status = PENDING
                    ready.appendleft(node)
                    broken = exc
            if outstanding and broken is None:
                try:
                    item = executor.next_result(_CANCEL_POLL_S)
                except ExecutorBroken as exc:
                    broken = exc
                    item = None
                now = time.monotonic()
                if broken is None and deadlines and any(
                    deadline < now for deadline in deadlines.values()
                ):
                    broken = ExecutorBroken(
                        "timeout waiting on graph node(s)"
                    )
                if item is not None:
                    task_id, outcomes, obs_payload = item
                    node = outstanding.pop(task_id, None)
                    if node is not None:
                        deadlines.pop(task_id, None)
                        obs.absorb(obs_payload)
                        outcome = outcomes[0]
                        if outcome[0] == "ok":
                            resolve(node, outcome[1], where="pool",
                                    attempts=1, elapsed=outcome[2])
                        else:
                            self.metrics.worker_failures += 1
                            run_serial_node(node, attempts_used=1)
            if broken is not None:
                self.metrics.worker_failures += 1
                self._degrade(str(broken))
                use_parallel = False
                for node in outstanding.values():
                    node.status = PENDING
                    ready.append(node)
                outstanding.clear()
                deadlines.clear()

    # -- serial path ---------------------------------------------------

    def _run_serial(self, jobs, indices, results, attempts_used=0):
        for index in indices:
            self._check_cancelled()
            results[index] = self._attempt_until_done(
                jobs[index], attempts_used
            )

    def _attempt_until_done(self, job, attempts_used=0):
        attempt = attempts_used
        last_error = None
        while attempt <= self.retries:
            self._check_cancelled()
            attempt += 1
            started = time.perf_counter()
            try:
                with obs.span("engine.job", label=job.label,
                              where="serial"):
                    value = job.fn(dict(job.params), job.seed)
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt <= self.retries:
                    self.metrics.retries += 1
                    time.sleep(retry_delay_s(job, attempt, self.backoff))
                continue
            self.metrics.jobs_completed += 1
            self.hooks.emit("job_done", {
                "label": job.label, "fn": _fn_name(job),
                "status": "completed", "attempts": attempt,
                "elapsed_s": time.perf_counter() - started,
                "where": "serial",
            })
            return value
        self.metrics.failures += 1
        self.hooks.emit("job_done", {
            "label": job.label, "fn": _fn_name(job),
            "status": "failed", "attempts": attempt,
            "elapsed_s": 0.0, "where": "serial",
        })
        try:
            from repro.obs import flight
            flight.dump("engine_job_failure", context={
                "label": job.label, "fn": _fn_name(job),
                "attempts": attempt, "error": str(last_error),
            })
        except Exception:  # diagnostics must not mask the real failure
            pass
        raise EngineJobError(job.label, attempt, last_error)

    # -- parallel path -------------------------------------------------

    def _run_parallel(self, jobs, indices, results, keys):
        try:
            executor = self._ensure_executor()
        except Exception as exc:
            self._degrade(f"could not start executor: {exc}")
            self._run_serial(jobs, indices, results)
            return

        workers = max(1, executor.workers or self.jobs)
        chunk_size = self.chunk_size or executor.preferred_chunk_size(
            len(indices), min(workers, len(indices))
        )
        chunks = [
            indices[start:start + chunk_size]
            for start in range(0, len(indices), chunk_size)
        ]
        retry_serial = []   # indices that failed once in a worker
        leftover = []       # indices never run because workers died

        obs_ctx = obs.worker_context()
        self._run_seq += 1
        prefix = f"r{self._run_seq}"
        outstanding = {}
        deadlines = {}
        for position, chunk in enumerate(chunks):
            payload = [
                self._payload_entry(jobs[i], keys[i], executor)
                for i in chunk
            ]
            task_id = f"{prefix}:{position}"
            try:
                executor.submit(task_id, payload, obs_ctx)
            except ExecutorBroken as exc:
                self.metrics.worker_failures += 1
                self._degrade(str(exc))
                leftover.extend(chunk)
                for later in chunks[position + 1:]:
                    leftover.extend(later)
                break
            outstanding[task_id] = chunk
            if self.timeout:
                deadlines[task_id] = (
                    time.monotonic() + self.timeout * len(chunk)
                )

        while outstanding:
            self._check_cancelled()
            try:
                item = executor.next_result(_CANCEL_POLL_S)
            except ExecutorBroken as exc:
                self.metrics.worker_failures += 1
                self._degrade(str(exc))
                for task_id in list(outstanding):
                    leftover.extend(outstanding.pop(task_id))
                break
            now = time.monotonic()
            expired = [
                task_id for task_id, deadline in deadlines.items()
                if task_id in outstanding and deadline < now
            ]
            if expired:
                self.metrics.worker_failures += 1
                self._degrade(
                    f"timeout waiting on {len(expired)} chunk(s)"
                )
                for task_id in list(outstanding):
                    leftover.extend(outstanding.pop(task_id))
                break
            if item is None:
                continue
            task_id, outcomes, obs_payload = item
            chunk = outstanding.pop(task_id, None)
            if chunk is None:
                continue  # stale result from an abandoned run
            deadlines.pop(task_id, None)
            obs.absorb(obs_payload)
            for index, outcome in zip(chunk, outcomes):
                if outcome[0] == "ok":
                    results[index] = outcome[1]
                    self.metrics.jobs_completed += 1
                    self.hooks.emit("job_done", {
                        "label": jobs[index].label,
                        "fn": _fn_name(jobs[index]),
                        "status": "completed", "attempts": 1,
                        "elapsed_s": outcome[2], "where": "pool",
                    })
                else:
                    self.metrics.worker_failures += 1
                    retry_serial.append(index)

        if leftover:
            self._run_serial(jobs, leftover, results)
        if retry_serial:
            # One attempt already happened in the worker.
            self._run_serial(jobs, retry_serial, results,
                             attempts_used=1)

    def _payload_entry(self, job, key, executor):
        if key is None and executor.wants_cache_keys and job.cached:
            try:
                key = job_cache_key(job)
            except TypeError:
                key = None
        return (job.fn, dict(job.params), job.seed, job.label, key)

    def _degrade(self, reason):
        self.metrics.degraded = True
        self.hooks.emit("degraded", {"reason": reason})


def _fn_name(job):
    from repro.engine.registry import function_identity

    return function_identity(job.fn)[0]


# Re-exported for callers that sized pools off the old helper.
def _default_pool_factory(workers):
    from repro.engine.executors.local import (
        _default_pool_factory as factory,
    )
    return factory(workers)
