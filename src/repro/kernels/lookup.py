"""Lookup kernel: the POS / Smart Label workload (extra, beyond Table 6).

Table 1's Point-of-Sale Computation and Smart Labels "require the
ability to efficiently look up data stored in a simple database or other
data structure" (Section 3.2).  This kernel is that database: a 16-entry
key->value table compiled into program pages, searched by key.

On the base ISA the table is a compare/branch ladder; with the branch
flags extension each probe collapses to a subtract + ``br z``.  The
table spans two program pages on the base ISA, exercising the MMU on a
read-mostly workload.  Values are kept below 8 (like the decision-tree
labels) so the output alphabet can never arm the MMU.
"""

import numpy as np

from repro.kernels.kernel import Kernel

#: Database size (4-bit keys, 3-bit values).
TABLE_SIZE = 16
TABLE_SEED = 0xD0DB


def generate_table(seed=TABLE_SEED):
    """Deterministic key->value table shared by kernel and reference."""
    rng = np.random.default_rng(seed)
    return {key: int(rng.integers(0, 8)) for key in range(TABLE_SIZE)}


def build(target):
    table = generate_table()
    has_flags = target.isa.has("br")
    lines = [
        "; Key/value lookup: 16-entry database in program memory.",
        ".equ KEY 2",
        "loop:",
        "    load 0",
        "    store KEY",
    ]

    def emit_entry(key, value, page):
        ret = "%jump loop" if page == 0 else f"%jump ret{page}"
        if has_flags:
            lines.append(f"    load KEY")
            lines.append(f"    %subi {key}")
            lines.append(f"    br np, skip_{key}")
            lines.append(f"    %ldi {value}")
            lines.append("    store 1")
            lines.append(f"    {ret}")
            lines.append(f"skip_{key}:")
        else:
            lines.append(f"    load KEY")
            lines.append(f"    xori {key}")       # zero iff match
            lines.append(f"    %brnz skip_{key}")
            lines.append(f"    %ldi {value}")
            lines.append("    store 1")
            lines.append(f"    {ret}")
            lines.append(f"skip_{key}:")

    # First half of the table probes in page 0; rest in page 1.
    half = TABLE_SIZE // 2
    for key in range(half):
        emit_entry(key, table[key], 0)
    lines.append("    %farjump 1, upper")
    lines.append(".page 1")
    lines.append("upper:")
    for key in range(half, TABLE_SIZE):
        emit_entry(key, table[key], 1)
    # A 4-bit key always hits; this is unreachable backstop code.
    lines.append("    %ldi 0")
    lines.append("    store 1")
    lines.append("ret1:")
    lines.append("    %farjump 0, loop")
    return "\n".join(lines)


def build_loadstore(target):
    table = generate_table()
    lines = [
        "; Key/value lookup (load-store).",
        "loop:",
        "    in r1",
    ]

    def emit_entry(key, value, page):
        lines.append("    mov r2, r1")
        lines.append(f"    addi r2, {-key & 0xF}")
        lines.append(f"    br np, r2, skip_{key}")
        lines.append(f"    movi r3, {value}")
        lines.append("    out r3")
        if page == 0:
            lines.append("    br nzp, r0, loop")
        else:
            lines.append(f"    br nzp, r0, ret{page}")
        lines.append(f"skip_{key}:")

    # 16-bit instructions: 64 per page; split the ladder three ways.
    for key in range(6):
        emit_entry(key, table[key], 0)
    lines.append("    %farjump 1, mid")
    lines.append(".page 1")
    lines.append("mid:")
    for key in range(6, 12):
        emit_entry(key, table[key], 1)
    lines.append("    %farjump 2, high")
    lines.append("ret1:")
    lines.append("    %farjump 0, loop")
    lines.append(".page 2")
    lines.append("high:")
    for key in range(12, TABLE_SIZE):
        emit_entry(key, table[key], 2)
    lines.append("ret2:")
    lines.append("    %farjump 0, loop")
    return "\n".join(lines)


def reference(inputs):
    table = generate_table()
    return [table[key & 0xF] for key in inputs]


def gen_inputs(rng, transactions):
    return [int(rng.integers(0, TABLE_SIZE)) for _ in range(transactions)]


KERNEL = Kernel(
    name="Lookup",
    app_type="Reactive",
    description="16-entry key/value database lookup (POS / Smart Label)",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=1,
)
