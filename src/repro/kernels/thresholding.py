"""Thresholding kernel (Table 6): sticky extreme-value detector.

Checks an input sequence for values greater than a threshold and "places a
non-zero value on the output bus if and only if the input sequence contains
such an extreme value" (Section 5.1).  One output per input sample; the
detector output is sticky, matching applications like the Food Temperature
or Light Level sensors that must remember an excursion.
"""

from repro.isa import bits
from repro.kernels.kernel import Kernel

#: Values strictly above this (unsigned) are "extreme".
THRESHOLD = 10


def build(target):
    """Accumulator-ISA source (any feature subset)."""
    return f"""
; Thresholding: sticky detector for inputs > {THRESHOLD}.
.equ STICKY 2
    %ldi 0
    store STICKY
loop:
    load 0                      ; next sample
    %bgeu_i {THRESHOLD + 1}, extreme
    load STICKY                 ; not extreme: report current state
    store 1
    %jump loop
extreme:
    %ldi 1
    store STICKY
    store 1
    %jump loop
"""


def build_loadstore(target):
    """Load-store-ISA source (r1 = sticky flag, r2 = sample, r3 = scratch)."""
    return f"""
; Thresholding (load-store): sticky detector for inputs > {THRESHOLD}.
    movi r1, 0
loop:
    in r2
    br n, r2, check             ; MSB set: sample >= 8, compare properly
    out r1                      ; sample < 8 <= threshold: not extreme
    br nzp, r0, loop
check:
    mov r3, r2
    addi r3, {-(THRESHOLD + 1) & 0xF}
    br zp, r3, extreme          ; sample - (T+1) >= 0
    out r1
    br nzp, r0, loop
extreme:
    movi r1, 1
    out r1
    br nzp, r0, loop
"""


def reference(inputs):
    sticky = 0
    outputs = []
    for sample in inputs:
        if (sample & 0xF) > THRESHOLD:
            sticky = 1
        outputs.append(sticky)
    return outputs


def gen_inputs(rng, transactions):
    return [int(rng.integers(0, 16)) for _ in range(transactions)]


KERNEL = Kernel(
    name="Thresholding",
    app_type="Streaming",
    description="Sticky detection of input samples above a threshold",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=1,
)
