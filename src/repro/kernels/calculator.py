"""Calculator kernel (Table 6): interactive four-function calculator.

"Performs multiplication, division, addition, or subtraction of two
inputs.  Multiplication performs a 4 bit x 4 bit multiplication producing
an 8 bit output.  Division produces the quotient and remainder of a 4 bit
dividend and a 4 bit (non-zero) divisor.  Addition (subtraction) generates
a 4-bit sum (difference) with overflow (underflow)" (Section 5.1).

Transaction: read operation (0=add, 1=sub, 2=mul, 3=div), operand a,
operand b; emit two outputs:

=====  ======================  =====================
 op     first output            second output
=====  ======================  =====================
 add    (a+b) mod 16            carry (0/1)
 sub    (a-b) mod 16            borrow (0/1)
 mul    product low nibble      product high nibble
 div    quotient                remainder
=====  ======================  =====================

This is the big multi-page kernel: the main dispatch lives in page 0,
multiplication in page 1 and division in page 2, all glued together by
the off-chip MMU (Section 5.1).  The output alphabet makes a spurious
three-in-a-row MMU sentinel impossible (see :mod:`repro.sim.mmu`).
"""

from repro.kernels.kernel import Kernel

OP_ADD, OP_SUB, OP_MUL, OP_DIV = range(4)


def build(target):
    if target.isa.has("mull"):
        mul_body = """\
do_mul:
    load A
    mull B                      ; hardware multiplier, low nibble
    store 1
    load A
    mulh B                      ; high nibble
    store 1
    %farjump 0, loop"""
    else:
        mul_body = """\
do_mul:
    ; (HI:LO) = A * B by repeated double-word addition of A, B times.
    %ldi 0
    store LO
    store HI
mul_loop:
    load B
    %brz mul_done
    %dec B
    %add2w LO, HI, A
    %jump mul_loop
mul_done:
    load LO
    store 1
    load HI
    store 1
    %farjump 0, loop"""
    return f"""
; Four-function calculator.  A=2, B=3; mul uses LO=4 HI=5; div uses Q=5.
.equ A 2
.equ B 3
.equ LO 4
.equ HI 5
.equ Q 5
loop:
    load 0
    store 4                     ; op (slot 4 is free until mul/div start)
    load 0
    store A
    load 0
    store B
    load 4
    %brz do_add
    load 4
    %subi 1
    %brz do_sub
    load 4
    %subi 2
    %brz go_mul
    %farjump 2, do_div
go_mul:
    %farjump 1, do_mul

do_add:
    load A
    add B
    store 1                     ; sum
    %bltu_m B, add_carry        ; sum < b  <=>  carry out
    %ldi 0
    store 1
    %jump loop
add_carry:
    %ldi 1
    store 1
    %jump loop

do_sub:
    load A
    %sub_m B
    store 1                     ; difference
    load A
    %bltu_m B, sub_borrow       ; a < b  <=>  borrow
    %ldi 0
    store 1
    %jump loop
sub_borrow:
    %ldi 1
    store 1
    %jump loop

.page 1
{mul_body}

.page 2
do_div:
    ; Q = A / B, remainder left in A (B is non-zero by contract).
    %ldi 0
    store Q
div_loop:
    load A
    %bltu_m B, div_done         ; remainder < divisor: finished
    load A
    %sub_m B
    store A
    %inc Q
    %jump div_loop
div_done:
    load Q
    store 1
    load A
    store 1
    %farjump 0, loop
"""


def build_loadstore(target):
    return """
; Four-function calculator (load-store).
; r1=op r2=a r3=b r4=scratch r5=result/counter r6=farjump scratch.
loop:
    in r1
    in r2
    in r3
    br z, r1, do_add
    addi r1, 15
    br z, r1, do_sub
    addi r1, 15
    br z, r1, go_mul
    %farjump 2, do_div
go_mul:
    %farjump 1, do_mul

do_add:
    add r2, r3                  ; sets carry
    movi r4, 0
    adci r4, 0                  ; r4 = carry
    out r2
    out r4
    br nzp, r0, loop

do_sub:
    sub r2, r3                  ; carry = NOT borrow
    movi r4, 0
    adci r4, 0
    xori r4, 1                  ; r4 = borrow
    out r2
    out r4
    br nzp, r0, loop

.page 1
do_mul:
    ; (r5:r4) = a * b by repeated double-word addition.
    movi r4, 0
    movi r5, 0
mul_loop:
    br z, r3, mul_done
    addi r3, 15
    add r4, r2                  ; low += a, sets carry
    adci r5, 0                  ; high += carry
    br nzp, r0, mul_loop
mul_done:
    out r4
    out r5
    %farjump 0, loop

.page 2
do_div:
    ; r5 = a / b, remainder in r2.  Unsigned compare via MSB partition.
    movi r5, 0
div_loop:
    mov r4, r2
    xor r4, r3
    br n, r4, div_msb_differ
    mov r4, r2                  ; same MSB: signed subtract is exact
    sub r4, r3
    br n, r4, div_done          ; r2 < r3
    br nzp, r0, div_step
div_msb_differ:
    br n, r3, div_done          ; divisor holds the MSB: r2 < r3
div_step:
    sub r2, r3
    addi r5, 1
    br nzp, r0, div_loop
div_done:
    out r5
    out r2
    %farjump 0, loop
"""


def reference(inputs):
    if len(inputs) % 3:
        raise ValueError("calculator consumes (op, a, b) triples")
    outputs = []
    for i in range(0, len(inputs), 3):
        op, a, b = (value & 0xF for value in inputs[i:i + 3])
        op &= 0x3
        if op == OP_ADD:
            total = a + b
            outputs += [total & 0xF, total >> 4]
        elif op == OP_SUB:
            outputs += [(a - b) & 0xF, 1 if a < b else 0]
        elif op == OP_MUL:
            product = a * b
            outputs += [product & 0xF, product >> 4]
        else:
            if b == 0:
                raise ValueError("division by zero in calculator input")
            outputs += [a // b, a % b]
    return outputs


def gen_inputs(rng, transactions):
    samples = []
    for _ in range(transactions):
        op = int(rng.integers(0, 4))
        a = int(rng.integers(0, 16))
        b = int(rng.integers(1, 16)) if op == OP_DIV \
            else int(rng.integers(0, 16))
        samples += [op, a, b]
    return samples


def gen_inputs_op(op, rng, transactions):
    """Inputs restricted to one operation (Figure 8 reports the Calculator
    multiplication and division subroutines separately)."""
    samples = []
    for _ in range(transactions):
        a = int(rng.integers(0, 16))
        b = int(rng.integers(1, 16)) if op == OP_DIV \
            else int(rng.integers(0, 16))
        samples += [op, a, b]
    return samples


KERNEL = Kernel(
    name="Calculator",
    app_type="Interactive",
    description="Four-function calculator (add/sub/mul/div) over the MMU",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=3,
)
