"""Parity Check kernel (Table 6): even-parity of an 8-bit word.

"Parity checking is a computationally inexpensive error detection code"
(Section 5.1) for flexible systems with wireless links.  On FlexiCore4 the
octet arrives as two nibbles (low first); the kernel outputs the parity
bit (1 when an odd number of bits are set).

Two algorithms are generated depending on the hardware:

- with the barrel shifter: the classic xor-fold ``p ^= p>>2; p ^= p>>1``;
- on the base ISA: MSB peeling -- shifting left through the adder and
  toggling a flag on each set bit, which avoids the ~30-instruction
  right-shift routine entirely.
"""

from repro.isa import bits
from repro.kernels.kernel import Kernel


def _build_fold(width):
    lines = [
        "; Parity (xor-fold, barrel shifter available).",
        ".equ V 2",
        "loop:",
        "    load 0",
        "    store V",
        "    load 0",
        "    xor V",
        "    store V",
    ]
    shift = width // 2
    while shift >= 1:
        lines += [
            f"    %lsr {shift}",
            "    xor V",
            "    store V",
        ]
        shift //= 2
    lines += [
        "    nandi 1",        # acc&1 via ~(acc&1) then complement
        f"    xori {(1 << width) - 1}",
        "    store 1",
        "    %jump loop",
    ]
    return "\n".join(lines)


def _build_peel(width):
    lines = [
        "; Parity (MSB peeling, base ISA).",
        ".equ V 2",
        ".equ F 3",
        "loop:",
        "    load 0",
        "    store V",
        "    load 0",
        "    xor V",
        "    store V",
        "    %ldi 0",
        "    store F",
    ]
    for index in range(width):
        lines += [
            "    load V",
            f"    brn bit_set_{index}",
            f"    %jump bit_done_{index}",
            f"bit_set_{index}:",
            "    load F",
            "    xori 1",
            "    store F",
            f"bit_done_{index}:",
        ]
        if index != width - 1:
            lines += [
                "    load V",
                "    add V",         # shift the word left by one
                "    store V",
            ]
    lines += [
        "    load F",
        "    store 1",
        "    %jump loop",
    ]
    return "\n".join(lines)


def build(target):
    width = target.isa.word_bits
    if target.isa.has("lsri"):
        return _build_fold(width)
    return _build_peel(width)


def build_loadstore(target):
    return """
; Parity (load-store): xor-fold in registers.
loop:
    in r1
    in r2
    xor r1, r2
    mov r2, r1
    lsri r2, 2
    xor r1, r2
    mov r2, r1
    lsri r2, 1
    xor r1, r2
    andi r1, 1
    out r1
    br nzp, r0, loop
"""


def reference(inputs):
    if len(inputs) % 2:
        raise ValueError("parity kernel consumes nibble pairs")
    outputs = []
    for i in range(0, len(inputs), 2):
        word = ((inputs[i + 1] & 0xF) << 4) | (inputs[i] & 0xF)
        outputs.append(bits.parity(word))
    return outputs


def gen_inputs(rng, transactions):
    samples = []
    for _ in range(transactions):
        samples += [int(rng.integers(0, 16)), int(rng.integers(0, 16))]
    return samples


KERNEL = Kernel(
    name="Parity Check",
    app_type="Reactive",
    description="Even-parity bit of an 8-bit word (two-nibble input)",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=2,
)
