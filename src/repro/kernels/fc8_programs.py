"""Native FlexiCore8 demonstration programs.

The Table 6 suite targets the 4-bit cores (as the paper's Figure 8
does); these programs exercise FlexiCore8's distinguishing features --
the 8-bit datapath, the 4-word memory, and the two-byte LOAD BYTE
instruction -- with golden models, rounding out the 8-bit core's
software story.
"""

from repro.asm import assemble
from repro.isa import bits, get_isa


def isa():
    return get_isa("flexicore8")


# ----------------------------------------------------------------------

PARITY8_SOURCE = """
; Even parity of each full input byte, in one read per word.
.equ V 2
.equ F 3
loop:
    load 0          ; whole octet at once -- no nibble pairing
    store V
    nandi 0
    xori 15         ; acc <- 0x00 (ldb would also do; this is 2 bytes too)
    store F
"""
# Peel all eight bits through the MSB.
for _bit in range(8):
    PARITY8_SOURCE += f"""
    load V
    brn set_{_bit}
    nandi 0
    brn done_{_bit}
set_{_bit}:
    load F
    xori 1
    store F
done_{_bit}:
"""
    if _bit != 7:
        PARITY8_SOURCE += """
    load V
    add V
    store V
"""
PARITY8_SOURCE += """
    load F
    store 1
    nandi 0
    brn loop
"""


def parity8_program():
    return assemble(PARITY8_SOURCE, isa(), source_name="parity8")


def parity8_reference(inputs):
    return [bits.parity(value & 0xFF) for value in inputs]


# ----------------------------------------------------------------------

def checksum_source():
    """Running mod-256 checksum with an LDB-loaded initial value --
    a byte-stream integrity check (the EDC use case of Table 1)."""
    return """
.equ SUM 2
    ldb 0xA5        ; LOAD BYTE: the FlexiCore8-only instruction
    store SUM
loop:
    load 0
    add SUM
    store SUM
    store 1
    nandi 0
    brn loop
"""


def checksum_program():
    return assemble(checksum_source(), isa(), source_name="checksum8")


def checksum_reference(inputs, seed=0xA5):
    total = seed
    outputs = []
    for value in inputs:
        total = (total + (value & 0xFF)) & 0xFF
        outputs.append(total)
    return outputs


# ----------------------------------------------------------------------

def scale_clip_source():
    """Sensor conditioning: y = min(x + bias, limit) on full octets.

    Exercises LOAD BYTE for both constants and the MSB-partition
    unsigned compare at 8-bit width.
    """
    return """
.equ X 2
.equ LIM 3
    ldb 0xC8        ; limit = 200, via LOAD BYTE
    store LIM
loop:
    load 0
    addi 7          ; bias
    store X
    ; unsigned compare X vs LIM: MSB partition, then exact signed diff.
    ; Note 'nandi 15' is a full 8-bit NOT: the imm4 sign-extends to 0xFF.
    xor LIM
    brn msb_differ
    load X
    nandi 15
    add LIM
    nandi 15        ; acc = X - LIM (same-MSB: no overflow)
    brn no_clip     ; negative -> X < LIM
emit_lim:
    load LIM
    store 1
    nandi 0
    brn loop
msb_differ:
    load LIM
    brn no_clip     ; LIM holds the MSB -> X < LIM
    nandi 0
    brn emit_lim    ; X holds the MSB -> X > LIM -> clip
no_clip:
    load X
    store 1
    nandi 0
    brn loop
"""


def scale_clip_program():
    return assemble(scale_clip_source(), isa(), source_name="scale_clip8")


def scale_clip_reference(inputs, bias=7, limit=0xC8):
    outputs = []
    for value in inputs:
        y = (value + bias) & 0xFF
        outputs.append(min(y, limit))
    return outputs
