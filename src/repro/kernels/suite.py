"""The Table 6 benchmark suite, as a registry."""

from repro.kernels import (
    calculator,
    decision_tree,
    fir,
    intavg,
    parity,
    thresholding,
    xorshift,
)
from repro.kernels.kernel import Kernel, Target

#: Table 6 order.
SUITE = (
    calculator.KERNEL,
    fir.KERNEL,
    decision_tree.KERNEL,
    intavg.KERNEL,
    thresholding.KERNEL,
    parity.KERNEL,
    xorshift.KERNEL,
)

#: Kernels beyond Table 6 (the POS/Smart-Label lookup workload).
from repro.kernels import lookup as _lookup  # noqa: E402

EXTRA_KERNELS = (_lookup.KERNEL,)

_BY_NAME = {kernel.name: kernel for kernel in SUITE + EXTRA_KERNELS}
_ALIASES = {
    "calculator": "Calculator",
    "fir": "Four-tap FIR",
    "decision_tree": "Decision Tree",
    "dectree": "Decision Tree",
    "intavg": "IntAvg",
    "thresholding": "Thresholding",
    "parity": "Parity Check",
    "xorshift": "XorShift8",
    "xorshift8": "XorShift8",
}


def kernel_names():
    return tuple(kernel.name for kernel in SUITE)


def get_kernel(name):
    """Look a kernel up by its Table 6 name or a lowercase alias."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    canonical = _ALIASES.get(name.lower().replace(" ", "_"))
    if canonical is None:
        raise KeyError(f"unknown kernel '{name}'")
    return _BY_NAME[canonical]


def check_suite(target, rng, transactions=8, max_cycles=2_000_000):
    """Run every kernel against its golden model on ``target``.

    Returns {kernel name: RunResult}.  Raises on any output mismatch --
    this is the software analogue of the paper's chip-vs-RTL testing.
    """
    results = {}
    for kernel in SUITE:
        inputs = kernel.generate_inputs(rng, transactions)
        results[kernel.name] = kernel.check(
            target, inputs, max_cycles=max_cycles
        )
    return results
