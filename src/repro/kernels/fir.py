"""Four-tap FIR kernel (Table 6).

Applies a {-1,+1}-coefficient FIR filter to an input stream (Section 5.1:
"filter coefficients are in {-1, 1}"); with [+1, -1, +1, -1] this is a
high-pass edge detector.  Samples are signed 4-bit values, and the
accumulation *saturates* at the datapath limits -- the overflow checks are
what make this kernel non-trivial on a machine without flags: every tap
costs a sign-partition dance on the base ISA and collapses to a couple of
instructions with the Section 6.1 extensions.

One output (the saturated filter value, two's complement) per input.
"""

from repro.isa import bits
from repro.kernels.kernel import Kernel

#: Default filter coefficients, newest sample first (a high-pass edge
#: detector).  Any length-4 vector over {-1, +1} is supported via
#: :func:`make_kernel`.
COEFFS = (1, -1, 1, -1)


def _check_coeffs(coeffs):
    coeffs = tuple(coeffs)
    if len(coeffs) != 4 or any(c not in (-1, 1) for c in coeffs):
        raise ValueError(
            f"coefficients must be four values in {{-1, +1}}, "
            f"got {coeffs}"
        )
    return coeffs


def build(target, coeffs=COEFFS):
    coeffs = _check_coeffs(coeffs)
    if target.isa.has("xch"):
        # The exchange instruction ripples the delay line through the
        # accumulator: 5 instructions instead of 8.
        aging = """\
    load 0                      ; newest sample
    xch X0
    xch X1
    xch X2
    store X3"""
    else:
        aging = """\
    load X2
    store X3                    ; age the delay line
    load X1
    store X2
    load X0
    store X1
    load 0
    store X0                    ; newest sample"""
    taps = ["    load X0"]
    if coeffs[0] == -1:
        taps.append("    %negate")
    for index, coeff in enumerate(coeffs[1:], start=1):
        macro = "%satadd_m" if coeff == 1 else "%satsub_m"
        taps.append(f"    {macro} X{index}")
    tap_lines = "\n".join(taps)
    return f"""
; Four-tap FIR, coefficients {list(coeffs)}, saturating accumulate.
.equ X0 2
.equ X1 3
.equ X2 4
.equ X3 5
    %ldi 0
    store X0
    store X1
    store X2
    store X3
loop:
{aging}
{tap_lines}
    store 1
    %jump loop
    %emit_pool
"""


def _ls_sat_op(tag, op, operand_reg):
    """Emit load-store lines for ``r5 = sat(r5 op r<operand_reg>)``.

    r6 is scratch, r7 holds the pre-op accumulator (whose sign chooses the
    saturation rail).  For addition, overflow is only possible when the
    operand signs match; for subtraction, when they differ.
    """
    assert op in ("add", "sub")
    check, safe = f"{tag}_check", f"{tag}_safe"
    ovf, neg, done = f"{tag}_ovf", f"{tag}_neg", f"{tag}_done"
    danger_mask = "zp" if op == "add" else "n"  # sign-xor that can overflow
    return [
        "    mov r7, r5",
        "    mov r6, r5",
        f"    xor r6, {operand_reg}",
        f"    br {danger_mask}, r6, {check}",
        f"{safe}:",
        f"    {op} r5, {operand_reg}",
        f"    br nzp, r0, {done}",
        f"{check}:",
        f"    {op} r5, {operand_reg}",
        "    mov r6, r5",
        "    xor r6, r7",
        f"    br zp, r6, {done}",        # result kept A's sign: no overflow
        f"    br n, r7, {neg}",
        "    movi r5, 7",                # A >= 0: clamp to +max
        f"    br nzp, r0, {done}",
        f"{neg}:",
        "    movi r5, 8",                # A < 0: clamp to -max-1
        f"{done}:",
    ]


def build_loadstore(target, coeffs=COEFFS):
    """r1..r4 = delay line, r5 = accumulator, r6/r7 = scratch."""
    coeffs = _check_coeffs(coeffs)
    lines = [
        f"; Four-tap FIR (load-store), coefficients {list(coeffs)}.",
        "    movi r1, 0",
        "    movi r2, 0",
        "    movi r3, 0",
        "    movi r4, 0",
        "loop:",
        "    mov r4, r3",
        "    mov r3, r2",
        "    mov r2, r1",
        "    in r1",
        "    mov r5, r1",
    ]
    if coeffs[0] == -1:
        lines.append("    neg r5")
    for index, coeff in enumerate(coeffs[1:], start=1):
        op = "add" if coeff == 1 else "sub"
        lines += _ls_sat_op(f"t{index}", op, f"r{index + 1}")
    lines += [
        "    out r5",
        "    br nzp, r0, loop",
    ]
    return "\n".join(lines)


def _sat(value, width=4):
    hi = (1 << (width - 1)) - 1
    lo = -(1 << (width - 1))
    return max(lo, min(hi, value))


def reference(inputs, coeffs=COEFFS):
    coeffs = _check_coeffs(coeffs)
    width = 4
    history = [0, 0, 0, 0]
    outputs = []
    for sample in inputs:
        history = [bits.sign_extend(sample, width)] + history[:3]
        # The first tap is applied by (wrapping) negation, matching the
        # hardware's two's-complement 'neg'; later taps saturate.
        y = history[0]
        if coeffs[0] == -1:
            y = bits.sign_extend(-y, width)
        for coeff, value in zip(coeffs[1:], history[1:]):
            y = _sat(y + coeff * value, width)
        outputs.append(y & 0xF)
    return outputs


def make_kernel(coeffs):
    """A FIR kernel for any length-4 coefficient vector over {-1, +1}."""
    coeffs = _check_coeffs(coeffs)
    return Kernel(
        name=f"FIR{list(coeffs)}",
        app_type="Streaming",
        description=f"Saturating 4-tap FIR with coefficients {coeffs}",
        source_fn=lambda target: build(target, coeffs),
        loadstore_source_fn=lambda target: build_loadstore(target, coeffs),
        reference_fn=lambda inputs: reference(inputs, coeffs),
        input_fn=gen_inputs,
        inputs_per_transaction=1,
    )


def gen_inputs(rng, transactions):
    return [int(rng.integers(0, 16)) for _ in range(transactions)]


KERNEL = Kernel(
    name="Four-tap FIR",
    app_type="Streaming",
    description="Saturating 4-tap FIR filter with +/-1 coefficients",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=1,
)
