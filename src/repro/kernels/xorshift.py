"""XorShift8 kernel (Table 6): Marsaglia xorshift PRNG.

"A pseudo-random number generator which, given a non-zero seed, produces a
length-255 sequence of non-repeating 8-bit numbers" (Section 5.1).  The
shift triple (1, 1, 2) gives a full 255-value period (verified by the test
suite).  On FlexiCore4 the 8-bit state lives in two nibbles; left shifts
cost an add, but the ``x ^= x >> 1`` step needs two bit-serial right
shifts on the base ISA -- which is why this kernel is the other big winner
from the barrel-shifter extension (Figure 11).

Reactive interface: each input read is a "next number" trigger; the kernel
responds with the low then high nibble of the fresh state.  The base-ISA
version spills across two program pages and exercises the off-chip MMU.
"""

from repro.kernels.kernel import Kernel

#: Full-period shift triple for x ^= x<<A; x ^= x>>B; x ^= x<<C.
SHIFT_A, SHIFT_B, SHIFT_C = 1, 1, 2
#: Power-on state.
SEED = 1


def next_state(x):
    """One xorshift step on an 8-bit state."""
    x ^= (x << SHIFT_A) & 0xFF
    x ^= x >> SHIFT_B
    x ^= (x << SHIFT_C) & 0xFF
    return x


def _pair_shift_left(lo, hi, dst_lo, dst_hi, tag):
    """Emit acc-ISA lines computing (dst_hi:dst_lo) = (hi:lo) << 1."""
    return [
        f"    load {hi}",
        f"    add {hi}",
        f"    store {dst_hi}",          # hi<<1, top bit dropped
        f"    load {lo}",
        f"    brn {tag}_cross",         # MSB of lo crosses into hi
        f"    %jump {tag}_nocross",
        f"{tag}_cross:",
        f"    %inc {dst_hi}",
        f"{tag}_nocross:",
        f"    load {lo}",
        f"    add {lo}",
        f"    store {dst_lo}",
    ]


def build(target):
    """Accumulator source.  State: LO=2, HI=3; scratch pair: 4, 5."""
    lines = [
        "; XorShift8 with triple (1,1,2); state in (HI:LO) nibbles.",
        ".equ LO 2",
        ".equ HI 3",
        f"    %ldi {SEED & 0xF}",
        "    store LO",
        f"    %ldi {(SEED >> 4) & 0xF}",
        "    store HI",
        "loop:",
        "    load 0                     ; consume the trigger input",
        # ---- step 1: x ^= x << 1 ----------------------------------
    ]
    lines += _pair_shift_left("LO", "HI", 4, 5, "s1")
    lines += [
        "    load LO",
        "    xor 4",
        "    store LO",
        "    load HI",
        "    xor 5",
        "    store HI",
    ]
    # ---- step 2: x ^= x >> 1 (page break goes here on the base ISA) --
    step2 = [
        "    load HI",
        "    %lsr1",
        "    store 5                    ; hi >> 1",
        "    load LO",
        "    %lsr1",
        "    store 4                    ; lo >> 1 (cross bit still missing)",
        "    load HI",
        "    nandi 1",
        "    xori 15                    ; acc = hi & 1",
        "    %brz s2_nocross",
        "    load 4",
        "    addi 8                     ; cross bit enters lo's MSB",
        "    store 4",
        "s2_nocross:",
        "    load LO",
        "    xor 4",
        "    store LO",
        "    load HI",
        "    xor 5",
        "    store HI",
    ]
    # ---- step 3: x ^= x << 2 via two pair shifts ----------------------
    step3 = _pair_shift_left("LO", "HI", 4, 5, "s3a")
    step3 += _pair_shift_left(4, 5, 4, 5, "s3b")
    step3 += [
        "    load LO",
        "    xor 4",
        "    store LO",
        "    load HI",
        "    xor 5",
        "    store HI",
        "    load LO",
        "    store 1",
        "    load HI",
        "    store 1",
    ]
    # Base-ISA code exceeds one 128-byte page: split at the step
    # boundaries and return through the MMU.  Feature-rich targets fit in
    # page 0 (detected by a probe assembly).
    from repro.asm.errors import LayoutError

    flat = lines + step2 + step3 + ["    %jump loop", "    %emit_pool"]
    try:
        probe = target.assemble("\n".join(flat), source_name="xorshift-probe")
        if probe.size_bytes <= 124:
            return "\n".join(flat)
    except LayoutError:
        pass
    paged = list(lines)
    paged += ["    %farjump 1, step2", ".page 1", "step2:"]
    paged += step2
    paged += ["    %farjump 2, step3", "    %emit_pool",
              ".page 2", "step3:"]
    paged += step3
    paged += ["    %farjump 0, loop"]
    return "\n".join(paged)


def _build_loadstore_nibbles(target):
    """Real 4-bit-register implementation (r1=lo, r2=hi)."""
    return f"""
; XorShift8 (load-store, nibble pair): r1=lo r2=hi, scratch r3-r5.
    movi r1, {SEED & 0xF}
    movi r2, {(SEED >> 4) & 0xF}
loop:
    in r3                       ; trigger
    ; step 1: x ^= x << 1
    mov r4, r1
    add r4, r4                  ; lo<<1 (carry -> cross)
    movi r5, 0
    adci r5, 0                  ; r5 = cross bit
    mov r3, r2
    add r3, r3
    or r3, r5                   ; hi<<1 | cross
    xor r1, r4
    xor r2, r3
    ; step 2: x ^= x >> 1
    mov r4, r1
    lsri r4, 1
    mov r5, r2
    andi r5, 1
    br z, r5, nocross
    addi r4, 8
nocross:
    mov r3, r2
    lsri r3, 1
    xor r1, r4
    xor r2, r3
    ; step 3: x ^= x << 2
    mov r4, r1
    add r4, r4
    movi r5, 0
    adci r5, 0
    mov r3, r2
    add r3, r3
    or r3, r5                   ; (hi:lo)<<1
    add r4, r4
    movi r5, 0
    adci r5, 0
    add r3, r3
    or r3, r5                   ; (hi:lo)<<2
    xor r1, r4
    xor r2, r3
    out r1
    out r2
    br nzp, r0, loop
"""


def reference(inputs):
    outputs = []
    x = SEED
    for _ in inputs:
        x = next_state(x)
        outputs += [x & 0xF, (x >> 4) & 0xF]
    return outputs


def gen_inputs(rng, transactions):
    return [0] * transactions  # triggers; values are ignored


KERNEL = Kernel(
    name="XorShift8",
    app_type="Reactive",
    description="8-bit xorshift PRNG, one byte (two nibbles) per trigger",
    source_fn=build,
    loadstore_source_fn=_build_loadstore_nibbles,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=1,
)
