"""Decision Tree kernel (Table 6): depth-4 inference, 3 features.

"Performs inference on a randomly generated depth-four decision tree --
such decision trees are suitable for several of the inference applications
found in Table 1" (Section 5.1).  The tree is generated once from a fixed
seed and compiled into a compare-and-branch cascade; the Python reference
walks the identical structure.

Per transaction the kernel reads the three 4-bit feature values, walks the
tree, and outputs the 3-bit class label of the leaf.  Class labels are
kept below 8 so the output stream can never contain the MMU sentinel --
the code spans two program pages (the root's left subtree in page 0, the
right subtree in page 1).
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.kernel import Kernel

#: Tree shape per Table 6.
DEPTH = 4
FEATURES = 3
#: Seed fixing the random tree shared by the kernel and its reference.
TREE_SEED = 0x51CA


@dataclass
class Node:
    """Internal node: go left when feature < threshold (unsigned).
    Leaves carry a class label and no children."""

    feature: Optional[int] = None
    threshold: Optional[int] = None
    left: Optional["Node"] = None
    right: Optional["Node"] = None
    label: Optional[int] = None

    @property
    def is_leaf(self):
        return self.label is not None


def generate_tree(seed=TREE_SEED, depth=DEPTH, features=FEATURES):
    """Deterministically generate a complete depth-``depth`` tree."""
    rng = np.random.default_rng(seed)

    def build_node(level):
        if level == depth:
            return Node(label=int(rng.integers(0, 8)))
        return Node(
            feature=int(rng.integers(0, features)),
            threshold=int(rng.integers(1, 16)),
            left=build_node(level + 1),
            right=build_node(level + 1),
        )

    return build_node(0)


def classify(tree, feature_values):
    """Golden-model walk of the tree."""
    node = tree
    while not node.is_leaf:
        value = feature_values[node.feature] & 0xF
        node = node.left if value < node.threshold else node.right
    return node.label


# ----------------------------------------------------------------------
# Accumulator-ISA code generation.
#
# Page budget: the whole tree exceeds one 128-byte page on the base ISA,
# so the root's comparison lives in page 0 and each depth-1 subtree gets
# its own page (leaves return to the read loop through a shared far-jump
# stub, one per page).
# ----------------------------------------------------------------------

_ACC_CUT_DEPTH = 1


def _emit_acc(node, path, return_macro, lines):
    lines.append(f"n{path}:")
    if node.is_leaf:
        lines.append(f"    %ldi {node.label}")
        lines.append("    store 1")
        lines.append(f"    {return_macro}")
        return
    lines.append(f"    load {2 + node.feature}")
    lines.append(f"    %bltu_i {node.threshold}, n{path}L")
    lines.append(f"    %jump n{path}R")
    _emit_acc(node.right, path + "R", return_macro, lines)
    _emit_acc(node.left, path + "L", return_macro, lines)


def build(target):
    tree = generate_tree()
    lines = [
        "; Decision tree inference: depth 4, 3 features, classes 0..7.",
        ".equ F0 2",
        ".equ F1 3",
        ".equ F2 4",
        "loop:",
        "    load 0",
        "    store F0",
        "    load 0",
        "    store F1",
        "    load 0",
        "    store F2",
    ]
    subtrees = []

    def dispatch(node, path, depth):
        if node.is_leaf or depth == _ACC_CUT_DEPTH:
            page = 1 + len(subtrees)
            subtrees.append((page, node, path))
            lines.append(f"    %farjump {page}, n{path}")
            return
        lines.append(f"    load {2 + node.feature}")
        lines.append(f"    %bltu_i {node.threshold}, d{path}L")
        dispatch(node.right, path + "R", depth + 1)
        lines.append(f"d{path}L:")
        dispatch(node.left, path + "L", depth + 1)

    dispatch(tree, "", 0)
    for page, node, path in subtrees:
        lines.append(f".page {page}")
        _emit_acc(node, path, f"%jump ret{page}", lines)
        lines.append(f"ret{page}:")
        lines.append("    %farjump 0, loop")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Load-store-ISA code generation.
# ----------------------------------------------------------------------

def _emit_ls_compare(reg, threshold, less_target, geq_target, tag, lines):
    """Unsigned ``reg < threshold`` on the load-store machine.

    MSB partition, specialized on the constant threshold (r4 scratch).
    """
    if threshold <= 8:
        lines.append(f"    br n, {reg}, {geq_target}")  # reg >= 8 >= t
        lines.append(f"    mov r4, {reg}")
        lines.append(f"    addi r4, {-threshold & 0xF}")
        lines.append(f"    br n, r4, {less_target}")
        lines.append(f"    br nzp, r0, {geq_target}")
    else:
        lines.append(f"    br n, {reg}, {tag}_hi")
        lines.append(f"    br nzp, r0, {less_target}")  # reg < 8 < t
        lines.append(f"{tag}_hi:")
        lines.append(f"    mov r4, {reg}")
        lines.append(f"    addi r4, {-threshold & 0xF}")
        lines.append(f"    br n, r4, {less_target}")
        lines.append(f"    br nzp, r0, {geq_target}")


_LS_CUT_DEPTH = 2  # 16-bit instructions: only 64 fit in a page


def _emit_ls(node, path, return_jump, lines):
    lines.append(f"n{path}:")
    if node.is_leaf:
        lines.append(f"    movi r5, {node.label}")
        lines.append("    out r5")
        lines.append(f"    {return_jump}")
        return
    reg = f"r{1 + node.feature}"
    _emit_ls_compare(
        reg, node.threshold, f"n{path}L", f"n{path}Rx", f"n{path}", lines
    )
    _emit_ls(node.right, path + "Rx", return_jump, lines)
    _emit_ls(node.left, path + "L", return_jump, lines)


def build_loadstore(target):
    tree = generate_tree()
    lines = [
        "; Decision tree (load-store): features r1-r3, scratch r4/r5.",
        "loop:",
        "    in r1",
        "    in r2",
        "    in r3",
    ]
    subtrees = []

    def dispatch(node, path, depth):
        if node.is_leaf or depth == _LS_CUT_DEPTH:
            page = 1 + len(subtrees)
            subtrees.append((page, node, path))
            lines.append(f"go{path}:")
            lines.append(f"    %farjump {page}, n{path}")
            return
        reg = f"r{1 + node.feature}"
        _emit_ls_compare(
            reg, node.threshold, f"d{path}L", f"d{path}R", f"d{path}", lines
        )
        lines.append(f"d{path}R:")
        dispatch(node.right, path + "R", depth + 1)
        lines.append(f"d{path}L:")
        dispatch(node.left, path + "L", depth + 1)

    dispatch(tree, "", 0)
    for page, node, path in subtrees:
        lines.append(f".page {page}")
        _emit_ls(node, path, f"br nzp, r0, ret{page}", lines)
        lines.append(f"ret{page}:")
        lines.append("    %farjump 0, loop")
    return "\n".join(lines)


def reference(inputs):
    if len(inputs) % FEATURES:
        raise ValueError("decision tree consumes feature triples")
    tree = generate_tree()
    outputs = []
    for i in range(0, len(inputs), FEATURES):
        outputs.append(classify(tree, inputs[i:i + FEATURES]))
    return outputs


def gen_inputs(rng, transactions):
    samples = []
    for _ in range(transactions):
        samples += [int(rng.integers(0, 16)) for _ in range(FEATURES)]
    return samples


KERNEL = Kernel(
    name="Decision Tree",
    app_type="Reactive",
    description="Depth-4 decision-tree inference over 3 features",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=FEATURES,
)
