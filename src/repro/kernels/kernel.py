"""Kernel framework: targets, assembly and golden-model checking.

A :class:`Kernel` owns three things:

- a *source generator* producing macro-assembly for an accumulator target
  (and optionally load-store assembly for the Section 6.2 study),
- a *golden reference* implemented in plain Python, used to verify every
  simulated run exactly (the analogue of the paper's RTL-vs-chip test
  comparison), and
- an *input generator* for sweeping/sampling the input space the way
  Section 5.2 does.

A :class:`Target` bundles an ISA with its macro library, so the same
kernel assembles for the base FlexiCore4, any extension subset, and the
load-store machine.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.asm import Assembler
from repro.kernels.macros import build_library, loadstore_library
from repro.sim import run_program


@dataclass(frozen=True)
class Target:
    """An ISA plus the macro library that papers over its feature gaps."""

    isa: object
    library: object

    @classmethod
    def for_isa(cls, isa):
        if isa.accumulator:
            return cls(isa=isa, library=build_library(isa))
        return cls(isa=isa, library=loadstore_library(isa))

    @classmethod
    def named(cls, isa_name):
        from repro.isa import get_isa

        return cls.for_isa(get_isa(isa_name))

    @property
    def name(self):
        return self.isa.name

    def assemble(self, source, source_name="<kernel>"):
        return Assembler(self.isa, self.library).assemble(source, source_name)


@dataclass
class Kernel:
    """One benchmark of Table 6."""

    name: str
    app_type: str  # 'Interactive' | 'Streaming' | 'Reactive'
    description: str
    source_fn: Callable[[Target], str]
    reference_fn: Callable[[List[int]], List[int]]
    input_fn: Callable[[object, int], List[int]]  # (rng, n) -> samples
    #: Inputs consumed per logical "transaction" (1 for streaming kernels).
    inputs_per_transaction: int = 1
    #: Kernels that cannot run on a given target return None from source_fn.
    loadstore_source_fn: Optional[Callable[[Target], str]] = None

    def source(self, target):
        if target.isa.accumulator:
            return self.source_fn(target)
        if self.loadstore_source_fn is None:
            raise ValueError(
                f"kernel '{self.name}' has no load-store implementation"
            )
        return self.loadstore_source_fn(target)

    def program(self, target):
        """Assemble this kernel for ``target``."""
        return target.assemble(self.source(target), source_name=self.name)

    def expected(self, inputs):
        return self.reference_fn(list(inputs))

    def generate_inputs(self, rng, transactions):
        return self.input_fn(rng, transactions)

    def run(self, target, inputs, max_cycles=2_000_000, fastpath=None):
        """Assemble, simulate on ``inputs`` and return (result, outputs).

        The program is driven until it reads past the final sample (the
        idiomatic end for streaming kernels) or halts.  ``fastpath=False``
        forces the reference step loop (the default runs the predecoded
        dispatch, which is bit-identical).
        """
        program = self.program(target)
        result, sink = run_program(
            program, inputs=inputs, max_cycles=max_cycles,
            fastpath=fastpath,
        )
        return result, sink.values

    def check(self, target, inputs, max_cycles=2_000_000, fastpath=None):
        """Run and compare against the golden model.

        Returns the :class:`~repro.sim.simulator.RunResult`; raises
        AssertionError with a diff on mismatch.
        """
        result, outputs = self.run(
            target, inputs, max_cycles=max_cycles, fastpath=fastpath,
        )
        expected = self.expected(inputs)
        if outputs != expected:
            raise AssertionError(
                f"{self.name} on {target.name}: output mismatch\n"
                f"  inputs:   {inputs}\n"
                f"  expected: {expected}\n"
                f"  got:      {outputs}"
            )
        return result
