"""IntAvg kernel (Table 6): exponential smoothing.

``y <- (x + y) / 2`` per input sample -- an autoregressive IIR low-pass
filter used to de-noise sensor streams before thresholding (Section 5.1).
The intermediate sum is five bits wide, so the kernel must recover the
adder's carry (the base ISA has no carry flag: an unsigned compare does
it) and feed it back into the right shift.  This is one of the two kernels
the paper calls out as right-shift-bound, hence a large winner from the
barrel-shifter extension (Figure 11).
"""

from repro.kernels.kernel import Kernel


def build(target):
    return """
; IntAvg: y <- (x + y) >> 1 with 5-bit intermediate.
.equ Y 2
.equ X 3
    %ldi 0
    store Y
loop:
    load 0
    store X
    load Y
    add X
    store Y                     ; y' = (x + y) mod 16
    %bltu_m X, carried          ; sum < x  <=>  the add carried out
    load Y                      ; no carry
    %lsr1
    store Y
    store 1
    %jump loop
carried:
    load Y
    %lsr1
    addi 8                      ; re-insert the carry above the MSB
    store Y
    store 1
    %jump loop
    %emit_pool                  ; shared shift subroutine, if pooled
"""


def build_loadstore(target):
    return """
; IntAvg (load-store): r1 = y, r2 = sample/sum, r3 = carry.
    movi r1, 0
loop:
    in r2
    add r2, r1                  ; r2 = x + y, sets carry
    movi r3, 0
    adci r3, 0                  ; r3 = carry out of the add
    lsri r2, 1
    br z, r3, nocarry
    addi r2, 8
nocarry:
    mov r1, r2
    out r1
    br nzp, r0, loop
"""


def reference(inputs):
    y = 0
    outputs = []
    for sample in inputs:
        y = ((sample & 0xF) + y) >> 1
        outputs.append(y)
    return outputs


def gen_inputs(rng, transactions):
    return [int(rng.integers(0, 16)) for _ in range(transactions)]


KERNEL = Kernel(
    name="IntAvg",
    app_type="Streaming",
    description="Exponential smoothing (IIR low-pass) of an input stream",
    source_fn=build,
    loadstore_source_fn=build_loadstore,
    reference_fn=reference,
    input_fn=gen_inputs,
    inputs_per_transaction=1,
)
