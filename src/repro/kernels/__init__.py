"""The Table 6 benchmark kernels and their assembly infrastructure."""

from repro.kernels.kernel import Kernel, Target
from repro.kernels.macros import T0, T1, build_library, loadstore_library

__all__ = [
    "Kernel",
    "T0",
    "T1",
    "Target",
    "build_library",
    "loadstore_library",
]
