"""Macro libraries: one virtual operation set, many hardware targets.

Every accumulator kernel in the suite is written against the macro names
defined here.  :func:`build_library` inspects the target ISA and registers
the cheapest correct expansion each virtual operation admits:

- on the base FlexiCore4 ISA a logical right shift expands to the ~30
  instruction bit-serial routine of Listing 1, an unconditional jump to
  the ``nandi 0; brn`` idiom of Listing 2, and unsigned comparisons to
  the MSB-partition dance;
- with the Section 6.1 extensions, the same macros collapse to ``lsri``,
  ``br nzp`` and ``sub``-based sequences.

Assembling one kernel under different libraries therefore *is* the
Figure 9/10 code-size experiment.

Register conventions (FlexiCore4's eight words):

====  =======================================================
 0    IPORT (memory-mapped input bus)
 1    OPORT (memory-mapped output bus)
 2-5  kernel state
 6    ``T1`` -- macro scratch (shift result accumulator)
 7    ``T0`` -- macro scratch (operand save)
====  =======================================================

Macros marked *clobbers acc* leave an unspecified accumulator value on
at least one path; kernels reload after them.
"""

from repro.asm.errors import MacroError
from repro.asm.macro import MacroLibrary
from repro.asm.parser import parse_integer

#: Macro scratch words (top of the FlexiCore4 data memory).
T0 = 7
T1 = 6


def _const(name, token):
    value = parse_integer(str(token).strip())
    if value is None:
        raise MacroError(
            f"%{name}: operand '{token}' must be an integer literal"
        )
    return value


def build_library(isa):
    """Build the macro library matched to ``isa``'s available features."""
    lib = MacroLibrary(f"acc:{isa.name}")
    width = isa.word_bits
    ones = (1 << width) - 1
    msb_bit = 1 << (width - 1)

    has = isa.has

    # ------------------------------------------------------------------
    # Constants and tiny arithmetic helpers.
    # ------------------------------------------------------------------

    @lib.define("ldi")
    def ldi(ctx, value):
        """acc <- constant."""
        value = _const("ldi", value) & ones
        if has("ldb"):  # FlexiCore8's two-byte immediate load
            return [f"ldb {value}"]
        lines = ["nandi 0"]  # acc <- all-ones, independent of prior acc
        if value != ones:
            lines.append(f"xori {ones ^ value}")
        return lines

    @lib.define("not")
    def not_(ctx):
        """acc <- ~acc."""
        return [f"nandi {ones}"]

    @lib.define("negate")
    def negate(ctx):
        """acc <- -acc (two's complement)."""
        if has("neg"):
            return ["neg"]
        return [f"nandi {ones}", "addi 1"]

    @lib.define("subi")
    def subi(ctx, value):
        """acc <- acc - constant."""
        value = _const("subi", value) % (1 << width)
        return [f"addi {((1 << width) - value) % (1 << width)}"]

    @lib.define("sub_m")
    def sub_m(ctx, addr):
        """acc <- acc - mem[addr]   (identity: a-b = ~(~a + b))."""
        if has("sub"):
            return [f"sub {addr}"]
        return [f"nandi {ones}", f"add {addr}", f"nandi {ones}"]

    @lib.define("inc")
    def inc(ctx, addr):
        """mem[addr] += 1 (through the accumulator)."""
        return [f"load {addr}", "addi 1", f"store {addr}"]

    @lib.define("dec")
    def dec(ctx, addr):
        """mem[addr] -= 1 (through the accumulator)."""
        return [f"load {addr}", f"addi {ones}", f"store {addr}"]

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------

    @lib.define("jump")
    def jump(ctx, target):
        """Unconditional jump.  Clobbers acc on the base ISA."""
        if has("br"):
            return [f"br nzp, {target}"]
        return ["nandi 0", f"brn {target}"]

    @lib.define("jump_keep")
    def jump_keep(ctx, target):
        """Accumulator-preserving unconditional jump -- Listing 2.

        The branch is tried directly (taken when acc is negative); on
        the positive path the MSB is flipped to force a branch to a
        landing pad that flips it back.  The target must be declared
        with ``%landing`` instead of a plain label.
        """
        if has("br"):
            return [f"br nzp, {target}"]
        return [
            f"brn {target}",
            f"xori {msb_bit}",
            f"brn __pre_{target}",
        ]

    @lib.define("landing")
    def landing(ctx, target):
        """Jump target for %jump_keep: restores the flipped MSB on the
        detour path (Listing 2's PRETGT)."""
        if has("br"):
            return [f"{target}:"]
        return [
            f"__pre_{target}:",
            f"xori {msb_bit}",
            f"{target}:",
        ]

    @lib.define("brz")
    def brz(ctx, target):
        """Branch if acc == 0.  Clobbers acc on the base ISA."""
        if has("br"):
            return [f"br z, {target}"]
        no = ctx.label("brz_no")
        return [
            f"brn {no}",        # negative -> nonzero
            f"addi {ones}",     # acc-1: only 0 wraps negative
            f"brn {target}",
            f"{no}:",
        ]

    @lib.define("brnz")
    def brnz(ctx, target):
        """Branch if acc != 0.  Clobbers acc on the base ISA."""
        if has("br"):
            return [f"br np, {target}"]
        skip = ctx.label("brnz_skip")
        return [
            f"brn {target}",    # negative -> nonzero
            f"addi {ones}",
            f"brn {skip}",      # was zero -> fall through
            "nandi 0",
            f"brn {target}",
            f"{skip}:",
        ]

    @lib.define("halt")
    def halt(ctx):
        """Stop: explicit halt, or the branch-to-self idle idiom."""
        if has("halt"):
            return ["halt"]
        here = ctx.label("halt")
        return ["nandi 0", f"{here}:", f"brn {here}"]

    @lib.define("farjump")
    def farjump(ctx, page, target):
        """Cross-page jump through the off-chip MMU (Section 5.1).

        Emits the arm/arm/arm/page OPORT sequence; the trailing branch runs in
        the MMU's page-switch delay shadow and lands at ``target`` in the
        new page (the ``@`` prefix waives the assembler's same-page check).
        """
        page = _const("farjump", page)
        sentinel = 0xA if width <= 4 else 0xAA
        if page == sentinel:
            raise MacroError(
                "%farjump: page 0xA is unreachable through a 4-bit MMU "
                "(it collides with the arm sentinel)"
            )
        lines = []
        lines += lib.lookup("ldi")(ctx, sentinel)
        lines += ["store 1", "store 1", "store 1"]
        lines += lib.lookup("ldi")(ctx, page)
        lines += ["store 1"]
        # Two delay-shadow instructions fetch from the old page:
        lines += ["nandi 0", f"brn @{target}"]
        return lines

    # ------------------------------------------------------------------
    # Shifts (Listing 1: the expensive base-ISA operation).
    # ------------------------------------------------------------------

    def _shift_right_base(ctx, arithmetic):
        """Bit-serial right shift by 1: peel bits MSB-first by doubling.

        Uses T0 (shifting copy) and T1 (result).  ~30 instructions on the
        base ISA, matching the flavor of the paper's Listing 1.
        """
        lines = [f"store {T0}"]
        lines += lib.lookup("ldi")(ctx, 0)
        lines += [f"store {T1}", f"load {T0}"]
        for bit in range(width - 1, 0, -1):
            set_label = ctx.label(f"sr_set{bit}")
            done_label = ctx.label(f"sr_done{bit}")
            contribution = 1 << (bit - 1)
            if arithmetic and bit == width - 1:
                # Sign-extend: the MSB lands in both old positions.
                contribution |= msb_bit
            lines += [
                f"brn {set_label}",
                "nandi 0",                   # jump over the set-arm
                f"brn {done_label}",
                f"{set_label}:",
                f"load {T1}",
                f"addi {contribution & ones}" if contribution <= ones
                else f"addi {contribution}",
                f"store {T1}",
                f"{done_label}:",
                f"load {T0}",
                f"add {T0}",                 # shift the copy left by one
                f"store {T0}",
            ]
        lines += [f"load {T1}"]
        return lines

    @lib.define("lsr1")
    def lsr1(ctx):
        """acc <- acc >> 1 (logical).  Uses T0/T1 on the base ISA.

        With the subroutine extension (but no barrel shifter) the ~30
        instruction bit-serial routine is emitted once, into the page's
        ``%emit_pool``, and shared by every call site -- the paper's
        motivation for spending 8 flip-flops on a return register.
        """
        if has("lsri"):
            return ["lsri 1"]
        if has("call"):
            label = ctx.request_subroutine(
                "lsr1", lambda: _shift_right_base(ctx, arithmetic=False)
            )
            return [f"call {label}"]
        return _shift_right_base(ctx, arithmetic=False)

    @lib.define("asr1")
    def asr1(ctx):
        """acc <- acc >> 1 (arithmetic).  Uses T0/T1 on the base ISA."""
        if has("asri"):
            return ["asri 1"]
        if has("call"):
            label = ctx.request_subroutine(
                "asr1", lambda: _shift_right_base(ctx, arithmetic=True)
            )
            return [f"call {label}"]
        return _shift_right_base(ctx, arithmetic=True)

    @lib.define("emit_pool")
    def emit_pool(ctx):
        """Lay down subroutine bodies requested so far (no-op when none).

        Must be placed after an unconditional control transfer, within
        the same page as the call sites.
        """
        return ctx.flush_pool()

    @lib.define("lsr")
    def lsr(ctx, amount):
        """acc <- acc >> amount (logical)."""
        amount = _const("lsr", amount)
        if not 0 <= amount < width:
            raise MacroError(f"%lsr: amount {amount} out of range")
        if amount == 0:
            return []
        if has("lsri"):
            return [f"lsri {amount}"]
        lines = []
        for _ in range(amount):
            lines += ["%lsr1"]
        return lines

    @lib.define("lsl1")
    def lsl1(ctx):
        """acc <- acc << 1 (always cheap: the adder doubles)."""
        return [f"store {T0}", f"add {T0}"]

    # ------------------------------------------------------------------
    # Unsigned comparisons (no carry flag on the base ISA).
    # ------------------------------------------------------------------

    @lib.define("bltu_i")
    def bltu_i(ctx, value, target):
        """Branch if acc < constant (unsigned).  Clobbers acc."""
        value = _const("bltu_i", value) & ones
        half = 1 << (width - 1)
        if value == 0:
            return []  # nothing is below zero
        if value <= half:
            no = ctx.label("bltu_no")
            return [
                f"brn {no}",                     # acc >= half >= value
                f"%subi {value}",
                f"brn {target}",
                f"{no}:",
            ]
        check = ctx.label("bltu_chk")
        return [
            f"brn {check}",
            "nandi 0",                           # acc < half < value: yes
            f"brn {target}",
            f"{check}:",
            f"%subi {value}",
            f"brn {target}",
        ]

    @lib.define("bgeu_i")
    def bgeu_i(ctx, value, target):
        """Branch if acc >= constant (unsigned).  Clobbers acc."""
        value = _const("bgeu_i", value) & ones
        half = 1 << (width - 1)
        if value == 0:
            return ["%jump " + str(target)]
        if value <= half:
            no = ctx.label("bgeu_no")
            return [
                f"brn {target}",                 # acc >= half >= value
                f"%subi {value}",
                f"brn {no}",                     # negative: acc < value
                "nandi 0",
                f"brn {target}",
                f"{no}:",
            ]
        check = ctx.label("bgeu_chk")
        end = ctx.label("bgeu_end")
        return [
            f"brn {check}",
            "nandi 0",
            f"brn {end}",                        # acc < half < value: no
            f"{check}:",
            f"%subi {value}",
            f"brn {end}",                        # negative: acc < value
            "nandi 0",
            f"brn {target}",
            f"{end}:",
        ]

    @lib.define("bltu_m")
    def bltu_m(ctx, addr, target):
        """Branch if acc < mem[addr] (unsigned).  Clobbers acc, uses T0.

        MSB partition: if the MSBs differ the operand with MSB=1 is
        larger; otherwise the signed difference cannot overflow.
        """
        diff = ctx.label("bltu_diff")
        end = ctx.label("bltu_end")
        return [
            f"store {T0}",
            f"xor {addr}",
            f"brn {diff}",
            f"load {T0}",
            f"%sub_m {addr}",
            f"brn {target}",
            "nandi 0",
            f"brn {end}",
            f"{diff}:",
            f"load {addr}",
            f"brn {target}",       # mem has the MSB -> acc is smaller
            f"{end}:",
        ]

    @lib.define("bgeu_m")
    def bgeu_m(ctx, addr, target):
        """Branch if acc >= mem[addr] (unsigned).  Clobbers acc, uses T0."""
        diff = ctx.label("bgeu_diff")
        end = ctx.label("bgeu_end")
        return [
            f"store {T0}",
            f"xor {addr}",
            f"brn {diff}",
            f"load {T0}",
            f"%sub_m {addr}",
            f"brn {end}",          # negative: acc < mem
            "nandi 0",
            f"brn {target}",
            f"{diff}:",
            f"load {addr}",
            f"brn {end}",          # mem has the MSB -> acc smaller
            "nandi 0",
            f"brn {target}",
            f"{end}:",
        ]

    # ------------------------------------------------------------------
    # Multi-precision addition (the 'data coalescing' use case).
    # ------------------------------------------------------------------

    @lib.define("add2w")
    def add2w(ctx, lo_addr, hi_addr, addend_addr):
        """(hi:lo) += mem[addend]: double-word accumulate.

        With the ``adc`` extension this is the textbook add/adc pair;
        on the base ISA the carry is recovered with an unsigned compare
        (sum < addend  <=>  carry out).
        """
        if has("adc"):
            return [
                f"load {lo_addr}",
                f"add {addend_addr}",
                f"store {lo_addr}",
                f"load {hi_addr}",
                "adci 0",
                f"store {hi_addr}",
            ]
        carry = ctx.label("add2w_carry")
        end = ctx.label("add2w_end")
        return [
            f"load {lo_addr}",
            f"add {addend_addr}",
            f"store {lo_addr}",
            f"%bltu_m {addend_addr}, {carry}",   # sum < addend => carried
            "nandi 0",
            f"brn {end}",
            f"{carry}:",
            f"%inc {hi_addr}",
            f"{end}:",
        ]

    # ------------------------------------------------------------------
    # Saturating signed arithmetic (used by the FIR kernel).
    # ------------------------------------------------------------------

    @lib.define("satadd_m")
    def satadd_m(ctx, addr):
        """acc <- saturate(acc + mem[addr]) as signed words.

        Signed overflow happens only when the operands share a sign and
        the sum's sign differs; the result then saturates toward the
        operands' sign.  Uses T0/T1.
        """
        safe = ctx.label("sat_safe")
        ovf = ctx.label("sat_ovf")
        negsat = ctx.label("sat_neg")
        done = ctx.label("sat_done")
        # The result travels through T0 on every path because %jump
        # clobbers the accumulator on the base ISA.
        return [
            f"store {T1}",            # A
            f"xor {addr}",            # sign(A) ^ sign(B)
            f"brn {safe}",            # signs differ: no overflow possible
            f"load {T1}",
            f"add {addr}",
            f"store {T0}",            # r
            f"xor {T1}",              # sign(r) ^ sign(A)
            f"brn {ovf}",
            f"%jump {done}",
            f"{safe}:",
            f"load {T1}",
            f"add {addr}",
            f"store {T0}",
            f"%jump {done}",
            f"{ovf}:",
            f"load {T1}",
            f"brn {negsat}",
            f"%ldi {(1 << (width - 1)) - 1}",   # +max
            f"store {T0}",
            f"%jump {done}",
            f"{negsat}:",
            f"%ldi {1 << (width - 1)}",         # -max-1
            f"store {T0}",
            f"{done}:",
            f"load {T0}",
        ]

    @lib.define("satsub_m")
    def satsub_m(ctx, addr):
        """acc <- saturate(acc - mem[addr]) as signed words.  Uses T0/T1."""
        check = ctx.label("sat_chk")
        ovf = ctx.label("sat_ovf")
        negsat = ctx.label("sat_neg")
        done = ctx.label("sat_done")
        return [
            f"store {T1}",            # A
            f"xor {addr}",
            f"brn {check}",           # signs differ: overflow possible
            f"load {T1}",
            f"%sub_m {addr}",
            f"store {T0}",
            f"%jump {done}",
            f"{check}:",
            f"load {T1}",
            f"%sub_m {addr}",
            f"store {T0}",
            f"xor {T1}",              # sign(r) ^ sign(A)
            f"brn {ovf}",
            f"%jump {done}",
            f"{ovf}:",
            f"load {T1}",
            f"brn {negsat}",
            f"%ldi {(1 << (width - 1)) - 1}",
            f"store {T0}",
            f"%jump {done}",
            f"{negsat}:",
            f"%ldi {1 << (width - 1)}",
            f"store {T0}",
            f"{done}:",
            f"load {T0}",
        ]

    return lib


def loadstore_library(isa):
    """Minimal macro library for the load-store ISA (it is expressive
    enough that kernels mostly use instructions directly)."""
    lib = MacroLibrary(f"ls:{isa.name}")

    @lib.define("jump")
    def jump(ctx, target):
        return [f"br nzp, r0, {target}"]

    @lib.define("halt")
    def halt(ctx):
        return ["halt"]

    @lib.define("ldi")
    def ldi(ctx, reg, value):
        return [f"movi {reg}, {value}"]

    @lib.define("farjump")
    def farjump(ctx, page, target):
        """Cross-page jump through the MMU; r6 is the scratch register."""
        page = _const("farjump", page)
        sentinel = 0xA if isa.word_bits <= 4 else 0xAA
        if page == sentinel:
            raise MacroError(
                "%farjump: page 0xA is unreachable through a 4-bit MMU"
            )
        return [
            f"movi r6, {sentinel}",
            "out r6",
            "out r6",
            "out r6",
            f"movi r6, {page}",
            "out r6",
            "nop",                      # delay-shadow instruction 1
            f"br nzp, r0, @{target}",   # delay-shadow instruction 2
        ]

    return lib
