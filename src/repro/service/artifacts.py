"""Content-addressed artifact store, rooted inside the engine cache.

Completed jobs render human-facing artifacts (the Table 5 text, the
Figure 6/7 wafer maps, machine-readable JSON mirrors).  Each one is
stored once under the SHA-256 of its bytes, next to the engine's
result cache, so:

- identical resubmissions (which the engine answers from cache) map to
  the *same* artifact digests without re-rendering costs mattering;
- ``GET /v1/artifacts/{digest}`` serves straight from disk with no job
  bookkeeping in the path;
- clearing the cache clears the artifacts with it (both are derived
  data).

Layout: ``<cache root>/artifacts/<digest[:2]>/<digest>`` plus a
``.json`` sidecar with name/content-type metadata.
"""

import hashlib
import json
import os
from pathlib import Path

#: Subdirectory of the engine cache root holding artifacts.  The engine
#: GC only touches ``*.pkl`` entries, so artifacts survive a cache GC
#: (they are typically tiny next to pickled wafers).
ARTIFACTS_DIRNAME = "artifacts"


class ArtifactStore:
    """Digest-addressed blob store with JSON sidecar metadata."""

    def __init__(self, root):
        self.root = Path(root)

    def _paths(self, digest):
        directory = self.root / digest[:2]
        return directory / digest, directory / f"{digest}.json"

    def put(self, name, data, content_type="text/plain; charset=utf-8"):
        """Store ``data``; returns the artifact descriptor dict."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()
        data_path, meta_path = self._paths(digest)
        descriptor = {
            "name": name,
            "digest": digest,
            "content_type": content_type,
            "bytes": len(data),
            "url": f"/v1/artifacts/{digest}",
        }
        if data_path.exists():
            return descriptor
        data_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = data_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, data_path)
        meta_tmp = meta_path.with_suffix(f".tmp.{os.getpid()}")
        with open(meta_tmp, "w") as handle:
            json.dump(descriptor, handle, indent=2)
        os.replace(meta_tmp, meta_path)
        return descriptor

    def get(self, digest):
        """(descriptor, bytes) for ``digest``; KeyError when absent.

        The digest is validated as lowercase hex before touching the
        filesystem, so a request path can never traverse outside the
        store.
        """
        if len(digest) != 64 or any(
            c not in "0123456789abcdef" for c in digest
        ):
            raise KeyError(f"not an artifact digest: {digest!r}")
        data_path, meta_path = self._paths(digest)
        try:
            with open(data_path, "rb") as handle:
                data = handle.read()
        except OSError:
            raise KeyError(f"unknown artifact {digest!r}") from None
        try:
            with open(meta_path) as handle:
                descriptor = json.load(handle)
        except (OSError, json.JSONDecodeError):
            descriptor = {
                "name": digest, "digest": digest,
                "content_type": "application/octet-stream",
                "bytes": len(data),
                "url": f"/v1/artifacts/{digest}",
            }
        return descriptor, data
