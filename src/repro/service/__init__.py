"""``repro.service`` -- fab-as-a-service: an async job API over the engine.

The reproduction's experiments (the Table 5 yield studies, the Figure
6/7 wafer maps, the DSE sweeps, the conformance campaigns, the Table 6
kernels) are exposed as *named jobs* behind a small HTTP API:

- ``POST /v1/jobs`` submits ``{"type": ..., "params": {...}}`` against
  a validated per-type schema;
- ``GET /v1/jobs/{id}`` reports status and (on completion) the result;
- ``GET /v1/jobs/{id}/events`` streams NDJSON progress straight off
  the engine's observability bridge;
- ``GET /v1/artifacts/{digest}`` serves rendered tables and figures.

Every job runs through the shared content-addressed
:class:`~repro.engine.ResultCache`, so a repeated submission -- any
tenant, same parameters -- is answered in milliseconds with
``cache_hit: true``.  Tenancy is API-key based with token-bucket rate
limits, per-tenant concurrency quotas, and a bounded global backlog
(429 + Retry-After under pressure).

Start one with ``repro serve``; talk to it with ``repro client`` or
:class:`ServiceClient`.  See ``docs/SERVICE.md``.
"""

from repro.service.client import (
    AsyncServiceClient,
    ServiceApiError,
    ServiceClient,
)
from repro.service.jobs import (
    Field,
    JobType,
    ValidationError,
    describe_job_types,
    job_types,
    register_job_type,
)
from repro.service.server import (
    JobService,
    ServiceConfig,
    ServiceError,
    ServiceHandle,
    ServiceServer,
    serve,
    start_in_thread,
)
from repro.service.slo import SloMeter, outcome_class
from repro.service.state import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    JobRecord,
    JobStore,
)
from repro.service.tenants import (
    DEV_TENANT_KEY,
    DEV_TENANT_NAME,
    Tenant,
    TenantRegistry,
    TokenBucket,
)

__all__ = [
    "AsyncServiceClient", "CANCELLED", "COMPLETED", "DEV_TENANT_KEY",
    "DEV_TENANT_NAME", "FAILED", "Field", "JobRecord", "JobService",
    "JobStore", "JobType", "QUEUED", "RUNNING", "ServiceApiError",
    "ServiceClient", "ServiceConfig", "ServiceError", "ServiceHandle",
    "ServiceServer", "SloMeter", "TERMINAL", "Tenant",
    "TenantRegistry", "TokenBucket", "ValidationError",
    "describe_job_types", "job_types", "outcome_class",
    "register_job_type", "serve", "start_in_thread",
]
