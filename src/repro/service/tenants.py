"""Multi-tenancy primitives: API keys, rate limits, job quotas.

A :class:`Tenant` owns an API key, a token-bucket submission rate, and
a concurrent-job quota; the :class:`TenantRegistry` resolves request
credentials to tenants.  These are deliberately serving-stack-agnostic
-- nothing here knows about HTTP -- so the same objects could front a
different transport.

Config file format (``repro serve --tenants FILE``)::

    {"tenants": [
        {"name": "alice", "key": "a-secret", "rate": 10.0,
         "burst": 20, "max_active": 4,
         "slo": {"availability": 0.999, "latency_p95_s": 1.0}},
        {"name": "bob", "key": "b-secret"}
    ]}
"""

import json
import threading
import time
from dataclasses import dataclass, field

#: Defaults for tenants that do not spell everything out.
DEFAULT_RATE = 10.0     # submissions per second, steady state
DEFAULT_BURST = 20      # bucket capacity
DEFAULT_MAX_ACTIVE = 4  # concurrent queued+running jobs

#: Default service-level objectives (see ``repro.service.slo``).
DEFAULT_SLO_AVAILABILITY = 0.99   # non-5xx fraction of requests
DEFAULT_SLO_LATENCY_P95_S = 2.0   # request p95 latency bound

#: The out-of-the-box development tenant (``repro serve`` with no
#: --tenants file).  Not a secret -- the server warns when it is live.
DEV_TENANT_NAME = "dev"
DEV_TENANT_KEY = "dev-local-key"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate, burst):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, amount=1.0):
        """(granted, retry_after_s); refills lazily on each call."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= amount:
                self._tokens -= amount
                return True, 0.0
            missing = amount - self._tokens
            retry = missing / self.rate if self.rate > 0 else 60.0
            return False, retry


@dataclass
class Tenant:
    """One paying (or at least authenticated) customer of the service."""

    name: str
    key: str
    rate: float = DEFAULT_RATE
    burst: int = DEFAULT_BURST
    max_active: int = DEFAULT_MAX_ACTIVE
    #: SLO: target fraction of non-5xx requests (error budget base).
    slo_availability: float = DEFAULT_SLO_AVAILABILITY
    #: SLO: request latency p95 must stay below this many seconds.
    slo_latency_p95_s: float = DEFAULT_SLO_LATENCY_P95_S
    bucket: TokenBucket = field(default=None, repr=False)

    def __post_init__(self):
        if self.bucket is None:
            self.bucket = TokenBucket(self.rate, self.burst)


class TenantRegistry:
    """Key -> :class:`Tenant` resolution."""

    def __init__(self, tenants):
        self._by_key = {}
        self._by_name = {}
        for tenant in tenants:
            if tenant.key in self._by_key:
                raise ValueError(
                    f"duplicate API key across tenants "
                    f"({self._by_key[tenant.key].name!r} and "
                    f"{tenant.name!r})"
                )
            if tenant.name in self._by_name:
                raise ValueError(f"duplicate tenant name {tenant.name!r}")
            self._by_key[tenant.key] = tenant
            self._by_name[tenant.name] = tenant

    def authenticate(self, key):
        """The tenant owning ``key``, or None."""
        if not key:
            return None
        return self._by_key.get(key)

    def get(self, name):
        return self._by_name.get(name)

    def names(self):
        return sorted(self._by_name)

    def __len__(self):
        return len(self._by_name)

    @classmethod
    def from_file(cls, path):
        """Load ``{"tenants": [...]}`` from a JSON config file."""
        with open(path) as handle:
            document = json.load(handle)
        entries = document.get("tenants")
        if not isinstance(entries, list) or not entries:
            raise ValueError(
                f"{path}: expected a non-empty 'tenants' list"
            )
        tenants = []
        for entry in entries:
            if not isinstance(entry, dict) or "name" not in entry \
                    or "key" not in entry:
                raise ValueError(
                    f"{path}: every tenant needs 'name' and 'key'"
                )
            slo = entry.get("slo") or {}
            if not isinstance(slo, dict):
                raise ValueError(
                    f"{path}: tenant 'slo' must be an object"
                )
            tenants.append(Tenant(
                name=str(entry["name"]),
                key=str(entry["key"]),
                rate=float(entry.get("rate", DEFAULT_RATE)),
                burst=int(entry.get("burst", DEFAULT_BURST)),
                max_active=int(
                    entry.get("max_active", DEFAULT_MAX_ACTIVE)
                ),
                slo_availability=float(
                    slo.get("availability", DEFAULT_SLO_AVAILABILITY)
                ),
                slo_latency_p95_s=float(
                    slo.get("latency_p95_s", DEFAULT_SLO_LATENCY_P95_S)
                ),
            ))
        return cls(tenants)

    @classmethod
    def development(cls):
        """The single-tenant registry used when no config is given."""
        return cls([Tenant(name=DEV_TENANT_NAME, key=DEV_TENANT_KEY)])
