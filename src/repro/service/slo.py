"""Per-tenant SLO metering: latency objectives and error budgets.

The meter is the service's always-on accountant.  It is deliberately
independent of the opt-in :mod:`repro.obs` registry -- a tenant's
error budget must not depend on whether anyone passed ``--profile`` --
so it keeps its own tiny, thread-safe state: per-tenant request
counts by outcome class, a latency histogram, and a usage table
(jobs, cache hits, wall seconds consumed).

Outcome classes, from the HTTP status:

- ``ok``            -- 1xx-3xx
- ``client_error``  -- 4xx except 429 (the tenant asked wrong)
- ``throttled``     -- 429 (admission control working as designed)
- ``server_error``  -- 5xx (burns the error budget)

*Availability* is the non-5xx fraction of non-throttled requests:
throttling is the service protecting itself, not failing, and a 4xx
is the client's fault -- neither spends budget.  The error budget for
objective ``a`` over ``n`` considered requests is ``(1 - a) * n``
requests; ``remaining_fraction`` is what is left of it (1.0 with no
traffic, clamped at -1.0 when deeply blown).

``GET /v1/slo`` serves :meth:`SloMeter.report`; ``repro top`` renders
it live next to ``/v1/stats``.
"""

import threading
import time

from repro.obs.metrics import Histogram

#: Latency histogram bounds: finer than the obs default at the fast
#: end, because cached service requests answer in well under 1 ms.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Accounting bucket for requests that failed authentication (no
#: tenant to charge, but the traffic should still be visible).
ANONYMOUS = "_anon"


def outcome_class(status):
    """The SLO outcome class for one HTTP status code."""
    status = int(status)
    if status == 429:
        return "throttled"
    if status >= 500:
        return "server_error"
    if status >= 400:
        return "client_error"
    return "ok"


class SloMeter:
    """Thread-safe per-tenant request/latency/usage accounting."""

    def __init__(self):
        self.started = time.time()
        self._lock = threading.Lock()
        self._requests = {}   # tenant -> {class: count}
        self._latency = {}    # tenant -> Histogram cell
        self._usage = {}      # tenant -> usage dict

    # -- feeds (hot path: one lock, two dict updates) ------------------

    def observe_request(self, tenant, status, seconds):
        """Account one finished HTTP request to ``tenant``."""
        tenant = tenant or ANONYMOUS
        cls = outcome_class(status)
        with self._lock:
            counts = self._requests.setdefault(tenant, {})
            counts[cls] = counts.get(cls, 0) + 1
            histogram = self._latency.get(tenant)
            if histogram is None:
                histogram = self._latency[tenant] = Histogram(
                    "service_request_seconds",
                    buckets=LATENCY_BUCKETS,
                )
            histogram.observe(seconds)

    def account_job(self, tenant, jobtype, status, cache_hit, wall_s):
        """Account one terminal job to ``tenant``'s usage table."""
        with self._lock:
            usage = self._usage.setdefault(tenant, {
                "jobs_total": 0, "by_status": {}, "by_type": {},
                "cache_hits": 0, "wall_seconds": 0.0,
            })
            usage["jobs_total"] += 1
            usage["by_status"][status] = \
                usage["by_status"].get(status, 0) + 1
            usage["by_type"][jobtype] = \
                usage["by_type"].get(jobtype, 0) + 1
            if cache_hit:
                usage["cache_hits"] += 1
            usage["wall_seconds"] += max(0.0, wall_s)

    # -- reporting -----------------------------------------------------

    def report(self, tenants=None):
        """The ``GET /v1/slo`` document.

        ``tenants`` is an optional :class:`TenantRegistry` supplying
        per-tenant objectives; tenants without an entry (and the
        anonymous bucket) report against the defaults.
        """
        from repro.service.tenants import (
            DEFAULT_SLO_AVAILABILITY,
            DEFAULT_SLO_LATENCY_P95_S,
        )
        with self._lock:
            names = sorted(
                set(self._requests) | set(self._usage)
                | set(tenants.names() if tenants is not None else ())
            )
            out = {}
            for name in names:
                counts = dict(self._requests.get(name, {}))
                histogram = self._latency.get(name)
                usage = self._usage.get(name)
                if usage is not None:
                    usage = dict(
                        usage,
                        by_status=dict(usage["by_status"]),
                        by_type=dict(usage["by_type"]),
                        wall_seconds=round(usage["wall_seconds"], 6),
                    )
                tenant = tenants.get(name) if tenants is not None \
                    else None
                availability_target = (
                    tenant.slo_availability if tenant is not None
                    else DEFAULT_SLO_AVAILABILITY
                )
                latency_target = (
                    tenant.slo_latency_p95_s if tenant is not None
                    else DEFAULT_SLO_LATENCY_P95_S
                )
                out[name] = self._tenant_report(
                    counts, histogram, usage,
                    availability_target, latency_target,
                )
        return {
            "window_s": round(time.time() - self.started, 3),
            "tenants": out,
        }

    @staticmethod
    def _tenant_report(counts, histogram, usage,
                       availability_target, latency_target):
        total = sum(counts.values())
        server_errors = counts.get("server_error", 0)
        considered = total - counts.get("throttled", 0)
        availability = (
            1.0 - server_errors / considered if considered else 1.0
        )
        allowed = (1.0 - availability_target) * considered
        if allowed > 0:
            budget_remaining = max(
                -1.0, (allowed - server_errors) / allowed
            )
        else:
            budget_remaining = 1.0 if not server_errors else -1.0
        latency = {"count": 0, "mean_s": 0.0,
                   "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0}
        if histogram is not None and histogram.count():
            latency = {
                "count": histogram.count(),
                "mean_s": round(histogram.mean(), 6),
                "p50_s": round(histogram.quantile(0.50), 6),
                "p95_s": round(histogram.quantile(0.95), 6),
                "p99_s": round(histogram.quantile(0.99), 6),
            }
        return {
            "requests": {
                "total": total,
                "ok": counts.get("ok", 0),
                "client_error": counts.get("client_error", 0),
                "throttled": counts.get("throttled", 0),
                "server_error": server_errors,
            },
            "latency": latency,
            "objective": {
                "availability": availability_target,
                "latency_p95_s": latency_target,
            },
            "availability": round(availability, 6),
            "availability_met": availability >= availability_target,
            "latency_p95_met": latency["p95_s"] <= latency_target,
            "error_budget": {
                "allowed": round(allowed, 3),
                "spent": server_errors,
                "remaining_fraction": round(budget_remaining, 4),
            },
            "usage": usage or {
                "jobs_total": 0, "by_status": {}, "by_type": {},
                "cache_hits": 0, "wall_seconds": 0.0,
            },
        }


__all__ = ["ANONYMOUS", "LATENCY_BUCKETS", "SloMeter", "outcome_class"]
