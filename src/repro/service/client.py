"""Bundled clients for the ``repro.service`` HTTP API.

:class:`ServiceClient` is the synchronous client the CLI and the CI
smoke test use -- plain :mod:`http.client`, one connection per call
(the server closes every connection anyway), NDJSON event iteration.

:class:`AsyncServiceClient` is the asyncio twin used by the service
benchmark to hold many requests in flight from one thread; it speaks
the same minimal HTTP/1.1 the server does, over ``asyncio`` streams.
"""

import asyncio
import http.client
import json
import time
from urllib.parse import urlsplit

from repro.service.state import TERMINAL


class ServiceApiError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status, code, message, retry_after=None):
        super().__init__(f"HTTP {status} ({code}): {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


def _raise_for(status, headers, body):
    try:
        document = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        document = {}
    retry_after = headers.get("Retry-After") or headers.get("retry-after")
    raise ServiceApiError(
        status,
        document.get("error", "error"),
        document.get("message", body[:200] if isinstance(body, str)
                     else repr(body[:200])),
        retry_after=float(retry_after) if retry_after else None,
    )


class ServiceClient:
    """Synchronous client: ``submit``/``status``/``wait``/``events``."""

    def __init__(self, base_url, api_key, timeout=60.0):
        split = urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(
                f"only http:// service URLs are supported, "
                f"got {base_url!r}"
            )
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.api_key = api_key
        self.timeout = timeout

    def _request(self, method, path, document=None, headers=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (json.dumps(document).encode("utf-8")
                    if document is not None else None)
            all_headers = {"Authorization": f"Bearer {self.api_key}"}
            if body is not None:
                all_headers["Content-Type"] = "application/json"
            if headers:
                all_headers.update(headers)
            connection.request(method, path, body=body,
                               headers=all_headers)
            response = connection.getresponse()
            payload = response.read().decode("utf-8", "replace")
            if response.status >= 400:
                _raise_for(response.status, dict(response.getheaders()),
                           payload)
            return json.loads(payload) if payload else {}
        finally:
            connection.close()

    # -- API calls -----------------------------------------------------

    def health(self):
        return self._request("GET", "/healthz")

    def types(self):
        return self._request("GET", "/v1/types")["types"]

    def stats(self):
        return self._request("GET", "/v1/stats")

    def slo(self):
        """Per-tenant SLO report (``GET /v1/slo``)."""
        return self._request("GET", "/v1/slo")

    def submit(self, jobtype, params=None, traceparent=None):
        """Submit a job; returns the job document (with ``id``).

        ``traceparent`` propagates a caller-side W3C trace context;
        without one the service mints a fresh trace per job.
        """
        headers = {"traceparent": traceparent} if traceparent else None
        return self._request(
            "POST", "/v1/jobs",
            {"type": jobtype, "params": params or {}},
            headers=headers,
        )

    def status(self, job_id):
        return self._request("GET", f"/v1/jobs/{job_id}")

    def trace(self, job_id, format="tree"):
        """The job's span tree (``format="chrome"`` for trace_event)."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/trace?format={format}"
        )

    def jobs(self):
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id):
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def artifact(self, digest):
        """Raw artifact bytes for ``digest``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/artifacts/{digest}",
                headers={"Authorization": f"Bearer {self.api_key}"},
            )
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                _raise_for(response.status,
                           dict(response.getheaders()),
                           data.decode("utf-8", "replace"))
            return data
        finally:
            connection.close()

    def events(self, job_id, since=0):
        """Yield event dicts; the generator ends with the job."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", f"/v1/jobs/{job_id}/events?since={since}",
                headers={"Authorization": f"Bearer {self.api_key}"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                _raise_for(
                    response.status, dict(response.getheaders()),
                    response.read().decode("utf-8", "replace"),
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id, timeout=300.0, poll_s=0.2):
        """Poll until the job is terminal; returns the final document."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.status(job_id)
            if document["status"] in TERMINAL:
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['status']} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll_s)

    def run(self, jobtype, params=None, timeout=300.0):
        """Submit and wait; returns the completed job document."""
        return self.wait(self.submit(jobtype, params)["id"],
                         timeout=timeout)


class AsyncServiceClient:
    """asyncio client (one-shot connections, like the sync one)."""

    def __init__(self, base_url, api_key, timeout=60.0):
        split = urlsplit(base_url)
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.api_key = api_key
        self.timeout = timeout

    async def _request(self, method, path, document=None):
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            self.timeout,
        )
        try:
            body = (json.dumps(document).encode("utf-8")
                    if document is not None else b"")
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                f"Authorization: Bearer {self.api_key}",
                "Connection: close",
            ]
            if body:
                head.append("Content-Type: application/json")
                head.append(f"Content-Length: {len(body)}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
            )
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), self.timeout
            )
            status = int(status_line.split()[1])
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            payload = await asyncio.wait_for(reader.read(), self.timeout)
            text = payload.decode("utf-8", "replace")
            if status >= 400:
                _raise_for(status, headers, text)
            return json.loads(text) if text.strip() else {}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def submit(self, jobtype, params=None):
        return await self._request(
            "POST", "/v1/jobs",
            {"type": jobtype, "params": params or {}},
        )

    async def status(self, job_id):
        return await self._request("GET", f"/v1/jobs/{job_id}")

    async def wait(self, job_id, timeout=300.0, poll_s=0.1):
        deadline = time.monotonic() + timeout
        while True:
            document = await self.status(job_id)
            if document["status"] in TERMINAL:
                return document
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['status']} "
                    f"after {timeout:g}s"
                )
            await asyncio.sleep(poll_s)

    async def run(self, jobtype, params=None, timeout=300.0):
        document = await self.submit(jobtype, params)
        return await self.wait(document["id"], timeout=timeout)
