"""The fab-as-a-service HTTP server: asyncio front, engine back.

Two layers, both in this module because they ship as one unit:

:class:`JobService`
    Transport-agnostic core.  Owns the shared
    :class:`~repro.engine.ResultCache`, the artifact store, the job
    store, and a thread pool of ``max_running`` executor slots; admits
    submissions through the tenant's token bucket, its concurrent-job
    quota, and a global backlog bound; executes each job on its own
    :class:`~repro.engine.Engine` bound to the shared cache; and taps
    the :mod:`repro.obs.bridge` subscription stream to attribute
    engine progress events to the job that caused them.

:class:`ServiceServer`
    A deliberately small HTTP/1.1 layer on ``asyncio.start_server`` --
    JSON in, JSON out, ``Connection: close`` on every response, NDJSON
    long-poll streaming for ``/v1/jobs/{id}/events``.  No third-party
    web framework; the whole protocol surface is in this file.

The event-stream thread model: executor threads run jobs (and the
engine hooks fire in those same threads, because ``Engine.run`` is
called there); the asyncio thread serves sockets and never blocks on
job state except through ``run_in_executor`` on the *default* loop
executor -- never on the job pool, which would deadlock a full queue.
"""

import asyncio
import json
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.engine import EngineCancelled, ResultCache
from repro.obs import bridge
from repro.obs import flight
from repro.obs import spans as obs_spans
from repro.obs.logging import get_logger
from repro.service.artifacts import ARTIFACTS_DIRNAME, ArtifactStore
from repro.service.slo import SloMeter
from repro.service.jobs import (
    JobContext,
    ValidationError,
    describe_job_types,
    get_job_type,
    validate_params,
)
from repro.service.state import (
    CANCELLED,
    COMPLETED,
    FAILED,
    RUNNING,
    JobRecord,
    JobStore,
)
from repro.service.tenants import DEV_TENANT_KEY, TenantRegistry

_log = get_logger("repro.service")

#: Largest accepted request body (a submission document is tiny).
MAX_BODY_BYTES = 256 * 1024

#: How long one ``/events`` long-poll slice blocks before re-checking
#: for client disconnect / service shutdown.
EVENT_POLL_S = 1.0


class ServiceError(Exception):
    """An HTTP-mappable service failure."""

    def __init__(self, status, code, message, retry_after=None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_doc(self):
        doc = {"error": self.code, "message": self.message}
        if self.retry_after is not None:
            doc["retry_after_s"] = round(self.retry_after, 3)
        return doc


@dataclass
class ServiceConfig:
    """Everything a :class:`JobService` needs to know."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: ``None`` -> the single development tenant.
    tenants: Optional[TenantRegistry] = None
    #: Cache root path or a ready :class:`ResultCache`; ``None`` uses
    #: the default directory ($REPRO_CACHE_DIR / .repro-cache).
    cache: object = None
    #: Worker processes per job's engine (1 = inline in the executor
    #: thread; fine for small studies, no pool startup cost).
    engine_jobs: int = 1
    #: Engine executor backend per job (``None``/``"local"``,
    #: ``"steal"``, ``"socket"``, or a ready
    #: :class:`~repro.engine.Executor`).
    engine_executor: object = None
    #: Executor threads = jobs running concurrently (across tenants).
    max_running: int = 2
    #: Admitted-but-not-running jobs beyond the running set; past
    #: this the service answers 429 with Retry-After.
    max_queued: int = 8
    max_records: int = 4096
    #: Turn on the obs metrics registry for request/job accounting.
    metrics: bool = False
    #: Record spans per request/job (the ``/v1/jobs/{id}/trace`` view).
    tracing: bool = True
    #: Most span records kept per job for the trace endpoint.
    max_trace_spans: int = 1024
    #: Seconds a graceful drain waits for in-flight jobs.
    drain_grace_s: float = 30.0


class JobService:
    """The transport-agnostic service core."""

    def __init__(self, config=None):
        self.config = config or ServiceConfig()
        self.tenants = self.config.tenants or TenantRegistry.development()
        cache = self.config.cache
        if not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.artifacts = ArtifactStore(cache.root / ARTIFACTS_DIRNAME)
        self.store = JobStore(max_records=self.config.max_records)
        self.started = time.time()
        self.draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.max_running),
            thread_name_prefix="repro-job",
        )
        self._local = threading.local()
        self.slo = SloMeter()
        self._bridge_token = bridge.subscribe(self._on_engine_event)
        self._was_metrics_active = obs.active()
        if self.config.metrics and not self._was_metrics_active:
            obs.configure(metrics=True)
        self._was_tracing = obs.tracing_enabled()
        if self.config.tracing and not self._was_tracing:
            obs.enable_tracing()
        self._closed = False

    # -- engine event attribution --------------------------------------

    def _on_engine_event(self, event, payload):
        """Bridge tap: runs in whichever thread called ``Engine.run``
        (a job executor thread here), so the thread-local names the
        record the event belongs to.  Events from engines the service
        did not start (another thread of the same process) carry no
        record and are ignored."""
        record = getattr(self._local, "record", None)
        if record is None:
            return
        if event == "job_done":
            record.emit(
                "engine_job", label=payload.get("label"),
                status=payload.get("status"),
                where=payload.get("where"),
                elapsed_s=round(payload.get("elapsed_s", 0.0), 6),
            )
        elif event == "stage_done":
            record.emit(
                "engine_stage", stage=payload.get("stage"),
                jobs=payload.get("jobs"),
                cache_hits=payload.get("cache_hits"),
                wall_s=round(payload.get("wall_s", 0.0), 6),
            )
        elif event in ("degraded", "cancelled"):
            record.emit("engine_" + event,
                        reason=payload.get("reason"))

    # -- admission -----------------------------------------------------

    def authenticate(self, key):
        """Tenant for ``key`` or :class:`ServiceError` 401."""
        tenant = self.tenants.authenticate(key)
        if tenant is None:
            raise ServiceError(
                401, "unauthorized",
                "missing or unknown API key "
                "(Authorization: Bearer <key>)",
            )
        return tenant

    def submit(self, tenant, jobtype_name, params, traceparent=None):
        """Admit and queue one job; returns the :class:`JobRecord`.

        Admission order matters: drain first (503 regardless of who
        asks), then the tenant's own rate/quota (429/403 hurt only the
        noisy tenant), then the global backlog bound (429) -- so one
        tenant hitting its quota never consumes global queue space.
        """
        if self.draining or self._closed:
            raise ServiceError(
                503, "draining", "service is shutting down",
                retry_after=self.config.drain_grace_s,
            )
        granted, retry_after = tenant.bucket.try_acquire()
        if not granted:
            self._count_rejection(tenant, "rate_limited")
            raise ServiceError(
                429, "rate_limited",
                f"tenant {tenant.name!r} exceeded "
                f"{tenant.rate:g} submissions/s",
                retry_after=retry_after,
            )
        if self.store.active_count(tenant.name) >= tenant.max_active:
            self._count_rejection(tenant, "quota_exceeded")
            raise ServiceError(
                403, "quota_exceeded",
                f"tenant {tenant.name!r} already has "
                f"{tenant.max_active} active job(s)",
            )
        capacity = self.config.max_running + self.config.max_queued
        if self.store.active_count() >= capacity:
            self._count_rejection(tenant, "backlog_full")
            raise ServiceError(
                429, "backlog_full",
                f"service backlog is full ({capacity} active jobs)",
                retry_after=5.0,
            )
        jobtype = get_job_type(jobtype_name)
        normalized = validate_params(jobtype.schema, params or {})
        record = JobRecord(tenant.name, jobtype.name, normalized)
        if self.config.tracing:
            parsed = obs_spans.parse_traceparent(traceparent)
            if parsed is not None:
                record.trace_id, record.parent_span_id = parsed
            else:
                record.trace_id = obs_spans.new_trace_id()
            record.traceparent = obs_spans.format_traceparent(
                record.trace_id, record.parent_span_id
            )
        self.store.add(record)
        record.emit("queued", type=record.type, tenant=tenant.name,
                    trace_id=record.trace_id)
        record.future = self._executor.submit(self._execute, record)
        if obs.active():
            obs.registry().counter(
                "service_jobs_submitted_total",
                "Jobs admitted by the service",
            ).inc(type=record.type, tenant=tenant.name)
        return record

    def _count_rejection(self, tenant, reason):
        if obs.active():
            obs.registry().counter(
                "service_rejections_total",
                "Submissions rejected at admission",
            ).inc(reason=reason, tenant=tenant.name)

    # -- execution -----------------------------------------------------

    def _execute(self, record):
        if record.cancel_requested:
            record.finished = time.time()
            record.set_status(CANCELLED)
            record.emit("cancelled", where="queue")
            return
        self._local.record = record
        record.started = time.time()
        record.set_status(RUNNING)
        record.emit("started")
        context = JobContext(
            record, self.cache, engine_jobs=self.config.engine_jobs,
            executor=self.config.engine_executor,
        )
        status = FAILED
        trace_token = None
        if record.trace_id is not None:
            # Bind the request's trace to this executor thread: spans,
            # log records, and bridge events below all carry it, and
            # worker_context() ships it into pool workers.
            trace_token = obs_spans.push_trace(
                record.trace_id, record.parent_span_id
            )
        job_span = obs.span(
            "service.job",
            job=record.id, type=record.type, tenant=record.tenant,
        )
        job_span.__enter__()
        try:
            jobtype = get_job_type(record.type)
            result, artifacts = jobtype.runner(record.params, context)
            record.result = result
            record.cache_hit = context.cache_hit
            for name, content_type, payload in artifacts:
                record.artifacts.append(
                    self.artifacts.put(name, payload, content_type)
                )
            status = COMPLETED
            record.emit(
                "completed", cache_hit=record.cache_hit,
                artifacts=[a["digest"] for a in record.artifacts],
            )
        except EngineCancelled:
            status = CANCELLED
            record.error = "cancelled while running"
            record.emit("cancelled", where="running")
        except ValidationError as exc:
            record.error = str(exc)
            record.emit("failed", error=record.error)
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            _log.warning(
                f"job {record.id} ({record.type}) failed: "
                f"{record.error}"
            )
            _log.debug(traceback.format_exc())
            record.emit("failed", error=record.error)
        finally:
            self._local.record = None
            record.engine = None
            record.finished = time.time()
            job_span.set(status=status)
            job_span.__exit__(None, None, None)
            if trace_token is not None:
                obs_spans.pop_trace(trace_token)
            if record.trace_id is not None:
                harvested = obs_spans.drain_trace(record.trace_id)
                record.spans = harvested[:self.config.max_trace_spans]
            record.set_status(status)
            wall_s = (record.finished - record.started
                      if record.started else 0.0)
            self.slo.account_job(
                record.tenant, record.type, status,
                record.cache_hit, wall_s,
            )
            if obs.active():
                registry = obs.registry()
                registry.counter(
                    "service_jobs_total", "Jobs by terminal status",
                ).inc(type=record.type, status=status)
                if record.cache_hit:
                    registry.counter(
                        "service_job_cache_hits_total",
                        "Jobs answered entirely from the result cache",
                    ).inc(type=record.type)
                registry.histogram(
                    "service_job_seconds", "Job wall time",
                ).observe(wall_s)

    def cancel(self, record):
        """Request cancellation; returns the record (idempotent)."""
        if record.terminal:
            return record
        record.cancel_requested = True
        record.emit("cancel_requested")
        future = getattr(record, "future", None)
        if future is not None and future.cancel():
            # Never started: the executor dropped it, so _execute will
            # not run to mark the terminal state.
            record.finished = time.time()
            record.set_status(CANCELLED)
            record.emit("cancelled", where="queue")
            return record
        engine = record.engine
        if engine is not None:
            engine.cancel()
        return record

    # -- introspection -------------------------------------------------

    def stats(self):
        records = self.store.all_records()
        by_status = {}
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        spec = self.config.engine_executor
        executor_name = (
            getattr(spec, "name", None) or
            (spec if isinstance(spec, str) else None) or "local"
        )
        return {
            "uptime_s": round(time.time() - self.started, 3),
            "draining": self.draining,
            "tenants": self.tenants.names(),
            "jobs": by_status,
            "max_running": self.config.max_running,
            "max_queued": self.config.max_queued,
            "engine": {
                "executor": executor_name,
                "jobs": self.config.engine_jobs,
            },
            "cache": self.cache.stats(),
        }

    # -- lifecycle -----------------------------------------------------

    def drain(self, grace_s=None):
        """Stop admitting; wait up to ``grace_s`` for in-flight jobs,
        then cancel whatever is left.  Returns the jobs still live
        after the grace period (cancelled, not awaited)."""
        self.draining = True
        grace_s = (self.config.drain_grace_s
                   if grace_s is None else grace_s)
        deadline = time.monotonic() + grace_s
        while time.monotonic() < deadline:
            if self.store.active_count() == 0:
                break
            time.sleep(0.05)
        leftovers = [
            record for record in self.store.all_records()
            if not record.terminal
        ]
        for record in leftovers:
            self.cancel(record)
        return leftovers

    def close(self, grace_s=0.0):
        """Drain (briefly by default), release every resource, and
        restore process-global state the service changed."""
        if self._closed:
            return
        self.drain(grace_s=grace_s)
        self._closed = True
        bridge.unsubscribe(self._bridge_token)
        self._executor.shutdown(wait=True, cancel_futures=True)
        if self.config.metrics and not self._was_metrics_active:
            obs.configure(metrics=False)
        if self.config.tracing and not self._was_tracing:
            obs.stop_tracing()


# ----------------------------------------------------------------------
# HTTP layer.
# ----------------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request",
    401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Request:
    __slots__ = ("method", "path", "query", "headers", "body", "tenant")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.tenant = None

    def json(self):
        if not self.body:
            raise ServiceError(400, "bad_request",
                               "expected a JSON body")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                400, "bad_request", f"invalid JSON body: {exc}"
            ) from None


class ServiceServer:
    """asyncio HTTP front for one :class:`JobService`."""

    def __init__(self, service, host=None, port=None):
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.service.tenants.authenticate(DEV_TENANT_KEY):
            _log.warning(
                "development tenant active "
                "(key 'dev-local-key'); pass --tenants for real use"
            )
        _log.info(f"serving on http://{self.host}:{self.port}")
        return self

    @property
    def base_url(self):
        return f"http://{self.host}:{self.port}"

    async def aclose(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self, stop_event=None):
        """Serve until ``stop_event`` (an :class:`asyncio.Event`) is
        set, then drain gracefully and close."""
        if stop_event is None:
            stop_event = asyncio.Event()
        async with self._server:
            await stop_event.wait()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.service.drain,
            self.service.config.drain_grace_s,
        )
        self.service.close(grace_s=0.0)

    # -- request plumbing ----------------------------------------------

    async def _handle_connection(self, reader, writer):
        started = time.perf_counter()
        route = "?"
        status = 500
        request = None
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            route, status = await self._dispatch(request, writer)
        except ServiceError as exc:
            status = exc.status
            await self._send_json(writer, exc.status, exc.to_doc(),
                                  retry_after=exc.retry_after)
        except (ConnectionResetError, BrokenPipeError):
            status = 499  # client went away mid-response
        except Exception as exc:
            _log.warning(f"request failed: {type(exc).__name__}: {exc}")
            _log.debug(traceback.format_exc())
            flight.dump("service_500", context={
                "route": route,
                "path": getattr(request, "path", None),
                "error": f"{type(exc).__name__}: {exc}",
            })
            try:
                await self._send_json(writer, 500, {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                })
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            elapsed = time.perf_counter() - started
            if request is not None:
                tenant_name = (request.tenant.name
                               if request.tenant is not None else None)
                self.service.slo.observe_request(
                    tenant_name, status, elapsed
                )
                if obs.active():
                    registry = obs.registry()
                    registry.counter(
                        "service_requests_total", "HTTP requests served",
                    ).inc(route=route, status=str(status),
                          tenant=tenant_name or "-")
                    registry.histogram(
                        "service_request_seconds",
                        "HTTP request latency",
                    ).observe(elapsed, tenant=tenant_name or "-")

    async def _read_request(self, reader):
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ServiceError(400, "bad_request",
                               "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                413, "too_large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        return _Request(method.upper(), split.path, query, headers, body)

    def _auth(self, request):
        auth = request.headers.get("authorization", "")
        key = auth[7:] if auth.lower().startswith("bearer ") else \
            request.headers.get("x-api-key", "")
        request.tenant = self.service.authenticate(key)
        return request.tenant

    async def _send_json(self, writer, status, document,
                         retry_after=None):
        body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
        await self._send_raw(writer, status, "application/json", body,
                             retry_after=retry_after)

    async def _send_raw(self, writer, status, content_type, body,
                        retry_after=None):
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {max(1, int(retry_after + 0.999))}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request, writer):
        """Route one request; returns (route label, status) for the
        metrics fold."""
        path = request.path
        method = request.method
        if path in ("/", "/healthz", "/v1/healthz"):
            await self._send_json(writer, 200, {
                "ok": True, "service": "repro",
                "draining": self.service.draining,
            })
            return "healthz", 200
        if not path.startswith("/v1/"):
            raise ServiceError(404, "not_found",
                               f"no such route {path!r}")
        self._auth(request)

        if path == "/v1/types" and method == "GET":
            await self._send_json(writer, 200,
                                  {"types": describe_job_types()})
            return "types", 200
        if path == "/v1/stats" and method == "GET":
            await self._send_json(writer, 200, self.service.stats())
            return "stats", 200
        if path == "/v1/slo" and method == "GET":
            await self._send_json(
                writer, 200,
                self.service.slo.report(self.service.tenants),
            )
            return "slo", 200
        if path == "/v1/metrics" and method == "GET":
            # Process gauges always; the full registry when metrics
            # collection is on.  Either way the output is stock
            # Prometheus text a scraper can ingest.
            obs.update_process_gauges()
            snapshot = obs.registry().snapshot()
            await self._send_raw(
                writer, 200, "text/plain; version=0.0.4",
                obs.render_prometheus(snapshot).encode("utf-8"),
            )
            return "metrics", 200
        if path == "/v1/jobs" and method == "POST":
            return await self._route_submit(request, writer)
        if path == "/v1/jobs" and method == "GET":
            docs = [
                record.to_doc(include_result=False)
                for record in
                self.service.store.for_tenant(request.tenant.name)
            ]
            await self._send_json(writer, 200, {"jobs": docs})
            return "jobs_list", 200
        if path.startswith("/v1/jobs/"):
            return await self._route_job(request, writer)
        if path.startswith("/v1/artifacts/") and method == "GET":
            return await self._route_artifact(request, writer)
        raise ServiceError(404, "not_found", f"no such route {path!r}")

    async def _route_submit(self, request, writer):
        document = request.json()
        if not isinstance(document, dict) or "type" not in document:
            raise ServiceError(
                400, "bad_request",
                'expected {"type": ..., "params": {...}}',
            )
        try:
            record = self.service.submit(
                request.tenant, document["type"],
                document.get("params") or {},
                traceparent=request.headers.get("traceparent"),
            )
        except ValidationError as exc:
            raise ServiceError(400, "invalid_params", str(exc)) \
                from None
        await self._send_json(writer, 202, record.to_doc())
        return "submit", 202

    def _record_or_404(self, request, job_id):
        record = self.service.store.get(
            job_id, tenant=request.tenant.name
        )
        if record is None:
            raise ServiceError(404, "not_found",
                               f"no such job {job_id!r}")
        return record

    async def _route_job(self, request, writer):
        tail = request.path[len("/v1/jobs/"):]
        job_id, _, action = tail.partition("/")
        if not action and request.method == "GET":
            record = self._record_or_404(request, job_id)
            await self._send_json(writer, 200, record.to_doc())
            return "job_get", 200
        if action == "cancel" and request.method == "POST":
            record = self._record_or_404(request, job_id)
            self.service.cancel(record)
            await self._send_json(writer, 202,
                                  record.to_doc(include_result=False))
            return "job_cancel", 202
        if action == "events" and request.method == "GET":
            record = self._record_or_404(request, job_id)
            await self._stream_events(request, writer, record)
            return "job_events", 200
        if action == "trace" and request.method == "GET":
            record = self._record_or_404(request, job_id)
            await self._route_trace(request, writer, record)
            return "job_trace", 200
        raise ServiceError(404, "not_found",
                           f"no such route {request.path!r}")

    async def _route_trace(self, request, writer, record):
        """The assembled span tree of one job (``?format=chrome`` for
        a Chrome ``trace_event`` document)."""
        if record.trace_id is None:
            raise ServiceError(
                404, "no_trace",
                f"job {record.id!r} carries no trace "
                "(service tracing is disabled)",
            )
        spans = list(record.spans)
        fmt = request.query.get("format", "tree")
        if fmt == "chrome":
            await self._send_json(
                writer, 200, obs_spans.to_chrome(spans)
            )
            return
        if fmt != "tree":
            raise ServiceError(400, "bad_request",
                               "format must be tree or chrome")
        await self._send_json(writer, 200, {
            "job": record.id,
            "status": record.status,
            "trace_id": record.trace_id,
            "traceparent": record.traceparent,
            "complete": record.terminal,
            "span_count": len(spans),
            "spans": spans,
            "tree": obs_spans.render_tree(spans)
            if spans else "(no spans recorded)",
        })

    async def _stream_events(self, request, writer, record):
        """NDJSON long-poll: one event per line from ``?since=N`` until
        the job reaches a terminal state (the closing connection is the
        end-of-stream marker)."""
        try:
            index = max(0, int(request.query.get("since", 0)))
        except ValueError:
            raise ServiceError(400, "bad_request",
                               "since must be an integer") from None
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1"))
        await writer.drain()
        loop = asyncio.get_running_loop()
        while True:
            events = await loop.run_in_executor(
                None, record.events_since, index, EVENT_POLL_S
            )
            for event in events:
                writer.write(
                    (json.dumps(event) + "\n").encode("utf-8")
                )
            if events:
                index = events[-1]["seq"] + 1
                await writer.drain()
            elif record.terminal:
                break
            if self.service.draining and record.terminal:
                break

    async def _route_artifact(self, request, writer):
        digest = request.path[len("/v1/artifacts/"):]
        try:
            descriptor, data = self.service.artifacts.get(digest)
        except KeyError:
            raise ServiceError(
                404, "not_found", f"no such artifact {digest!r}"
            ) from None
        await self._send_raw(
            writer, 200,
            descriptor.get("content_type", "application/octet-stream"),
            data,
        )
        return "artifact", 200


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------

async def serve(config=None, stop_event=None, ready=None):
    """Run the service until ``stop_event``; SIGINT/SIGTERM also stop
    it (installed when the loop supports signal handlers)."""
    import signal as signal_module

    service = JobService(config)
    server = ServiceServer(service)
    await server.start()
    if ready is not None:
        ready(server)
    if stop_event is None:
        stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            break
    try:
        await server.serve_forever(stop_event)
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.aclose()
        service.close(grace_s=0.0)


@dataclass
class ServiceHandle:
    """A service running on a daemon thread (tests, benchmarks)."""

    service: JobService
    server: ServiceServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    stop_event: asyncio.Event = field(repr=False, default=None)

    @property
    def base_url(self):
        return self.server.base_url

    def stop(self):
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.stop_event.set)
            self.thread.join(timeout=30)
        self.service.close(grace_s=0.0)


def start_in_thread(config=None):
    """Start a full service + HTTP server on a background thread.

    Returns a :class:`ServiceHandle`; the caller owns ``handle.stop()``.
    Binds port 0 by default so parallel test runs never collide.
    """
    config = config or ServiceConfig(port=0)
    service = JobService(config)
    boot = {}
    booted = threading.Event()

    def _run():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop_event = asyncio.Event()
        server = ServiceServer(service)

        async def _main():
            try:
                await server.start()
            except Exception as exc:
                boot["error"] = exc
                booted.set()
                return
            boot["server"] = server
            boot["stop_event"] = stop_event
            boot["loop"] = loop
            booted.set()
            await server.serve_forever(stop_event)
            await server.aclose()

        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-service", daemon=True
    )
    thread.start()
    booted.wait(timeout=30)
    if "error" in boot:
        raise boot["error"]
    if "server" not in boot:
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(
        service=service, server=boot["server"], thread=thread,
        loop=boot["loop"], stop_event=boot["stop_event"],
    )


__all__ = [
    "JobService", "ServiceConfig", "ServiceError", "ServiceHandle",
    "ServiceServer", "serve", "start_in_thread",
]
