"""``repro top`` -- a live terminal dashboard for a running service.

Polls ``GET /v1/stats`` and ``GET /v1/slo`` and renders one compact
frame per interval: service headline (uptime, jobs by status, cache),
then one block per tenant with request mix, latency quantiles,
availability vs objective, error-budget burn, and the usage table.

Rendering is a pure function of the two response documents
(:func:`render_dashboard`), so tests exercise it without a terminal;
the loop just clears the screen and reprints.
"""

import sys
import time

#: ANSI clear-screen + cursor-home (what ``watch`` does per frame).
CLEAR = "\x1b[2J\x1b[H"


def _bar(fraction, width=20):
    """A [####----] meter for a 0..1 fraction (clamped)."""
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "-" * (width - filled)


def _fmt_seconds(seconds):
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_dashboard(stats, slo, now=None):
    """One dashboard frame from ``/v1/stats`` + ``/v1/slo`` documents."""
    lines = []
    stamp = time.strftime("%H:%M:%S", time.localtime(now))
    jobs = stats.get("jobs", {})
    job_bits = " ".join(
        f"{status}={count}" for status, count in sorted(jobs.items())
    ) or "none"
    cache = stats.get("cache", {})
    lines.append(
        f"repro top  {stamp}  "
        f"up {_fmt_seconds(stats.get('uptime_s', 0.0))}"
        + ("  DRAINING" if stats.get("draining") else "")
    )
    lines.append(
        f"jobs: {job_bits}   slots: {stats.get('max_running', '?')} "
        f"running / {stats.get('max_queued', '?')} queued   "
        f"cache: {cache.get('entries', '?')} entries"
    )
    lines.append("")

    tenants = (slo or {}).get("tenants", {})
    if not tenants:
        lines.append("(no tenant traffic yet)")
        return "\n".join(lines)

    header = (
        f"{'tenant':<12} {'reqs':>6} {'ok':>5} {'thr':>4} {'4xx':>4} "
        f"{'5xx':>4} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'avail':>8} {'budget':>22}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(tenants):
        report = tenants[name]
        requests = report.get("requests", {})
        latency = report.get("latency", {})
        budget = report.get("error_budget", {})
        remaining = budget.get("remaining_fraction", 1.0)
        availability = report.get("availability", 1.0)
        marker = "" if report.get("availability_met", True) else " !"
        lines.append(
            f"{name:<12} {requests.get('total', 0):>6} "
            f"{requests.get('ok', 0):>5} "
            f"{requests.get('throttled', 0):>4} "
            f"{requests.get('client_error', 0):>4} "
            f"{requests.get('server_error', 0):>4} "
            f"{latency.get('p50_s', 0.0) * 1000:>6.1f}ms "
            f"{latency.get('p95_s', 0.0) * 1000:>6.1f}ms "
            f"{latency.get('p99_s', 0.0) * 1000:>6.1f}ms "
            f"{availability * 100:>7.2f}% "
            f"[{_bar(remaining)}] {remaining * 100:>4.0f}%{marker}"
        )
    lines.append("")
    lines.append(
        f"{'tenant':<12} {'jobs':>6} {'hits':>6} {'wall':>9}  by type"
    )
    for name in sorted(tenants):
        usage = tenants[name].get("usage", {})
        by_type = usage.get("by_type", {})
        type_bits = " ".join(
            f"{jobtype}={count}"
            for jobtype, count in sorted(by_type.items())
        ) or "-"
        lines.append(
            f"{name:<12} {usage.get('jobs_total', 0):>6} "
            f"{usage.get('cache_hits', 0):>6} "
            f"{usage.get('wall_seconds', 0.0):>8.2f}s  {type_bits}"
        )
    return "\n".join(lines)


def run_top(client, interval_s=2.0, count=None, stream=None,
            clear=True):
    """Poll and render until interrupted (or ``count`` frames).

    ``client`` is a :class:`~repro.service.client.ServiceClient`;
    ``count=None`` loops until Ctrl-C.  Returns the number of frames
    rendered (tests pass ``count=1``).
    """
    stream = stream or sys.stdout
    frames = 0
    while count is None or frames < count:
        stats = client.stats()
        slo = client.slo()
        frame = render_dashboard(stats, slo)
        if clear:
            stream.write(CLEAR)
        stream.write(frame + "\n")
        stream.flush()
        frames += 1
        if count is not None and frames >= count:
            break
        time.sleep(interval_s)
    return frames


__all__ = ["CLEAR", "render_dashboard", "run_top"]
