"""Named job types: validated parameter schemas over the engine.

Every service job is a *named type* with a declared schema -- the
service never executes caller-supplied code.  A runner receives its
validated parameters plus a :class:`JobContext` and returns
``(result_document, artifacts)`` where artifacts is a list of
``(name, content_type, payload)`` tuples.

Built-in types:

``yield_study``   the Table 5 wafer Monte Carlo for one core
``wafer_maps``    the Figure 6/7 error/current wafer maps for one core
``dse_sweep``     ``dse.evaluate_design`` over named design points
``conformance``   a differential-testing campaign (always cache-less)
``kernel_run``    one Table 6 kernel checked against its golden model

All of them execute through a per-job :class:`~repro.engine.Engine`
sharing the service-wide :class:`~repro.engine.ResultCache`, so a
repeat submission -- same type, same parameters -- is answered from
cache in milliseconds and reported with ``cache_hit: true``.

The registry is open: :func:`register_job_type` adds new types at
runtime (tests register a ``sleep`` type to exercise queue behavior).
"""

import json
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.engine import Engine, Job, spawn_seeds


class ValidationError(ValueError):
    """A submission document failed schema validation (HTTP 400)."""


# ----------------------------------------------------------------------
# Schema mini-language.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Field:
    """One validated job parameter."""

    type: type                      # int | float | str | bool | list
    default: object = None          # None + required=False -> optional
    required: bool = False
    choices: Optional[Callable] = None  # () -> allowed values
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    doc: str = ""

    def validate(self, name, value):
        if self.type is float and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if self.type is not bool and isinstance(value, bool):
            raise ValidationError(f"{name}: expected {self.type.__name__}")
        if not isinstance(value, self.type):
            raise ValidationError(
                f"{name}: expected {self.type.__name__}, "
                f"got {type(value).__name__}"
            )
        if self.choices is not None:
            allowed = self.choices()
            if value not in allowed:
                raise ValidationError(
                    f"{name}: {value!r} not one of {sorted(allowed)}"
                )
        if self.minimum is not None and value < self.minimum:
            raise ValidationError(f"{name}: {value} < {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ValidationError(f"{name}: {value} > {self.maximum}")
        return value


def validate_params(schema, params):
    """Check ``params`` against ``schema``; returns normalized params."""
    if not isinstance(params, dict):
        raise ValidationError("params must be a JSON object")
    unknown = set(params) - set(schema)
    if unknown:
        raise ValidationError(
            f"unknown parameter(s) {sorted(unknown)}; "
            f"accepted: {sorted(schema)}"
        )
    normalized = {}
    for name, spec in schema.items():
        if name in params:
            normalized[name] = spec.validate(name, params[name])
        elif spec.required:
            raise ValidationError(f"missing required parameter '{name}'")
        elif spec.default is not None:
            normalized[name] = spec.default
    return normalized


# ----------------------------------------------------------------------
# Job context: what a runner may touch.
# ----------------------------------------------------------------------

class JobContext:
    """Execution facilities handed to a job runner.

    ``engine()`` builds the job's engine exactly once -- bound to the
    shared service cache (or cache-less on request) and registered on
    the job record so a cancel request reaches the in-flight run.
    """

    def __init__(self, record, cache, engine_jobs=1, executor=None):
        self.record = record
        self._cache = cache
        self._engine_jobs = engine_jobs
        self._executor = executor
        self._engine = None

    def engine(self, cache=True):
        if self._engine is None:
            self._engine = Engine(
                jobs=self._engine_jobs,
                cache=self._cache if cache else None,
                executor=self._executor,
            )
            self.record.engine = self._engine
        return self._engine

    def emit(self, event, **fields):
        self.record.emit(event, **fields)

    @property
    def cache_hit(self):
        """True when every *cacheable* engine job of this run came from
        cache.  Graph runs carry uncached fold nodes (e.g. the yield
        merge), so the test is "some hits and zero misses" rather than
        hits == submissions."""
        engine = self._engine
        if engine is None or engine.cache is None:
            return False
        return (engine.metrics.cache_hits > 0
                and engine.metrics.cache_misses == 0)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class JobType:
    name: str
    description: str
    schema: dict
    runner: Callable  # (params, context) -> (result, artifacts)


_JOB_TYPES = {}


def register_job_type(name, description, schema, runner):
    """Add (or replace) a job type; returns the :class:`JobType`."""
    jobtype = JobType(name, description, dict(schema), runner)
    _JOB_TYPES[name] = jobtype
    return jobtype


def job_types():
    """{name: JobType} snapshot of the registry."""
    return dict(_JOB_TYPES)


def get_job_type(name):
    try:
        return _JOB_TYPES[name]
    except KeyError:
        raise ValidationError(
            f"unknown job type {name!r}; "
            f"available: {sorted(_JOB_TYPES)}"
        ) from None


def describe_job_types():
    """The ``GET /v1/types`` document."""
    doc = {}
    for name, jobtype in sorted(_JOB_TYPES.items()):
        doc[name] = {
            "description": jobtype.description,
            "params": {
                field: {
                    "type": spec.type.__name__,
                    "required": spec.required,
                    **({"default": spec.default}
                       if spec.default is not None else {}),
                    **({"choices": sorted(spec.choices())}
                       if spec.choices is not None else {}),
                    **({"min": spec.minimum}
                       if spec.minimum is not None else {}),
                    **({"max": spec.maximum}
                       if spec.maximum is not None else {}),
                    **({"doc": spec.doc} if spec.doc else {}),
                }
                for field, spec in jobtype.schema.items()
            },
        }
    return doc


def run_job(jobtype_name, params, context):
    """Validate-and-run; returns ``(result, artifacts)``."""
    jobtype = get_job_type(jobtype_name)
    params = validate_params(jobtype.schema, params)
    return jobtype.runner(params, context)


# ----------------------------------------------------------------------
# Choice providers (lazy so importing this module stays cheap).
# ----------------------------------------------------------------------

def _core_names():
    from repro.netlist.cores import CORE_BUILDERS

    return tuple(sorted(CORE_BUILDERS))


def _kernel_names():
    from repro.kernels.suite import kernel_names

    return kernel_names()


def _isa_names():
    from repro.isa import available_isas

    return tuple(available_isas())


def _design_names():
    from repro.dse.designs import ALL_DESIGNS

    return tuple(d.name for d in ALL_DESIGNS)


def _backend_names():
    from repro.netlist.backend import BACKENDS

    return tuple(sorted(BACKENDS))


def _oracle_names():
    from repro.conformance.oracles import ORACLES

    return tuple(sorted(ORACLES))


# ----------------------------------------------------------------------
# Built-in runners.
# ----------------------------------------------------------------------

def _json_voltage_summary(summary):
    """Voltage-keyed study summary with string keys (JSON-stable)."""
    out = {}
    for voltage, bucket in summary.items():
        if not isinstance(voltage, (int, float)):
            continue
        out[f"{voltage:g}"] = {
            key: float(value) for key, value in bucket.items()
        }
    return out


def _run_yield_study(params, ctx):
    from repro.fab.process import process_for
    from repro.fab.yield_model import run_yield_study

    core = params["core"]
    summary = run_yield_study(
        None, process_for(core), wafers=params["wafers"],
        voltages=tuple(params["voltages"]),
        seed=params["seed"], core=core, engine=ctx.engine(),
        fault_check=params["fault_check"], backend=params["backend"],
    )
    result = {
        "core": core,
        "wafers": params["wafers"],
        "seed": params["seed"],
        "summary": _json_voltage_summary(summary),
    }
    coverage = summary.get("fault_coverage")
    if coverage:
        result["fault_coverage"] = {
            "injected": coverage["injected"],
            "detected": coverage["detected"],
            "coverage": coverage["coverage"],
        }
    lines = [
        f"yield study: {core}, {params['wafers']} wafer(s), "
        f"seed {params['seed']}",
        f"{'voltage':<9} {'full':>7} {'incl':>7} {'mean mA':>9} "
        f"{'rsd':>7}",
    ]
    for voltage, bucket in sorted(result["summary"].items(),
                                  key=lambda kv: float(kv[0])):
        lines.append(
            f"{voltage + ' V':<9} {100 * bucket['full']:6.1f}% "
            f"{100 * bucket['inclusion']:6.1f}% "
            f"{bucket['mean_current_ma']:9.3f} "
            f"{100 * bucket['rsd']:6.1f}%"
        )
    if coverage:
        lines.append(
            f"fault coverage: {coverage['detected']}/"
            f"{coverage['injected']} detected "
            f"({100 * coverage['coverage']:.0f}%)"
        )
    text = "\n".join(lines) + "\n"
    return result, [("yield_study.txt", "text/plain; charset=utf-8",
                     text)]


def _run_wafer_maps(params, ctx):
    import json

    from repro.experiments.figures import _render_grid
    from repro.fab.process import process_for
    from repro.fab.yield_model import probed_wafer_job

    core = params["core"]
    voltages = tuple(params["voltages"])
    (child,) = spawn_seeds(params["seed"], 1)
    job = Job(
        probed_wafer_job,
        {"core": core, "process": process_for(core),
         "voltages": voltages},
        seed=child, label=f"maps:{core}",
    )
    probes = ctx.engine().run([job], stage=f"maps:{core}")[0]["probes"]

    def render_errors(errors):
        if errors is None:
            return " ."
        if errors == 0:
            return " O"
        magnitude = min(9, max(1, len(str(errors))))
        return f" {magnitude}"

    def render_current(current):
        return "   ." if current is None else f" {current:3.1f}"

    result = {"core": core, "seed": params["seed"], "voltages": {}}
    artifacts = []
    error_parts = [f"Figure 6 (errors/die): {core}"]
    current_parts = [f"Figure 7 (current mA/die): {core}"]
    for voltage in voltages:
        probe = probes[voltage]
        error_map = probe.error_map()
        current_map = probe.current_map()
        mean, std, rsd = probe.current_statistics()
        result["voltages"][f"{voltage:g}"] = {
            "yield": probe.yield_fraction(),
            "mean_current_ma": mean,
            "rsd": rsd,
            "dies": len(probe.records),
        }
        error_parts.append(f"\n-- {voltage:g} V --")
        error_parts.append(_render_grid(error_map, render_errors))
        current_parts.append(
            f"\n-- {voltage:g} V: mean {mean:.2f} mA, "
            f"rsd {100 * rsd:.1f}% --"
        )
        current_parts.append(_render_grid(current_map, render_current))
    artifacts.append(("figure6.txt", "text/plain; charset=utf-8",
                      "\n".join(error_parts) + "\n"))
    artifacts.append(("figure7.txt", "text/plain; charset=utf-8",
                      "\n".join(current_parts) + "\n"))
    artifacts.append((
        "wafer_maps.json", "application/json",
        json.dumps(result, indent=2),
    ))
    return result, artifacts


def _run_dse_sweep(params, ctx):
    from repro.dse.designs import ALL_DESIGNS
    from repro.dse.evaluate import evaluate_all

    by_name = {d.name: d for d in ALL_DESIGNS}
    names = params["designs"] or list(by_name)
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ValidationError(
            f"unknown design(s) {unknown}; available: {sorted(by_name)}"
        )
    selection = [by_name[n] for n in names]
    evaluated = evaluate_all(
        designs=selection, transactions=params["transactions"],
        seed=params["seed"], bus_bits=params["bus_bits"] or None,
        gate_check=params["gate_check"], engine=ctx.engine(),
    )
    result = {"designs": {}}
    for name, metrics in evaluated.items():
        entry = {
            "gate_count": metrics.gate_count,
            "nand2_area": metrics.nand2_area,
            "area_mm2": metrics.area_mm2,
            "static_power_w": metrics.static_power_w,
            "period_units": metrics.period_units,
            "frequency_hz": metrics.frequency_hz,
            "kernels": {
                kname: {
                    "static_instructions": k.static_instructions,
                    "code_bits": k.code_bits,
                    "dynamic_instructions": k.dynamic_instructions,
                    "cycles": k.cycles,
                    "time_s": k.time_s,
                    "energy_j": k.energy_j,
                    "feasible": k.feasible,
                }
                for kname, k in metrics.kernels.items()
            },
        }
        if metrics.gate_check is not None:
            entry["gate_check"] = metrics.gate_check
        result["designs"][name] = entry
    lines = [
        f"DSE sweep: {len(result['designs'])} design(s), "
        f"transactions {params['transactions']}, seed {params['seed']}",
        f"{'design':<14} {'gates':>7} {'NAND2':>8} {'freq kHz':>9} "
        f"{'power mW':>9}",
    ]
    for name in names:
        entry = result["designs"][name]
        lines.append(
            f"{name:<14} {entry['gate_count']:7d} "
            f"{entry['nand2_area']:8.0f} "
            f"{entry['frequency_hz'] / 1e3:9.2f} "
            f"{entry['static_power_w'] * 1e3:9.3f}"
        )
    return result, [("dse_sweep.txt", "text/plain; charset=utf-8",
                     "\n".join(lines) + "\n")]


def _run_dse_search(params, ctx):
    from repro.dse.search import (
        SearchConfig,
        format_search_frontier,
        search,
    )
    from repro.dse.space import DesignSpace

    space_kwargs = {}
    if params["features"]:
        space_kwargs["features"] = tuple(params["features"])
    if params["microarchs"]:
        space_kwargs["microarchs"] = tuple(params["microarchs"])
    if params["models"]:
        space_kwargs["operand_models"] = tuple(params["models"])
    if params["bus"]:
        space_kwargs["bus_bits"] = tuple(params["bus"])
    try:
        config = SearchConfig(
            budget=params["budget"],
            seed=params["seed"],
            objectives=tuple(params["objectives"]),
            population=params["population"],
            space=DesignSpace(**space_kwargs),
        )
    except ValueError as exc:
        raise ValidationError(str(exc)) from None
    result = search(config, engine=ctx.engine())
    trail = "\n".join(
        json.dumps(record, sort_keys=True) for record in result.trail
    )
    return result.to_doc(), [
        ("dse_search.txt", "text/plain; charset=utf-8",
         format_search_frontier(result) + "\n"),
        ("dse_search_trail.jsonl", "application/jsonl", trail + "\n"),
    ]


def _run_conformance(params, ctx):
    from repro.conformance import run_campaign

    summary = run_campaign(
        params["seed"], params["budget"],
        oracle_names=params["oracles"] or None,
        # A conformance campaign must execute its cases, never replay
        # a previous campaign's cached verdicts -- and it must not
        # leave corpus files on the server for every fuzz request.
        engine=ctx.engine(cache=False),
        persist=False,
    )
    result = {
        "cases": summary["cases"],
        "elapsed_s": summary["elapsed_s"],
        "slices": summary["slices"],
        "divergences": [
            {"id": entry.get("id"),
             "divergence": entry.get("divergence")}
            for entry in summary["divergences"]
        ],
    }
    lines = [
        f"conformance: seed {params['seed']}, budget "
        f"{params['budget']}, {summary['cases']} cases, "
        f"{len(summary['divergences'])} divergence(s)",
    ]
    for item in summary["slices"]:
        lines.append(
            f"  {item['oracle']:<10} {item['target']:<14} "
            f"{item['cases']:5d} cases {item['divergences']:3d} diverged"
        )
    return result, [("conformance.txt", "text/plain; charset=utf-8",
                     "\n".join(lines) + "\n")]


from repro.engine import job_function  # noqa: E402


@job_function("service.kernel_run", version="1")
def kernel_run_job(params, seed):
    """Engine job: run one Table 6 kernel against its golden model.

    The engine-level ``seed`` is unused -- the input draw seed is an
    explicit parameter (part of the experiment's definition), keeping
    the job order-independent and its cache key fully explicit.
    """
    from repro.kernels.kernel import Target
    from repro.kernels.suite import get_kernel

    kernel = get_kernel(params["kernel"])
    target = Target.named(params["isa"])
    rng = np.random.default_rng(params["seed"])
    inputs = kernel.generate_inputs(rng, params["transactions"])
    result = kernel.check(target, inputs)
    program = kernel.program(target)
    return {
        "kernel": kernel.name,
        "isa": target.name,
        "transactions": params["transactions"],
        "inputs": len(inputs),
        "static_instructions": program.static_instructions,
        "code_bytes": program.size_bytes,
        "dynamic_instructions": result.instructions,
        "reason": result.reason,
        "checked": True,
    }


def _run_kernel(params, ctx):
    job = Job(
        kernel_run_job,
        {"kernel": params["kernel"], "isa": params["isa"],
         "transactions": params["transactions"],
         "seed": params["seed"]},
        label=f"kernel:{params['kernel']}:{params['isa']}",
    )
    result = ctx.engine().run([job], stage="kernel")[0]
    text = (
        f"{result['kernel']} on {result['isa']}: "
        f"{result['dynamic_instructions']} instructions over "
        f"{result['transactions']} transaction(s) ({result['reason']}), "
        f"{result['static_instructions']} static / "
        f"{result['code_bytes']} bytes, golden model OK\n"
    )
    return result, [("kernel_run.txt", "text/plain; charset=utf-8",
                     text)]


# ----------------------------------------------------------------------
# Built-in registrations.
# ----------------------------------------------------------------------

register_job_type(
    "yield_study",
    "Wafer-yield Monte Carlo for one core (Table 5 row)",
    {
        "core": Field(str, required=True, choices=_core_names),
        "wafers": Field(int, default=2, minimum=1, maximum=64),
        "seed": Field(int, default=2022, minimum=0),
        "voltages": Field(list, default=[3.0, 4.5],
                          doc="probe voltages"),
        "fault_check": Field(int, default=0, minimum=0, maximum=256,
                             doc="stuck-at faults to inject (0 = off)"),
        "backend": Field(str, default="compiled",
                         choices=_backend_names),
    },
    _run_yield_study,
)

register_job_type(
    "wafer_maps",
    "Figure 6/7 output-error and current wafer maps for one core",
    {
        "core": Field(str, required=True, choices=_core_names),
        "seed": Field(int, default=2022, minimum=0),
        "voltages": Field(list, default=[3.0, 4.5]),
    },
    _run_wafer_maps,
)

register_job_type(
    "dse_sweep",
    "Design-space evaluation over named design points (Figures 11-13)",
    {
        "designs": Field(list, default=[],
                         doc="design names ([] = all)"),
        "transactions": Field(int, default=12, minimum=1, maximum=64),
        "seed": Field(int, default=2022, minimum=0),
        "bus_bits": Field(int, default=0, minimum=0, maximum=32,
                          doc="program-bus restriction (0 = natural)"),
        "gate_check": Field(bool, default=False),
    },
    _run_dse_sweep,
)

register_job_type(
    "dse_search",
    "Adaptive multi-objective search over the parametric design space",
    {
        "budget": Field(int, default=48, minimum=2, maximum=1024,
                        doc="scoring-job budget (any fidelity)"),
        "seed": Field(int, default=2022, minimum=0),
        "objectives": Field(list, default=["area", "cost", "energy"],
                            doc="lower-is-better objectives from "
                                "area/cost/energy/code"),
        "population": Field(int, default=16, minimum=2, maximum=128),
        "features": Field(list, default=[],
                          doc="feature-gate axis ([] = all gates)"),
        "microarchs": Field(list, default=[],
                            doc="microarch axis ([] = SC,P,MC)"),
        "models": Field(list, default=[],
                        doc="operand-model axis ([] = acc,ls)"),
        "bus": Field(list, default=[],
                     doc="program-bus widths; 0 = natural ([] = 0,8)"),
    },
    _run_dse_search,
)

register_job_type(
    "conformance",
    "Differential-testing campaign over the redundant paths",
    {
        "seed": Field(int, default=0, minimum=0),
        "budget": Field(int, default=50, minimum=1, maximum=2000),
        "oracles": Field(list, default=[],
                         doc="oracle names ([] = all)"),
    },
    _run_conformance,
)

register_job_type(
    "kernel_run",
    "Run one Table 6 kernel and check it against the golden model",
    {
        "kernel": Field(str, required=True, choices=_kernel_names),
        "isa": Field(str, default="flexicore4", choices=_isa_names),
        "transactions": Field(int, default=10, minimum=1, maximum=1000),
        "seed": Field(int, default=2022, minimum=0),
    },
    _run_kernel,
)
