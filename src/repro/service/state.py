"""Job records and the in-memory job store of ``repro.service``.

A :class:`JobRecord` is the unit of truth for one submitted job: its
parameters, lifecycle status, per-job event log (what the ``/events``
endpoint streams), result document, and artifact listing.  Records are
mutated from executor threads and read from the asyncio serving thread,
so every mutable field goes through the record's condition variable.

The :class:`JobStore` is deliberately in-memory: job state is cheap to
recompute (the *results* live in the content-addressed engine cache,
which is durable), and a restarted service serving a resubmitted job
answers it straight from that cache.
"""

import threading
import time
import uuid
from collections import OrderedDict

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL = frozenset({COMPLETED, FAILED, CANCELLED})


def new_job_id():
    return uuid.uuid4().hex[:16]


class JobRecord:
    """One submitted job: parameters, status, events, result."""

    def __init__(self, tenant, jobtype, params, job_id=None):
        self.id = job_id or new_job_id()
        self.tenant = tenant
        self.type = jobtype
        self.params = params
        self.status = QUEUED
        self.created = time.time()
        self.started = None
        self.finished = None
        self.result = None
        self.error = None
        self.cache_hit = False
        self.artifacts = []
        self.cancel_requested = False
        #: Live engine while the job is running (the cancellation hook).
        self.engine = None
        #: W3C-style trace identity (set at submission by the service).
        self.trace_id = None
        self.parent_span_id = None
        self.traceparent = None
        #: Finished span records harvested when the job went terminal
        #: (the ``GET /v1/jobs/{id}/trace`` payload).
        self.spans = []
        self._events = []
        self._cond = threading.Condition()

    # -- events --------------------------------------------------------

    def emit(self, event, **fields):
        """Append one event to the job's log and wake any waiters."""
        with self._cond:
            record = {
                "seq": len(self._events),
                "ts": round(time.time(), 6),
                "job": self.id,
                "event": event,
            }
            record.update(fields)
            self._events.append(record)
            self._cond.notify_all()
        return record

    def events_since(self, index, timeout=None):
        """Events past ``index``; blocks up to ``timeout`` for news.

        Returns immediately with whatever exists past ``index``; when
        nothing does and the job is still live, waits for the next
        :meth:`emit` (or the timeout).  An empty list therefore means
        "nothing new yet" for a live job and "stream over" for a
        terminal one -- the server uses :attr:`terminal` to tell them
        apart.
        """
        with self._cond:
            if len(self._events) <= index and self.status not in TERMINAL:
                self._cond.wait(timeout)
            return list(self._events[index:])

    @property
    def terminal(self):
        return self.status in TERMINAL

    def set_status(self, status):
        with self._cond:
            self.status = status
            self._cond.notify_all()

    # -- serialization -------------------------------------------------

    def to_doc(self, include_result=True):
        """The ``GET /v1/jobs/{id}`` document."""
        doc = {
            "id": self.id,
            "type": self.type,
            "tenant": self.tenant,
            "status": self.status,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "cache_hit": self.cache_hit,
            "events": len(self._events),
            "artifacts": list(self.artifacts),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
            doc["traceparent"] = self.traceparent
        if self.error is not None:
            doc["error"] = self.error
        if include_result and self.status == COMPLETED:
            doc["result"] = self.result
        return doc


class JobStore:
    """Thread-safe id-ordered registry of :class:`JobRecord`.

    Bounded: once ``max_records`` is exceeded the oldest *terminal*
    records are dropped (live records are never evicted), so a
    long-running service's memory stays flat while every in-flight
    job remains addressable.
    """

    def __init__(self, max_records=4096):
        self.max_records = max_records
        self._records = OrderedDict()
        self._lock = threading.Lock()

    def add(self, record):
        with self._lock:
            self._records[record.id] = record
            excess = len(self._records) - self.max_records
            if excess > 0:
                for job_id in [
                    job_id for job_id, rec in self._records.items()
                    if rec.terminal
                ][:excess]:
                    del self._records[job_id]

    def get(self, job_id, tenant=None):
        """The record, or None; with ``tenant``, scoped to that tenant
        (another tenant's job is indistinguishable from no job)."""
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return None
        if tenant is not None and record.tenant != tenant:
            return None
        return record

    def for_tenant(self, tenant):
        with self._lock:
            records = list(self._records.values())
        return [r for r in records if r.tenant == tenant]

    def active_count(self, tenant=None):
        """Queued + running jobs, optionally for one tenant."""
        with self._lock:
            records = list(self._records.values())
        return sum(
            1 for r in records
            if not r.terminal and (tenant is None or r.tenant == tenant)
        )

    def all_records(self):
        with self._lock:
            return list(self._records.values())
