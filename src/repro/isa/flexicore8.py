"""FlexiCore8: the fabricated 8-bit base ISA (Figure 2b).

FlexiCore8 has all of FlexiCore4's instructions widened to an 8-bit
datapath, with two differences driven by the <800-NAND2 area budget:

- the data memory is halved to four octets (so memory addresses are two
  bits), and
- a two-byte LOAD BYTE instruction (opcode byte ``0000_1000``) loads a
  full 8-bit immediate, because the I-Type's 4-bit immediate can no longer
  materialize every constant.

LOAD BYTE is the only stateful part of the decoder: recognizing the opcode
sets a 'load byte' flag indicating the next fetched byte is data, not an
instruction (Section 3.4) -- the single flip-flop of FlexiCore8's
controller.  I-Type immediates are sign-extended to 8 bits (the hardware
simply wires bit 3 across the upper nibble), which preserves the base
ISA's ``addi -3`` and ``nandi 0`` idioms.
"""

from repro.isa import bits
from repro.isa.errors import DecodeError
from repro.isa.flexicore4 import _ALU_OPS, OP_TRANSFER, alu_result
from repro.isa.model import (
    ISA,
    DecodedInstruction,
    InstrClass,
    InstructionSpec,
    decode_helper,
    imm_operand,
    memaddr_operand,
    target_operand,
)

#: The LOAD BYTE opcode byte of Figure 2b.
LOAD_BYTE_OPCODE = 0b0000_1000


class FlexiCore8(ISA):
    """The fabricated 8-bit FlexiCore ISA."""

    name = "flexicore8"
    word_bits = 8
    mem_words = 4
    pc_bits = 7
    fetch_bits = 8
    accumulator = True

    def _define_instructions(self):
        width = self.word_bits

        def make_imm_exec(op):
            def execute(state, operands):
                imm = bits.truncate(
                    bits.sign_extend(operands[0], 4), width
                )
                result, _ = alu_result(op, state.acc, imm, width)
                state.set_acc(result)
                state.advance_pc(1)
            return execute

        def make_mem_exec(op):
            def execute(state, operands):
                value = state.read_mem(operands[0])
                result, _ = alu_result(op, state.acc, value, width)
                state.set_acc(result)
                state.advance_pc(1)
            return execute

        for op, base in _ALU_OPS.items():
            self._add(InstructionSpec(
                mnemonic=base + "i",
                operands=(imm_operand(width=4),),
                size=1,
                encode_fn=self._make_imm_encoder(op),
                execute_fn=make_imm_exec(op),
                iclass=InstrClass.ALU,
                description=f"acc <- acc {base} sext(imm4)",
            ))
            self._add(InstructionSpec(
                mnemonic=base,
                operands=(memaddr_operand(self.mem_words),),
                size=1,
                encode_fn=self._make_mem_encoder(op),
                execute_fn=make_mem_exec(op),
                iclass=InstrClass.ALU,
                description=f"acc <- acc {base} mem[addr]",
            ))

        def exec_load(state, operands):
            state.set_acc(state.read_mem(operands[0]))
            state.advance_pc(1)

        def exec_store(state, operands):
            state.write_mem(operands[0], state.acc)
            state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="load",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0111_0000 | (ops[0] & 0b11)]),
            execute_fn=exec_load,
            iclass=InstrClass.MEMORY,
            description="acc <- mem[addr] (addr 0 reads IPORT)",
        ))
        self._add(InstructionSpec(
            mnemonic="store",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0111_1000 | (ops[0] & 0b11)]),
            execute_fn=exec_store,
            iclass=InstrClass.MEMORY,
            description="mem[addr] <- acc (addr 1 drives OPORT)",
        ))

        def exec_brn(state, operands):
            if state.acc_negative():
                state.branch_to(operands[0])
            else:
                state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="brn",
            operands=(target_operand(self.pc_bits),),
            size=1,
            encode_fn=lambda ops: bytes([0b1000_0000 | (ops[0] & 0x7F)]),
            execute_fn=exec_brn,
            iclass=InstrClass.BRANCH,
            description="if acc MSB: PC <- target",
        ))

        def exec_ldb(state, operands):
            # The decoder flag is architecturally visible for exactly one
            # cycle; the functional model folds both cycles into one step.
            state.load_byte_pending = True
            state.set_acc(operands[0])
            state.load_byte_pending = False
            state.advance_pc(2)

        self._add(InstructionSpec(
            mnemonic="ldb",
            operands=(imm_operand(name="imm8", width=8, signed=True),),
            size=2,
            encode_fn=lambda ops: bytes(
                [LOAD_BYTE_OPCODE, bits.truncate(ops[0], 8)]
            ),
            execute_fn=exec_ldb,
            iclass=InstrClass.ALU,
            feature=None,
            description="acc <- imm8 (two-byte LOAD BYTE, Figure 2b)",
        ))

    def _make_imm_encoder(self, op):
        def encode(operands):
            imm = bits.truncate(operands[0], 4)
            return bytes([0b0100_0000 | (op << 4) | imm])
        return encode

    def _make_mem_encoder(self, op):
        def encode(operands):
            return bytes([(op << 4) | (operands[0] & 0b11)])
        return encode

    def decode(self, code, offset=0):
        first = decode_helper(code, offset, 1, self.name)[0]
        if first == LOAD_BYTE_OPCODE:
            raw = decode_helper(code, offset, 2, self.name)
            return DecodedInstruction(
                spec=self.specs["ldb"], operands=(raw[1],),
                address=offset, raw=raw,
            )
        raw = bytes([first])
        if first & 0x80:
            spec, ops = self.specs["brn"], (first & 0x7F,)
        elif first & 0x40:
            op = bits.get_field(first, 5, 4)
            if op == OP_TRANSFER:
                if bits.bit(first, 2):
                    raise DecodeError(
                        f"{self.name}: undefined opcode byte {first:#04x}"
                    )
                mnem = "store" if bits.bit(first, 3) else "load"
                spec, ops = self.specs[mnem], (first & 0b11,)
            else:
                spec, ops = self.specs[_ALU_OPS[op] + "i"], (first & 0x0F,)
        else:
            op = bits.get_field(first, 5, 4)
            if op == OP_TRANSFER or (first & 0b1100):
                raise DecodeError(
                    f"{self.name}: undefined opcode byte {first:#04x}"
                )
            spec, ops = self.specs[_ALU_OPS[op]], (first & 0b11,)
        return DecodedInstruction(spec=spec, operands=ops, address=offset, raw=raw)
