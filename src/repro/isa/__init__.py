"""Instruction-set architectures of the FlexiCore family.

This package defines, as data plus small semantic functions, every ISA the
paper fabricates or explores:

- :mod:`repro.isa.flexicore4` -- the 4-bit base ISA of Figure 2a.
- :mod:`repro.isa.flexicore8` -- the 8-bit base ISA of Figure 2b.
- :mod:`repro.isa.extended`   -- the feature-gated extended accumulator ISA
  of Section 6.1 (FlexiCore4+ and the "revised" operation set).
- :mod:`repro.isa.loadstore`  -- the two-operand load-store ISA of
  Section 6.2.

Use :func:`repro.isa.registry.get_isa` to look an ISA up by name.
"""

from repro.isa.model import (
    ISA,
    DecodedInstruction,
    InstructionSpec,
    OperandKind,
    OperandSpec,
)
from repro.isa.state import CoreState
from repro.isa.errors import (
    DecodeError,
    EncodeError,
    IsaError,
    OperandRangeError,
)
from repro.isa.registry import available_isas, get_isa

__all__ = [
    "ISA",
    "CoreState",
    "DecodedInstruction",
    "DecodeError",
    "EncodeError",
    "InstructionSpec",
    "IsaError",
    "OperandKind",
    "OperandSpec",
    "OperandRangeError",
    "available_isas",
    "get_isa",
]
