"""Architectural state of a FlexiCore-family core.

The state object is deliberately ISA-agnostic: it carries the union of the
architectural state used by any of the ISAs in this package (accumulator,
carry flag, return-address register, data memory / register file).  Each
ISA's semantic functions only touch the parts its specification defines.

IO is memory-mapped in the accumulator ISAs (IPORT at data address 0,
OPORT at data address 1 -- Section 3.3) and instruction-based in the
load-store ISA.  Both paths funnel through :meth:`read_input` /
:meth:`write_output`, which delegate to pluggable callables so simulators
can attach arbitrary peripherals.
"""

from repro.isa import bits

#: Data-memory address that reads from the input bus (Section 3.3).
IPORT_ADDR = 0
#: Data-memory address that writes to the output bus (Section 3.3).
OPORT_ADDR = 1


class CoreState:
    """Architectural state for one core.

    Parameters
    ----------
    width:
        Datapath width in bits (4 or 8).
    mem_words:
        Number of data-memory words (8 for FlexiCore4, 4 for FlexiCore8,
        16 with the doubled-memory DSE feature; 8 registers for the
        load-store ISA).
    pc_bits:
        Width of the program counter (7 in every fabricated FlexiCore).
    """

    def __init__(self, width=4, mem_words=8, pc_bits=7):
        self.width = width
        self.mem_words = mem_words
        self.pc_bits = pc_bits
        # Plain attributes, not properties: the semantic functions read
        # these once or twice per executed instruction, and the widths
        # never change after construction.
        self.word_mask = bits.mask(width)
        self.pc_mask = bits.mask(pc_bits)
        self.acc = 0
        self.pc = 0
        self.carry = 0
        self.retaddr = 0
        self.mem = [0] * mem_words
        self.halted = False
        #: Stateful 'load byte' decoder flag of FlexiCore8 (Section 3.4).
        self.load_byte_pending = False
        # IO hooks; replaced by the simulator when peripherals are attached.
        self.input_fn = lambda: 0
        self.output_fn = lambda value: None
        # Lightweight counters the semantics update; the simulator owns
        # richer statistics.
        self.io_reads = 0
        self.io_writes = 0

    # ------------------------------------------------------------------
    # Register/memory access helpers used by semantic functions.
    # ------------------------------------------------------------------

    def set_acc(self, value):
        self.acc = value & self.word_mask

    def acc_negative(self):
        """MSB of the accumulator -- the base ISA's branch condition."""
        return bits.msb(self.acc, self.width) == 1

    def acc_zero(self):
        return self.acc == 0

    def read_mem(self, addr):
        """Read data memory; address 0 is the memory-mapped input port."""
        addr %= self.mem_words
        if addr == IPORT_ADDR:
            self.io_reads += 1
            return self.read_input()
        return self.mem[addr]

    def write_mem(self, addr, value):
        """Write data memory; address 1 is the memory-mapped output port.

        The OPORT register is also backed by memory word 1 so software can
        read back the last value it emitted.  Writes to the IPORT address
        update the backing word but are never observable through reads
        (reads of address 0 always sample the input bus).
        """
        addr %= self.mem_words
        value &= self.word_mask
        self.mem[addr] = value
        if addr == OPORT_ADDR:
            self.write_output(value)

    # Register-file view used by the load-store ISA: plain words with no
    # memory-mapped IO (that ISA has explicit IN/OUT instructions).
    def read_reg(self, index):
        return self.mem[index % self.mem_words]

    def write_reg(self, index, value):
        self.mem[index % self.mem_words] = value & self.word_mask

    def read_input(self):
        return self.input_fn() & self.word_mask

    def write_output(self, value):
        self.io_writes += 1
        self.output_fn(value & self.word_mask)

    # ------------------------------------------------------------------

    def advance_pc(self, amount=1):
        self.pc = (self.pc + amount) & self.pc_mask

    def branch_to(self, target):
        self.pc = target & self.pc_mask

    def reset(self):
        """Return the core to its power-on state (memory cleared)."""
        self.acc = 0
        self.pc = 0
        self.carry = 0
        self.retaddr = 0
        self.mem = [0] * self.mem_words
        self.halted = False
        self.load_byte_pending = False
        self.io_reads = 0
        self.io_writes = 0

    def snapshot(self):
        """Immutable summary of the state, handy for tests and tracing."""
        return {
            "acc": self.acc,
            "pc": self.pc,
            "carry": self.carry,
            "retaddr": self.retaddr,
            "mem": tuple(self.mem),
            "halted": self.halted,
        }

    def __repr__(self):
        return (
            f"CoreState(width={self.width}, pc={self.pc:#04x}, "
            f"acc={self.acc:#x}, carry={self.carry}, mem={self.mem})"
        )
