"""Declarative instruction-set model.

Every FlexiCore-family ISA is expressed as a set of
:class:`InstructionSpec` objects.  A spec bundles

- the assembly *mnemonic* and its operand signature,
- an *encode* function producing the instruction bytes,
- an *execute* function implementing the semantics against a
  :class:`repro.isa.state.CoreState`, and
- classification metadata (instruction class, hardware features required)
  used by the code-size and design-space-exploration analyses.

The assembler, disassembler, functional simulator and DSE models all drive
off this single description, so an ISA variant is defined exactly once.
"""

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.isa import bits
from repro.isa.errors import DecodeError, EncodeError, OperandRangeError


class OperandKind(enum.Enum):
    """What an instruction operand denotes, for parsing and validation."""

    IMM = "imm"          # immediate literal (width set per-spec)
    MEMADDR = "memaddr"  # data-memory address
    TARGET = "target"    # branch/call target (program address, page-local)
    SHAMT = "shamt"      # shift amount
    REG = "reg"          # register index (load-store ISA)
    MASK = "mask"        # nzp branch-condition mask


class InstrClass(enum.Enum):
    """Coarse classification used by statistics and the DSE models."""

    ALU = "alu"
    MEMORY = "memory"
    BRANCH = "branch"
    CONTROL = "control"   # call/ret/nop/halt
    IO = "io"             # explicit IN/OUT (load-store ISA only)


@dataclass(frozen=True)
class OperandSpec:
    """One operand slot: its kind, valid range, and signedness."""

    kind: OperandKind
    name: str
    lo: int
    hi: int
    signed: bool = False

    def validate(self, mnemonic, value):
        if not isinstance(value, int):
            raise EncodeError(
                f"{mnemonic}: operand '{self.name}' must be an int, "
                f"got {value!r}"
            )
        if not self.lo <= value <= self.hi:
            raise OperandRangeError(mnemonic, self.name, value, self.lo, self.hi)


@dataclass(frozen=True)
class InstructionSpec:
    """Complete description of one instruction."""

    mnemonic: str
    operands: Tuple[OperandSpec, ...]
    size: int  # size in instruction-memory bytes
    encode_fn: Callable[[Tuple[int, ...]], bytes]
    execute_fn: Callable[..., None]  # (state, operands) -> None
    iclass: InstrClass
    #: DSE feature this instruction requires (None = base hardware).
    feature: Optional[str] = None
    description: str = ""

    def encode(self, operands):
        if len(operands) != len(self.operands):
            raise EncodeError(
                f"{self.mnemonic}: expected {len(self.operands)} operands, "
                f"got {len(operands)}"
            )
        canonical = []
        for spec, value in zip(self.operands, operands):
            spec.validate(self.mnemonic, value)
            canonical.append(value)
        return self.encode_fn(tuple(canonical))


@dataclass(frozen=True)
class DecodedInstruction:
    """Result of decoding instruction bytes at one program address."""

    spec: InstructionSpec
    operands: Tuple[int, ...]
    address: int  # page-local byte address of the first byte
    raw: bytes

    @property
    def mnemonic(self):
        return self.spec.mnemonic

    @property
    def size(self):
        return self.spec.size

    def text(self):
        """Render as assembly text."""
        if not self.operands:
            return self.mnemonic
        rendered = []
        for spec, value in zip(self.spec.operands, self.operands):
            rendered.append(str(value))
        return f"{self.mnemonic} " + ", ".join(rendered)


def imm_operand(name="imm", width=4, signed=True):
    """Immediate operand accepting the signed *or* unsigned encodings of a
    ``width``-bit field (e.g. ``addi -3`` and ``addi 13`` both assemble)."""
    return OperandSpec(
        OperandKind.IMM, name,
        lo=-(1 << (width - 1)) if signed else 0,
        hi=bits.mask(width),
        signed=signed,
    )


def memaddr_operand(words, name="addr"):
    return OperandSpec(OperandKind.MEMADDR, name, lo=0, hi=words - 1)


def target_operand(pc_bits=7, name="target"):
    return OperandSpec(OperandKind.TARGET, name, lo=0, hi=bits.mask(pc_bits))


def shamt_operand(hi, name="shamt"):
    return OperandSpec(OperandKind.SHAMT, name, lo=1, hi=hi)


def reg_operand(count, name="reg"):
    return OperandSpec(OperandKind.REG, name, lo=0, hi=count - 1)


def mask_operand(name="mask"):
    return OperandSpec(OperandKind.MASK, name, lo=1, hi=7)


class ISA:
    """An instruction-set architecture: a named set of instruction specs.

    Subclasses populate :attr:`specs` and set the machine parameters used
    to size :class:`~repro.isa.state.CoreState`.
    """

    #: Unique registry name, e.g. ``"flexicore4"``.
    name = "abstract"
    #: Datapath width in bits.
    word_bits = 4
    #: Data-memory words (register count for the load-store ISA).
    mem_words = 8
    #: Program-counter width; all FlexiCores use 7 (128-byte pages).
    pc_bits = 7
    #: Width of the program-memory bus needed to fetch one unit per cycle.
    fetch_bits = 8
    #: True for accumulator ISAs (single-operand instructions).
    accumulator = True

    def __init__(self):
        self.specs: Dict[str, InstructionSpec] = {}
        self._define_instructions()

    # -- subclass hook --------------------------------------------------

    def _define_instructions(self):
        raise NotImplementedError

    def _add(self, spec):
        if spec.mnemonic in self.specs:
            raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
        self.specs[spec.mnemonic] = spec

    # -- public API ------------------------------------------------------

    def mnemonics(self):
        return sorted(self.specs)

    def spec(self, mnemonic):
        try:
            return self.specs[mnemonic]
        except KeyError:
            raise EncodeError(
                f"{self.name}: unknown mnemonic '{mnemonic}'"
            ) from None

    def has(self, mnemonic):
        return mnemonic in self.specs

    def encode(self, mnemonic, operands=()):
        """Encode one instruction to bytes."""
        return self.spec(mnemonic).encode(tuple(operands))

    def decode(self, code, offset=0):
        """Decode the instruction starting at ``code[offset]``.

        Returns a :class:`DecodedInstruction`.  Raises :class:`DecodeError`
        for byte patterns no instruction produces.
        """
        raise NotImplementedError

    def execute(self, state, decoded):
        """Run one decoded instruction's semantics.

        The execute function is responsible for updating the PC (semantics
        first call :meth:`CoreState.advance_pc` with the instruction size,
        then branches overwrite it).
        """
        decoded.spec.execute_fn(state, decoded.operands)

    def new_state(self):
        from repro.isa.state import CoreState

        return CoreState(
            width=self.word_bits,
            mem_words=self.mem_words,
            pc_bits=self.pc_bits,
        )

    def instruction_bits(self, mnemonic):
        """Size of one instruction in bits, for code-size studies."""
        return self.spec(mnemonic).size * 8

    def __repr__(self):
        return f"<ISA {self.name}: {len(self.specs)} instructions>"


def decode_helper(code, offset, size, name):
    """Slice ``size`` bytes at ``offset``, raising DecodeError on overrun."""
    if offset + size > len(code):
        raise DecodeError(
            f"{name}: truncated instruction at offset {offset}"
        )
    return bytes(code[offset:offset + size])
