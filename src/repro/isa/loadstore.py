"""The two-operand load-store ISA of the Section 6.2 operand study.

Where the accumulator machines route every value through a single
architectural register, the load-store machine treats the eight-word data
memory as a register file (r0..r7) and encodes two operands per
instruction.  Instructions are 16 bits wide -- which is exactly why, when
the program-memory bus is restricted to FlexiCore's 8 bits, this ISA
cannot fetch an instruction per cycle (Figure 13's "(Bus)" case).

IO is performed with explicit ``in``/``out`` instructions (there is no
memory to map ports onto once the memory *is* the register file).

Encoding (16 bits, stored big-endian so the opcode arrives first on a
byte-serial bus):

=======================================  ===========================
``0000 oooo 0rrr 0sss``                  R-type: rd op rs
``01oo orrr iiiiiiii``                   I-type: rd op imm8
``001n zprr r0tt ttttt`` (fields below)  branch: br nzp, rs, target
``1000 0000 0ttt tttt``                  call target
``1000 0001 00000000``                   ret
``1000 0010 / 1000 0011``                nop / halt
=======================================  ===========================

The branch packs ``001 | nzp(3) | rs(3) | target(7)``.
"""

from repro.isa import bits
from repro.isa.errors import DecodeError
from repro.isa.model import (
    ISA,
    DecodedInstruction,
    InstrClass,
    InstructionSpec,
    decode_helper,
    imm_operand,
    mask_operand,
    reg_operand,
    shamt_operand,
    target_operand,
)

# R-type minor opcodes ([11:8] of the instruction word).
_R_OPS = (
    "add", "adc", "sub", "swb", "and", "or", "xor", "mov",
    "xch", "mull", "mulh", "neg", "in", "out", "lsri", "asri",
)
# I-type minor opcodes ([13:11]).
_I_OPS = ("movi", "addi", "andi", "ori", "xori", "adci")


def _pack(hi, lo):
    return bytes([hi & 0xFF, lo & 0xFF])


class LoadStore(ISA):
    """Two-operand load-store ISA with the revised operation set."""

    name = "loadstore"
    word_bits = 4
    mem_words = 8  # the register file
    pc_bits = 7
    fetch_bits = 16
    accumulator = False

    def __init__(self, width=4):
        self.word_bits = width
        super().__init__()

    def _define_instructions(self):
        width = self.word_bits

        # -- R-type -------------------------------------------------------
        def r_encoder(minor):
            def encode(ops):
                rd = ops[0]
                rs = ops[1] if len(ops) > 1 else 0
                return _pack(minor, ((rd & 0b111) << 4) | (rs & 0b111))
            return encode

        def add_like(fn, set_carry=True):
            def execute(state, operands):
                rd, rs = operands
                result, carry = fn(
                    state.read_reg(rd), state.read_reg(rs), state, width
                )
                state.write_reg(rd, result)
                if set_carry:
                    state.carry = carry
                state.advance_pc(2)
            return execute

        def logic_like(fn):
            def execute(state, operands):
                rd, rs = operands
                state.write_reg(
                    rd,
                    fn(state.read_reg(rd), state.read_reg(rs)) & state.word_mask,
                )
                state.advance_pc(2)
            return execute

        r_semantics = {
            "add": add_like(lambda a, b, s, w: bits.add_with_carry(a, b, 0, w)),
            "adc": add_like(
                lambda a, b, s, w: bits.add_with_carry(a, b, s.carry, w)
            ),
            "sub": add_like(self._sub_fn),
            "swb": add_like(self._swb_fn),
            "and": logic_like(lambda a, b: a & b),
            "or": logic_like(lambda a, b: a | b),
            "xor": logic_like(lambda a, b: a ^ b),
            "mov": logic_like(lambda a, b: b),
            "mull": logic_like(lambda a, b: a * b),
            "mulh": logic_like(lambda a, b: (a * b) >> width),
        }
        r_operands = (reg_operand(self.mem_words, "rd"),
                      reg_operand(self.mem_words, "rs"))
        for minor, mnem in enumerate(_R_OPS):
            if mnem in r_semantics:
                self._add(InstructionSpec(
                    mnemonic=mnem,
                    operands=r_operands,
                    size=2,
                    encode_fn=r_encoder(minor),
                    execute_fn=r_semantics[mnem],
                    iclass=InstrClass.ALU if mnem != "mov"
                    else InstrClass.MEMORY,
                    description=f"rd <- rd {mnem} rs",
                ))

        def exec_xch(state, operands):
            rd, rs = operands
            a, b = state.read_reg(rd), state.read_reg(rs)
            state.write_reg(rd, b)
            state.write_reg(rs, a)
            state.advance_pc(2)

        self._add(InstructionSpec(
            mnemonic="xch",
            operands=r_operands,
            size=2,
            encode_fn=r_encoder(_R_OPS.index("xch")),
            execute_fn=exec_xch,
            iclass=InstrClass.MEMORY,
            description="swap rd and rs",
        ))

        def exec_neg(state, operands):
            state.write_reg(operands[0], -state.read_reg(operands[0]))
            state.advance_pc(2)

        self._add(InstructionSpec(
            mnemonic="neg",
            operands=(reg_operand(self.mem_words, "rd"),),
            size=2,
            encode_fn=r_encoder(_R_OPS.index("neg")),
            execute_fn=exec_neg,
            iclass=InstrClass.ALU,
            description="rd <- -rd",
        ))

        def exec_in(state, operands):
            state.io_reads += 1
            state.write_reg(operands[0], state.read_input())
            state.advance_pc(2)

        def exec_out(state, operands):
            state.write_output(state.read_reg(operands[0]))
            state.advance_pc(2)

        self._add(InstructionSpec(
            mnemonic="in",
            operands=(reg_operand(self.mem_words, "rd"),),
            size=2,
            encode_fn=r_encoder(_R_OPS.index("in")),
            execute_fn=exec_in,
            iclass=InstrClass.IO,
            description="rd <- input bus",
        ))
        self._add(InstructionSpec(
            mnemonic="out",
            operands=(reg_operand(self.mem_words, "rs"),),
            size=2,
            encode_fn=lambda ops: _pack(_R_OPS.index("out"), ops[0] & 0b111),
            execute_fn=exec_out,
            iclass=InstrClass.IO,
            description="output bus <- rs",
        ))

        def exec_lsri(state, operands):
            rd, shamt = operands
            state.write_reg(rd, state.read_reg(rd) >> shamt)
            state.advance_pc(2)

        def exec_asri(state, operands):
            rd, shamt = operands
            signed = bits.sign_extend(state.read_reg(rd), width)
            state.write_reg(rd, signed >> shamt)
            state.advance_pc(2)

        shift_operands = (reg_operand(self.mem_words, "rd"),
                          shamt_operand(width - 1))
        self._add(InstructionSpec(
            mnemonic="lsri",
            operands=shift_operands,
            size=2,
            encode_fn=r_encoder(_R_OPS.index("lsri")),
            execute_fn=exec_lsri,
            iclass=InstrClass.ALU,
            description="rd <- rd >> shamt (logical)",
        ))
        self._add(InstructionSpec(
            mnemonic="asri",
            operands=shift_operands,
            size=2,
            encode_fn=r_encoder(_R_OPS.index("asri")),
            execute_fn=exec_asri,
            iclass=InstrClass.ALU,
            description="rd <- rd >> shamt (arithmetic)",
        ))

        # -- I-type --------------------------------------------------------
        def i_encoder(minor):
            def encode(ops):
                rd, imm = ops
                hi = 0b0100_0000 | (minor << 3) | (rd & 0b111)
                return _pack(hi, bits.truncate(imm, 8))
            return encode

        def i_exec(fn, uses_carry=False, sets_carry=False):
            def execute(state, operands):
                rd, imm = operands
                imm = bits.truncate(imm, width)
                value = state.read_reg(rd)
                result, carry = fn(value, imm, state.carry, width)
                state.write_reg(rd, result)
                if sets_carry:
                    state.carry = carry
                state.advance_pc(2)
            return execute

        i_semantics = {
            "movi": (lambda a, b, c, w: (b, 0), False),
            "addi": (lambda a, b, c, w: bits.add_with_carry(a, b, 0, w), True),
            "andi": (lambda a, b, c, w: (a & b, 0), False),
            "ori": (lambda a, b, c, w: (a | b, 0), False),
            "xori": (lambda a, b, c, w: (a ^ b, 0), False),
            "adci": (lambda a, b, c, w: bits.add_with_carry(a, b, c, w), True),
        }
        for minor, mnem in enumerate(_I_OPS):
            fn, sets_carry = i_semantics[mnem]
            self._add(InstructionSpec(
                mnemonic=mnem,
                operands=(reg_operand(self.mem_words, "rd"),
                          imm_operand(name="imm8", width=8)),
                size=2,
                encode_fn=i_encoder(minor),
                execute_fn=i_exec(fn, sets_carry=sets_carry),
                iclass=InstrClass.ALU,
                description=f"rd <- rd {mnem} imm",
            ))

        # -- branch / call / ret / misc -------------------------------------
        def exec_br(state, operands):
            nzp, rs, target = operands
            value = state.read_reg(rs)
            negative = bits.msb(value, width) == 1
            zero = value == 0
            positive = not negative and not zero
            taken = bool(
                ((nzp & 0b100) and negative)
                or ((nzp & 0b010) and zero)
                or ((nzp & 0b001) and positive)
            )
            if taken:
                state.branch_to(target)
            else:
                state.advance_pc(2)

        def br_encode(ops):
            nzp, rs, target = ops
            word = (0b001 << 13) | ((nzp & 0b111) << 10) \
                | ((rs & 0b111) << 7) | (target & 0x7F)
            return _pack(word >> 8, word & 0xFF)

        self._add(InstructionSpec(
            mnemonic="br",
            operands=(mask_operand(), reg_operand(self.mem_words, "rs"),
                      target_operand(self.pc_bits)),
            size=2,
            encode_fn=br_encode,
            execute_fn=exec_br,
            iclass=InstrClass.BRANCH,
            description="branch on nzp condition of rs",
        ))

        def exec_call(state, operands):
            state.retaddr = (state.pc + 2) & state.pc_mask
            state.branch_to(operands[0])

        self._add(InstructionSpec(
            mnemonic="call",
            operands=(target_operand(self.pc_bits),),
            size=2,
            encode_fn=lambda ops: _pack(0b1000_0000, ops[0] & 0x7F),
            execute_fn=exec_call,
            iclass=InstrClass.CONTROL,
            description="retaddr <- PC+2; PC <- target",
        ))
        self._add(InstructionSpec(
            mnemonic="ret",
            operands=(),
            size=2,
            encode_fn=lambda ops: _pack(0b1000_0001, 0),
            execute_fn=lambda s, o: s.branch_to(s.retaddr),
            iclass=InstrClass.CONTROL,
            description="PC <- retaddr",
        ))
        self._add(InstructionSpec(
            mnemonic="nop",
            operands=(),
            size=2,
            encode_fn=lambda ops: _pack(0b1000_0010, 0),
            execute_fn=lambda s, o: s.advance_pc(2),
            iclass=InstrClass.CONTROL,
            description="no operation",
        ))

        def exec_halt(state, operands):
            state.halted = True
            state.advance_pc(2)

        self._add(InstructionSpec(
            mnemonic="halt",
            operands=(),
            size=2,
            encode_fn=lambda ops: _pack(0b1000_0011, 0),
            execute_fn=exec_halt,
            iclass=InstrClass.CONTROL,
            description="stop the simulator (test convenience)",
        ))

    # -- carry-style helpers --------------------------------------------

    @staticmethod
    def _sub_fn(a, b, state, width):
        result, borrow = bits.sub_with_borrow(a, b, 0, width)
        return result, 1 - borrow

    @staticmethod
    def _swb_fn(a, b, state, width):
        result, borrow = bits.sub_with_borrow(a, b, 1 - state.carry, width)
        return result, 1 - borrow

    # ------------------------------------------------------------------

    def decode(self, code, offset=0):
        raw = decode_helper(code, offset, 2, self.name)
        hi, lo = raw[0], raw[1]
        word = (hi << 8) | lo

        def make(mnem, *ops):
            if mnem not in self.specs:
                raise DecodeError(f"{self.name}: {mnem} not enabled")
            return DecodedInstruction(
                spec=self.specs[mnem], operands=tuple(ops),
                address=offset, raw=raw,
            )

        top = hi >> 6
        if top == 0b00 and not (hi & 0b0010_0000):
            if hi & 0b0001_0000:
                raise DecodeError(
                    f"{self.name}: undefined instruction {word:#06x}"
                )
            minor = hi & 0x0F
            mnem = _R_OPS[minor]
            rd = bits.get_field(lo, 6, 4)
            rs = bits.get_field(lo, 2, 0)
            if mnem in ("neg", "in"):
                return make(mnem, rd)
            if mnem == "out":
                return make(mnem, rs)
            if mnem in ("lsri", "asri"):
                if not 1 <= rs <= self.word_bits - 1:
                    raise DecodeError(f"{self.name}: bad shamt {rs}")
                return make(mnem, rd, rs)
            return make(mnem, rd, rs)
        if top == 0b01:
            minor = bits.get_field(hi, 5, 3)
            if minor >= len(_I_OPS):
                raise DecodeError(
                    f"{self.name}: undefined I-type minor {minor}"
                )
            return make(_I_OPS[minor], hi & 0b111, lo)
        if (hi >> 5) == 0b001:
            nzp = bits.get_field(word, 12, 10)
            rs = bits.get_field(word, 9, 7)
            target = word & 0x7F
            if nzp == 0:
                raise DecodeError(f"{self.name}: branch-never {word:#06x}")
            return make("br", nzp, rs, target)
        if hi == 0b1000_0000:
            return make("call", lo & 0x7F)
        if hi == 0b1000_0001:
            return make("ret")
        if hi == 0b1000_0010:
            return make("nop")
        if hi == 0b1000_0011:
            return make("halt")
        raise DecodeError(f"{self.name}: undefined instruction {word:#06x}")
