"""Exceptions raised by the ISA layer."""


class IsaError(Exception):
    """Base class for all ISA-level errors."""


class EncodeError(IsaError):
    """An instruction could not be encoded (bad mnemonic or operands)."""


class DecodeError(IsaError):
    """A byte sequence does not decode to a valid instruction."""


class OperandRangeError(EncodeError):
    """An operand value is outside the range its field can represent."""

    def __init__(self, mnemonic, operand_name, value, lo, hi):
        self.mnemonic = mnemonic
        self.operand_name = operand_name
        self.value = value
        self.lo = lo
        self.hi = hi
        super().__init__(
            f"{mnemonic}: operand '{operand_name}'={value} outside "
            f"[{lo}, {hi}]"
        )
