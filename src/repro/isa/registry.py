"""Lookup of ISA instances by name.

Names accepted by :func:`get_isa`:

- ``"flexicore4"``, ``"flexicore8"`` -- the fabricated base ISAs.
- ``"flexicore4plus"`` -- the manufactured extended die (shifter + flags).
- ``"extacc"`` -- the full revised accumulator ISA of Section 6.1.
- ``"extacc[base]"`` / ``"extacc[f1+f2+...]"`` -- any feature subset.
- ``"loadstore"`` -- the two-operand ISA of Section 6.2.
"""

from repro.isa.extended import (
    ALL_FEATURES,
    FLEXICORE4PLUS_FEATURES,
    FULL_FEATURES,
    ExtendedAccumulator,
)
from repro.isa.flexicore4 import FlexiCore4
from repro.isa.flexicore8 import FlexiCore8
from repro.isa.loadstore import LoadStore

_CACHE = {}


def available_isas():
    """Names of the commonly used ISA variants."""
    return (
        "flexicore4", "flexicore8", "flexicore4plus", "extacc",
        "extacc[base]", "loadstore",
    )


def get_isa(name):
    """Return a (cached) ISA instance for ``name``."""
    if name in _CACHE:
        return _CACHE[name]
    isa = _build(name)
    _CACHE[name] = isa
    return isa


def _build(name):
    if name == "flexicore4":
        return FlexiCore4()
    if name == "flexicore8":
        return FlexiCore8()
    if name == "flexicore4plus":
        return ExtendedAccumulator(features=FLEXICORE4PLUS_FEATURES)
    if name == "extacc":
        return ExtendedAccumulator(features=FULL_FEATURES)
    if name == "loadstore":
        return LoadStore()
    if name.startswith("extacc[") and name.endswith("]"):
        body = name[len("extacc["):-1]
        if body == "base":
            features = frozenset()
        elif body == "full":
            features = FULL_FEATURES
        else:
            features = frozenset(part for part in body.split("+") if part)
        unknown = features - set(ALL_FEATURES)
        if unknown:
            raise KeyError(f"unknown features in '{name}': {sorted(unknown)}")
        return ExtendedAccumulator(features=features)
    raise KeyError(f"unknown ISA '{name}'")
