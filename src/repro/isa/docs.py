"""ISA reference generation: render any ISA's instruction table as text.

Produces the Figure 2-style documentation for every ISA variant,
directly from the single source of truth (the InstructionSpec table), so
the rendered reference can never drift from the implementation.
"""

from repro.isa.model import OperandKind


def _operand_signature(spec):
    parts = []
    for operand in spec.operands:
        kind = operand.kind
        if kind == OperandKind.IMM:
            parts.append(f"{operand.name}[{operand.lo}..{operand.hi}]")
        elif kind == OperandKind.MEMADDR:
            parts.append(f"addr[0..{operand.hi}]")
        elif kind == OperandKind.TARGET:
            parts.append("target")
        elif kind == OperandKind.SHAMT:
            parts.append(f"shamt[1..{operand.hi}]")
        elif kind == OperandKind.REG:
            parts.append(f"r0..r{operand.hi}")
        elif kind == OperandKind.MASK:
            parts.append("nzp")
    return ", ".join(parts)


def _example_encoding(isa, spec):
    operands = []
    for operand in spec.operands:
        if operand.kind == OperandKind.TARGET:
            operands.append(0)
        else:
            operands.append(max(operand.lo, 1))
    encoded = spec.encode(tuple(operands))
    return " ".join(f"{byte:08b}" for byte in encoded)


def isa_reference(isa):
    """Render one ISA's full instruction listing."""
    lines = [
        f"ISA: {isa.name}",
        f"  datapath: {isa.word_bits} bits | data memory: "
        f"{isa.mem_words} words | PC: {isa.pc_bits} bits | "
        f"fetch unit: {isa.fetch_bits} bits | "
        f"{'accumulator' if isa.accumulator else 'load-store'} machine",
        "",
        f"{'mnemonic':<9} {'operands':<18} {'bytes':>5}  "
        f"{'example encoding':<18} description",
    ]
    for mnemonic in isa.mnemonics():
        spec = isa.spec(mnemonic)
        lines.append(
            f"{mnemonic:<9} {_operand_signature(spec):<18} "
            f"{spec.size:>5}  {_example_encoding(isa, spec):<18} "
            f"{spec.description}"
        )
    return "\n".join(lines)


def all_references():
    """References for the commonly used variants."""
    from repro.isa.registry import available_isas, get_isa

    return "\n\n".join(
        isa_reference(get_isa(name)) for name in available_isas()
    )
