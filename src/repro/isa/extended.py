"""The extended accumulator ISA of Section 6.1.

The paper's design-space exploration grows the base FlexiCore4 ISA with
seven independent hardware features and then settles on a "revised"
operation set (Add(i), Adc(i), Sub, Swb, And(i), Or(i), Xor(i), Neg, Xch,
Load, Store, Branch-nzp, Call, Ret, Asr(i), Lsr(i)).  This module models
that whole family as a single feature-gated ISA:

=============  =====================================================
Feature        Instructions / state it enables
=============  =====================================================
``adc``        ``adc``, ``adci``, ``swb`` + the carry flag
``shift``      ``lsri``, ``asri`` (the 4-bit barrel shifter)
``flags``      ``br`` with a 3-bit nzp condition mask
``mult``       ``mull``, ``mulh`` (4x4 hardware multiplier)
``xchg``       ``xch`` (accumulator/memory exchange)
``subr``       ``call``, ``ret`` + the 8-flip-flop return register
``fullalu``    ``and(i)``, ``or(i)``, ``sub``, ``neg``
``mem2x``      doubles the data memory to 16 words (area only)
=============  =====================================================

``FULL_FEATURES`` is the revised set the paper manufactures a variant of
(FlexiCore4+ carries ``shift`` + ``flags``).

Encoding.  The paper gives no binary encoding for FlexiCore4+, so we chose
one that keeps the byte-wide instruction bus (DESIGN.md):  the base
formats keep one-byte encodings, conditional branches and calls are two
bytes (condition byte + target byte), and the rarer extension operations
live behind a one-byte ``EXT`` prefix.  Code-size results therefore
reflect a real 8-bit-bus constraint rather than free-lunch encodings.

======================  ===========================================
``1ttttttt``            brn target (branch if accumulator MSB)
``01ooiiii``            addi / nandi / xori / andi imm4
``0011aaaa``            load addr
``0010aaaa``            store addr
``00010aaa``            add addr (memory operand)
``00011aaa``            xor addr
``00001nzp`` + target   br nzp, target   (nzp=000 encodes call)
``00000000..011``       nop / ret / neg / halt
``00000100`` + extbyte  EXT: shifts, adc/swb/sub, xch, mul, ...
======================  ===========================================
"""

from repro.isa import bits
from repro.isa.errors import DecodeError
from repro.isa.model import (
    ISA,
    DecodedInstruction,
    InstrClass,
    InstructionSpec,
    decode_helper,
    imm_operand,
    mask_operand,
    memaddr_operand,
    shamt_operand,
    target_operand,
)

#: All DSE features, in the order Figure 9 sweeps them.
ALL_FEATURES = (
    "adc", "shift", "flags", "mult", "xchg", "subr", "fullalu", "mem2x",
)

#: The revised operation set of Section 6.1 (multiplier and doubled
#: memory were rejected for their area cost).
FULL_FEATURES = frozenset(
    {"adc", "shift", "flags", "xchg", "subr", "fullalu"}
)

#: The extensions carried by the manufactured FlexiCore4+ die (Section 6.1:
#: "barrel shifter, branch condition flags").
FLEXICORE4PLUS_FEATURES = frozenset({"shift", "flags"})

_EXT_PREFIX = 0b0000_0100
# extbyte[7:4] opcode values for the EXT page.
_EXT_LSRI = 0x0
_EXT_ASRI = 0x1
_EXT_ADC = 0x2
_EXT_SWB = 0x3
_EXT_SUB = 0x4
_EXT_XCH = 0x5
_EXT_MULL = 0x6
_EXT_MULH = 0x7
_EXT_ADCI = 0x8
_EXT_AND = 0x9
_EXT_OR = 0xA
_EXT_NAND = 0xB
_EXT_ORI = 0xC

_EXT_BY_OP = {}  # opcode -> mnemonic, filled in during _define_instructions


def _nzp_taken(state, mask):
    """Evaluate a 3-bit nzp condition mask against the accumulator."""
    negative = state.acc_negative()
    zero = state.acc_zero()
    positive = not negative and not zero
    return bool(
        ((mask & 0b100) and negative)
        or ((mask & 0b010) and zero)
        or ((mask & 0b001) and positive)
    )


class ExtendedAccumulator(ISA):
    """Feature-gated extended accumulator ISA (Section 6.1).

    Parameters
    ----------
    features:
        Iterable of feature names from :data:`ALL_FEATURES`.  The empty
        set yields the base operation set (FlexiCore4 semantics under the
        extended encoding).
    width:
        Datapath width; the paper's DSE uses 4 bits.
    """

    name = "extacc"
    word_bits = 4
    pc_bits = 7
    fetch_bits = 8
    accumulator = True

    def __init__(self, features=FULL_FEATURES, width=4):
        features = frozenset(features)
        unknown = features - set(ALL_FEATURES)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")
        self.features = features
        self.word_bits = width
        self.mem_words = 16 if "mem2x" in features else 8
        self.name = self._build_name()
        super().__init__()

    def _build_name(self):
        if self.features == FULL_FEATURES:
            suffix = "full"
        elif not self.features:
            suffix = "base"
        else:
            suffix = "+".join(sorted(self.features))
        return f"extacc[{suffix}]"

    # ------------------------------------------------------------------

    def _define_instructions(self):
        width = self.word_bits
        feats = self.features

        def alu(update, iclass=InstrClass.ALU):
            """Wrap an acc-updating lambda into an execute function."""
            def execute(state, operands):
                update(state, operands)
                state.advance_pc(1)
            return execute

        # -- immediates (one byte) -------------------------------------
        def imm_spec(mnemonic, oo, fn, feature=None):
            self._add(InstructionSpec(
                mnemonic=mnemonic,
                operands=(imm_operand(width=width if width <= 4 else 4),),
                size=1,
                encode_fn=lambda ops, oo=oo: bytes(
                    [0b0100_0000 | (oo << 4) | bits.truncate(ops[0], 4)]
                ),
                execute_fn=fn,
                iclass=InstrClass.ALU,
                feature=feature,
                description=f"acc <- acc {mnemonic} imm4",
            ))

        def exec_addi(state, operands):
            imm = bits.truncate(operands[0], width)
            result, carry = bits.add_with_carry(state.acc, imm, 0, width)
            state.set_acc(result)
            state.carry = carry
            state.advance_pc(1)

        imm_spec("addi", 0b00, exec_addi)
        imm_spec("nandi", 0b01, alu(lambda s, o: s.set_acc(
            ~(s.acc & bits.truncate(o[0], width)))))
        imm_spec("xori", 0b10, alu(lambda s, o: s.set_acc(
            s.acc ^ bits.truncate(o[0], width))))
        if "fullalu" in feats:
            imm_spec("andi", 0b11, alu(lambda s, o: s.set_acc(
                s.acc & bits.truncate(o[0], width))), feature="fullalu")

        # -- loads/stores (one byte, 4-bit address field) ---------------
        self._add(InstructionSpec(
            mnemonic="load",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0011_0000 | (ops[0] & 0xF)]),
            execute_fn=alu(
                lambda s, o: s.set_acc(s.read_mem(o[0])), InstrClass.MEMORY
            ),
            iclass=InstrClass.MEMORY,
            description="acc <- mem[addr]",
        ))

        def exec_store(state, operands):
            state.write_mem(operands[0], state.acc)
            state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="store",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0010_0000 | (ops[0] & 0xF)]),
            execute_fn=exec_store,
            iclass=InstrClass.MEMORY,
            description="mem[addr] <- acc",
        ))

        # -- one-byte memory-operand ALU ops ----------------------------
        def exec_add(state, operands):
            value = state.read_mem(operands[0])
            result, carry = bits.add_with_carry(state.acc, value, 0, width)
            state.set_acc(result)
            state.carry = carry
            state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="add",
            operands=(memaddr_operand(min(self.mem_words, 8)),),
            size=1,
            encode_fn=lambda ops: bytes([0b0001_0000 | (ops[0] & 0b111)]),
            execute_fn=exec_add,
            iclass=InstrClass.ALU,
            description="acc <- acc + mem[addr], sets carry",
        ))
        self._add(InstructionSpec(
            mnemonic="xor",
            operands=(memaddr_operand(min(self.mem_words, 8)),),
            size=1,
            encode_fn=lambda ops: bytes([0b0001_1000 | (ops[0] & 0b111)]),
            execute_fn=alu(lambda s, o: s.set_acc(s.acc ^ s.read_mem(o[0]))),
            iclass=InstrClass.ALU,
            description="acc <- acc xor mem[addr]",
        ))

        # -- branches ----------------------------------------------------
        def exec_brn(state, operands):
            if state.acc_negative():
                state.branch_to(operands[0])
            else:
                state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="brn",
            operands=(target_operand(self.pc_bits),),
            size=1,
            encode_fn=lambda ops: bytes([0b1000_0000 | (ops[0] & 0x7F)]),
            execute_fn=exec_brn,
            iclass=InstrClass.BRANCH,
            description="if acc MSB: PC <- target (base one-byte branch)",
        ))

        if "flags" in feats:
            def exec_br(state, operands):
                nzp, target = operands
                if _nzp_taken(state, nzp):
                    state.branch_to(target)
                else:
                    state.advance_pc(2)

            self._add(InstructionSpec(
                mnemonic="br",
                operands=(mask_operand(), target_operand(self.pc_bits)),
                size=2,
                encode_fn=lambda ops: bytes(
                    [0b0000_1000 | (ops[0] & 0b111), ops[1] & 0x7F]
                ),
                execute_fn=exec_br,
                iclass=InstrClass.BRANCH,
                feature="flags",
                description="branch on nzp condition mask (two bytes)",
            ))

        if "subr" in feats:
            def exec_call(state, operands):
                state.retaddr = (state.pc + 2) & state.pc_mask
                state.branch_to(operands[0])

            def exec_ret(state, operands):
                state.branch_to(state.retaddr)

            self._add(InstructionSpec(
                mnemonic="call",
                operands=(target_operand(self.pc_bits),),
                size=2,
                encode_fn=lambda ops: bytes([0b0000_1000, ops[0] & 0x7F]),
                execute_fn=exec_call,
                iclass=InstrClass.CONTROL,
                feature="subr",
                description="retaddr <- PC+2; PC <- target",
            ))
            self._add(InstructionSpec(
                mnemonic="ret",
                operands=(),
                size=1,
                encode_fn=lambda ops: bytes([0b0000_0001]),
                execute_fn=lambda s, o: s.branch_to(s.retaddr),
                iclass=InstrClass.CONTROL,
                feature="subr",
                description="PC <- retaddr",
            ))

        # -- niladic one-byte ops ---------------------------------------
        self._add(InstructionSpec(
            mnemonic="nop",
            operands=(),
            size=1,
            encode_fn=lambda ops: bytes([0b0000_0000]),
            execute_fn=alu(lambda s, o: None, InstrClass.CONTROL),
            iclass=InstrClass.CONTROL,
            description="no operation",
        ))
        self._add(InstructionSpec(
            mnemonic="halt",
            operands=(),
            size=1,
            encode_fn=lambda ops: bytes([0b0000_0011]),
            execute_fn=self._exec_halt,
            iclass=InstrClass.CONTROL,
            description="stop the simulator (test convenience)",
        ))
        if "fullalu" in feats:
            self._add(InstructionSpec(
                mnemonic="neg",
                operands=(),
                size=1,
                encode_fn=lambda ops: bytes([0b0000_0010]),
                execute_fn=alu(lambda s, o: s.set_acc(-s.acc)),
                iclass=InstrClass.ALU,
                feature="fullalu",
                description="acc <- -acc (two's complement)",
            ))

        # -- EXT-page (two-byte) operations ------------------------------
        def ext_mem(mnemonic, opcode, fn, feature, description):
            def execute(state, operands):
                fn(state, operands[0])
                state.advance_pc(2)
            self._add(InstructionSpec(
                mnemonic=mnemonic,
                operands=(memaddr_operand(
                    self.mem_words if mnemonic == "xch" else
                    min(self.mem_words, 8)
                ),),
                size=2,
                encode_fn=lambda ops, opcode=opcode: bytes(
                    [_EXT_PREFIX, (opcode << 4) | (ops[0] & 0xF)]
                ),
                execute_fn=execute,
                iclass=InstrClass.ALU if mnemonic != "xch"
                else InstrClass.MEMORY,
                feature=feature,
                description=description,
            ))

        if "adc" in feats:
            def do_adc(state, addr):
                result, carry = bits.add_with_carry(
                    state.acc, state.read_mem(addr), state.carry, width
                )
                state.set_acc(result)
                state.carry = carry

            def do_swb(state, addr):
                result, borrow = bits.sub_with_borrow(
                    state.acc, state.read_mem(addr), 1 - state.carry, width
                )
                state.set_acc(result)
                state.carry = 1 - borrow

            ext_mem("adc", _EXT_ADC, do_adc, "adc",
                    "acc <- acc + mem[addr] + carry")
            ext_mem("swb", _EXT_SWB, do_swb, "adc",
                    "acc <- acc - mem[addr] - !carry")

            def exec_adci(state, operands):
                imm = bits.truncate(operands[0], width)
                result, carry = bits.add_with_carry(
                    state.acc, imm, state.carry, width
                )
                state.set_acc(result)
                state.carry = carry
                state.advance_pc(2)

            self._add(InstructionSpec(
                mnemonic="adci",
                operands=(imm_operand(width=4),),
                size=2,
                encode_fn=lambda ops: bytes(
                    [_EXT_PREFIX,
                     (_EXT_ADCI << 4) | bits.truncate(ops[0], 4)]
                ),
                execute_fn=exec_adci,
                iclass=InstrClass.ALU,
                feature="adc",
                description="acc <- acc + imm4 + carry",
            ))

        if "fullalu" in feats:
            def do_sub(state, addr):
                result, borrow = bits.sub_with_borrow(
                    state.acc, state.read_mem(addr), 0, width
                )
                state.set_acc(result)
                state.carry = 1 - borrow

            ext_mem("sub", _EXT_SUB, do_sub, "fullalu",
                    "acc <- acc - mem[addr], carry = !borrow")
            ext_mem("and", _EXT_AND,
                    lambda s, a: s.set_acc(s.acc & s.read_mem(a)),
                    "fullalu", "acc <- acc and mem[addr]")
            ext_mem("or", _EXT_OR,
                    lambda s, a: s.set_acc(s.acc | s.read_mem(a)),
                    "fullalu", "acc <- acc or mem[addr]")

            def exec_ori(state, operands):
                state.set_acc(state.acc | bits.truncate(operands[0], width))
                state.advance_pc(2)

            self._add(InstructionSpec(
                mnemonic="ori",
                operands=(imm_operand(width=4),),
                size=2,
                encode_fn=lambda ops: bytes(
                    [_EXT_PREFIX,
                     (_EXT_ORI << 4) | bits.truncate(ops[0], 4)]
                ),
                execute_fn=exec_ori,
                iclass=InstrClass.ALU,
                feature="fullalu",
                description="acc <- acc or imm4",
            ))

        # nand with a memory operand stays available (base completeness).
        ext_mem("nand", _EXT_NAND,
                lambda s, a: s.set_acc(~(s.acc & s.read_mem(a))),
                None, "acc <- acc nand mem[addr]")

        if "xchg" in feats:
            def do_xch(state, addr):
                old = state.read_mem(addr)
                state.write_mem(addr, state.acc)
                state.set_acc(old)

            ext_mem("xch", _EXT_XCH, do_xch, "xchg",
                    "swap acc and mem[addr]")

        if "mult" in feats:
            ext_mem("mull", _EXT_MULL,
                    lambda s, a: s.set_acc(s.acc * s.read_mem(a)),
                    "mult", "acc <- low half of acc * mem[addr]")
            ext_mem("mulh", _EXT_MULH,
                    lambda s, a: s.set_acc(
                        (s.acc * s.read_mem(a)) >> width),
                    "mult", "acc <- high half of acc * mem[addr]")

        if "shift" in feats:
            def exec_lsri(state, operands):
                state.set_acc(state.acc >> operands[0])
                state.advance_pc(2)

            def exec_asri(state, operands):
                signed = bits.sign_extend(state.acc, width)
                state.set_acc(signed >> operands[0])
                state.advance_pc(2)

            for mnem, opcode, fn, desc in (
                ("lsri", _EXT_LSRI, exec_lsri, "logical shift right"),
                ("asri", _EXT_ASRI, exec_asri, "arithmetic shift right"),
            ):
                self._add(InstructionSpec(
                    mnemonic=mnem,
                    operands=(shamt_operand(width - 1),),
                    size=2,
                    encode_fn=lambda ops, opcode=opcode: bytes(
                        [_EXT_PREFIX, (opcode << 4) | (ops[0] & 0xF)]
                    ),
                    execute_fn=fn,
                    iclass=InstrClass.ALU,
                    feature="shift",
                    description=f"acc <- acc {desc} shamt (barrel shifter)",
                ))

        # Build the EXT decode table from whatever got defined.
        self._ext_decode = {}
        for mnem, opcode in (
            ("lsri", _EXT_LSRI), ("asri", _EXT_ASRI), ("adc", _EXT_ADC),
            ("swb", _EXT_SWB), ("sub", _EXT_SUB), ("xch", _EXT_XCH),
            ("mull", _EXT_MULL), ("mulh", _EXT_MULH), ("adci", _EXT_ADCI),
            ("and", _EXT_AND), ("or", _EXT_OR), ("nand", _EXT_NAND),
            ("ori", _EXT_ORI),
        ):
            if mnem in self.specs:
                self._ext_decode[opcode] = mnem

    @staticmethod
    def _exec_halt(state, operands):
        state.halted = True
        state.advance_pc(1)

    # ------------------------------------------------------------------

    def decode(self, code, offset=0):
        first = decode_helper(code, offset, 1, self.name)[0]

        def one(mnem, *ops):
            return DecodedInstruction(
                spec=self.specs[mnem], operands=tuple(ops),
                address=offset, raw=bytes([first]),
            )

        def two(mnem, *ops):
            raw = decode_helper(code, offset, 2, self.name)
            return DecodedInstruction(
                spec=self.specs[mnem], operands=tuple(ops),
                address=offset, raw=raw,
            )

        if first & 0x80:
            return one("brn", first & 0x7F)
        hi = first >> 4
        if first & 0x40:  # 01oo iiii immediates
            oo = bits.get_field(first, 5, 4)
            mnem = {0b00: "addi", 0b01: "nandi", 0b10: "xori",
                    0b11: "andi"}[oo]
            if mnem not in self.specs:
                raise DecodeError(f"{self.name}: {mnem} not enabled")
            return one(mnem, first & 0x0F)
        if hi == 0b0011:
            return one("load", first & 0x0F)
        if hi == 0b0010:
            return one("store", first & 0x0F)
        if hi == 0b0001:
            mnem = "xor" if first & 0b1000 else "add"
            return one(mnem, first & 0b111)
        # hi == 0000
        if first & 0b1000:  # br/call family
            nzp = first & 0b111
            raw = decode_helper(code, offset, 2, self.name)
            target = raw[1] & 0x7F
            if nzp == 0:
                if "call" not in self.specs:
                    raise DecodeError(f"{self.name}: call not enabled")
                return two("call", target)
            if "br" not in self.specs:
                raise DecodeError(f"{self.name}: br not enabled")
            return two("br", nzp, target)
        if first == _EXT_PREFIX:
            raw = decode_helper(code, offset, 2, self.name)
            opcode, arg = raw[1] >> 4, raw[1] & 0x0F
            mnem = self._ext_decode.get(opcode)
            if mnem is None:
                raise DecodeError(
                    f"{self.name}: undefined EXT opcode {opcode:#x}"
                )
            if mnem in ("adci", "ori"):
                return two(mnem, arg)
            if mnem in ("lsri", "asri"):
                if not 1 <= arg <= self.word_bits - 1:
                    raise DecodeError(
                        f"{self.name}: bad shift amount {arg}"
                    )
                return two(mnem, arg)
            return two(mnem, arg if mnem == "xch" else arg & 0b111)
        simple = {0b0000: "nop", 0b0001: "ret", 0b0010: "neg",
                  0b0011: "halt"}.get(first)
        if simple is None or simple not in self.specs:
            raise DecodeError(
                f"{self.name}: undefined opcode byte {first:#04x}"
            )
        return one(simple)
