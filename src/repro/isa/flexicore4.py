"""FlexiCore4: the fabricated 4-bit base ISA (Figure 2a).

Nine instructions over four formats, all one byte wide:

========  ==================  =========================================
Format    Encoding            Semantics
========  ==================  =========================================
Branch    ``1ttttttt``        if acc MSB set: PC <- target
I-Type    ``01ooiiii``        acc <- acc op imm4   (op: add/nand/xor)
M-Type    ``00oo0aaa``        acc <- acc op mem[a] (op: add/nand/xor)
T-Type    ``0111taaa``        t=0: acc <- mem[a];  t=1: mem[a] <- acc
========  ==================  =========================================

The T-Type occupies the I-Type's fourth opcode slot (op = 11), consistent
with the paper's statement that instruction bits 5:4 drive the ALU output
mux and bit 6 selects the immediate-vs-memory operand.  Data addresses 0
and 1 are the memory-mapped IPORT and OPORT.

The state is a 4-bit accumulator, a 7-bit PC and eight 4-bit memory words;
there is no architected carry flag, no stack, and no other register --
which is exactly why the fabricated core needs only 336 gates.
"""

from repro.isa import bits
from repro.isa.errors import DecodeError
from repro.isa.model import (
    ISA,
    DecodedInstruction,
    InstrClass,
    InstructionSpec,
    decode_helper,
    imm_operand,
    memaddr_operand,
    target_operand,
)

# ALU opcode values shared by the I- and M-Type formats.
OP_ADD = 0b00
OP_NAND = 0b01
OP_XOR = 0b10
OP_TRANSFER = 0b11  # T-Type escape in the I-Type space

_ALU_OPS = {OP_ADD: "add", OP_NAND: "nand", OP_XOR: "xor"}


def alu_result(op, a, b, width):
    """The FlexiCore ALU of Figure 3b.

    A single ripple-carry adder computes the sum; AND and XOR fall out of
    the same adder as side effects, and NAND costs four extra inverters.
    Returns (result, carry_out); the base ISA discards the carry.
    """
    if op == OP_ADD:
        return bits.add_with_carry(a, b, 0, width)
    if op == OP_NAND:
        return bits.truncate(~(a & b), width), 0
    if op == OP_XOR:
        return bits.truncate(a ^ b, width), 0
    raise ValueError(f"not an ALU op: {op}")


class FlexiCore4(ISA):
    """The fabricated 4-bit FlexiCore ISA."""

    name = "flexicore4"
    word_bits = 4
    mem_words = 8
    pc_bits = 7
    fetch_bits = 8
    accumulator = True

    # -- instruction definitions -----------------------------------------

    def _define_instructions(self):
        width = self.word_bits

        def make_imm_exec(op):
            def execute(state, operands):
                imm = bits.truncate(operands[0], width)
                result, _ = alu_result(op, state.acc, imm, width)
                state.set_acc(result)
                state.advance_pc(1)
            return execute

        def make_mem_exec(op):
            def execute(state, operands):
                value = state.read_mem(operands[0])
                result, _ = alu_result(op, state.acc, value, width)
                state.set_acc(result)
                state.advance_pc(1)
            return execute

        for op, base in _ALU_OPS.items():
            self._add(InstructionSpec(
                mnemonic=base + "i",
                operands=(imm_operand(width=width),),
                size=1,
                encode_fn=self._make_imm_encoder(op),
                execute_fn=make_imm_exec(op),
                iclass=InstrClass.ALU,
                description=f"acc <- acc {base} imm{width}",
            ))
            self._add(InstructionSpec(
                mnemonic=base,
                operands=(memaddr_operand(self.mem_words),),
                size=1,
                encode_fn=self._make_mem_encoder(op),
                execute_fn=make_mem_exec(op),
                iclass=InstrClass.ALU,
                description=f"acc <- acc {base} mem[addr]",
            ))

        def exec_load(state, operands):
            state.set_acc(state.read_mem(operands[0]))
            state.advance_pc(1)

        def exec_store(state, operands):
            state.write_mem(operands[0], state.acc)
            state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="load",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0111_0000 | (ops[0] & 0b111)]),
            execute_fn=exec_load,
            iclass=InstrClass.MEMORY,
            description="acc <- mem[addr] (addr 0 reads IPORT)",
        ))
        self._add(InstructionSpec(
            mnemonic="store",
            operands=(memaddr_operand(self.mem_words),),
            size=1,
            encode_fn=lambda ops: bytes([0b0111_1000 | (ops[0] & 0b111)]),
            execute_fn=exec_store,
            iclass=InstrClass.MEMORY,
            description="mem[addr] <- acc (addr 1 drives OPORT)",
        ))

        def exec_brn(state, operands):
            if state.acc_negative():
                state.branch_to(operands[0])
            else:
                state.advance_pc(1)

        self._add(InstructionSpec(
            mnemonic="brn",
            operands=(target_operand(self.pc_bits),),
            size=1,
            encode_fn=lambda ops: bytes([0b1000_0000 | (ops[0] & 0x7F)]),
            execute_fn=exec_brn,
            iclass=InstrClass.BRANCH,
            description="if acc MSB: PC <- target",
        ))

    def _make_imm_encoder(self, op):
        def encode(operands):
            imm = bits.truncate(operands[0], self.word_bits)
            return bytes([0b0100_0000 | (op << 4) | imm])
        return encode

    def _make_mem_encoder(self, op):
        def encode(operands):
            return bytes([(op << 4) | (operands[0] & 0b111)])
        return encode

    # -- decoding ---------------------------------------------------------

    def decode(self, code, offset=0):
        raw = decode_helper(code, offset, 1, self.name)
        byte = raw[0]
        if byte & 0x80:  # Branch
            spec, ops = self.specs["brn"], (byte & 0x7F,)
        elif byte & 0x40:  # I-Type / T-Type
            op = bits.get_field(byte, 5, 4)
            if op == OP_TRANSFER:
                mnem = "store" if bits.bit(byte, 3) else "load"
                spec, ops = self.specs[mnem], (byte & 0b111,)
            else:
                spec, ops = self.specs[_ALU_OPS[op] + "i"], (byte & 0x0F,)
        else:  # M-Type
            op = bits.get_field(byte, 5, 4)
            if op == OP_TRANSFER or bits.bit(byte, 3):
                raise DecodeError(
                    f"{self.name}: undefined opcode byte {byte:#04x}"
                )
            spec, ops = self.specs[_ALU_OPS[op]], (byte & 0b111,)
        return DecodedInstruction(spec=spec, operands=ops, address=offset, raw=raw)
