"""Small bit-manipulation helpers shared by encoders, decoders and ALUs.

All FlexiCore datapaths are narrow (4 or 8 bits), so these helpers work on
plain Python integers and masks rather than bit vectors.
"""


def mask(width):
    """Return an all-ones mask of ``width`` bits."""
    return (1 << width) - 1


def truncate(value, width):
    """Truncate ``value`` to ``width`` bits (two's-complement wraparound)."""
    return value & mask(width)


def sign_extend(value, width):
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value = truncate(value, width)
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def msb(value, width):
    """Return the most-significant bit of a ``width``-bit value."""
    return (value >> (width - 1)) & 1


def bit(value, index):
    """Return bit ``index`` of ``value``."""
    return (value >> index) & 1


def get_field(word, hi, lo):
    """Extract bits ``hi:lo`` (inclusive) of ``word``."""
    return (word >> lo) & mask(hi - lo + 1)


def set_field(word, hi, lo, value):
    """Return ``word`` with bits ``hi:lo`` replaced by ``value``."""
    field_mask = mask(hi - lo + 1)
    if value & ~field_mask:
        raise ValueError(
            f"value {value} does not fit in bits {hi}:{lo}"
        )
    return (word & ~(field_mask << lo)) | (value << lo)


def popcount(value):
    """Number of set bits in ``value``."""
    return bin(value).count("1")


def parity(value):
    """Even-parity bit of ``value`` (1 if an odd number of bits are set)."""
    return popcount(value) & 1


def reverse_bits(value, width):
    """Reverse the bit order of a ``width``-bit value."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def to_signed(value, width):
    """Alias of :func:`sign_extend` for readability at call sites."""
    return sign_extend(value, width)


def add_with_carry(a, b, carry_in, width):
    """Add two ``width``-bit values plus a carry, returning (sum, carry_out).

    This mirrors the ripple-carry adder at the heart of the FlexiCore ALU
    (Figure 3b): the carry-out is the bit above the top of the datapath.
    """
    total = truncate(a, width) + truncate(b, width) + (carry_in & 1)
    return truncate(total, width), (total >> width) & 1


def sub_with_borrow(a, b, borrow_in, width):
    """Subtract with borrow, returning (difference, borrow_out).

    Implemented, as in hardware, as ``a + ~b + ~borrow_in`` on the same
    ripple-carry adder; ``borrow_out`` is 1 when the subtraction underflows.
    """
    value, carry_out = add_with_carry(
        a, truncate(~b, width), 1 - (borrow_in & 1), width
    )
    return value, 1 - carry_out
