"""0.8 um IGZO technology models: devices, standard cells, power."""

from repro.tech import tft
from repro.tech.cells import (
    LIBRARY,
    MM2_PER_NAND2,
    SECONDS_PER_DELAY_UNIT,
    WATTS_PER_PULLUP_AT_4V5,
    Cell,
    cells_by_function,
    default_cell,
    get_cell,
)
from repro.tech.power import (
    FMAX_HZ,
    NJ_PER_INSTRUCTION,
    PULLUP_REFINEMENT_FACTOR,
    OperatingPoint,
    battery_life_s,
    energy_j,
    energy_per_instruction_j,
    static_power_w,
    supply_current_a,
)

__all__ = [
    "Cell",
    "FMAX_HZ",
    "LIBRARY",
    "MM2_PER_NAND2",
    "NJ_PER_INSTRUCTION",
    "OperatingPoint",
    "PULLUP_REFINEMENT_FACTOR",
    "SECONDS_PER_DELAY_UNIT",
    "WATTS_PER_PULLUP_AT_4V5",
    "battery_life_s",
    "cells_by_function",
    "default_cell",
    "energy_j",
    "energy_per_instruction_j",
    "get_cell",
    "static_power_w",
    "supply_current_a",
    "tft",
]
