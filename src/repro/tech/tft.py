"""0.8 um IGZO thin-film-transistor device model.

Figure 1 of the paper publishes measured device statistics for the
FlexLogIC 0.8 um IGZO process; this module encodes them and derives the
two technology behaviours the rest of the model stack needs:

- a *delay-vs-voltage* factor (n-type TFT with resistive pull-up: drive
  current, and hence speed, degrades super-linearly as VDD approaches the
  threshold voltage), and
- per-die *process variation* samples (threshold-voltage shifts that move
  both speed and static current draw).

The paper's wafers are the ground truth this model is calibrated to
reproduce distributionally: yield-vs-voltage (Table 5) and current-draw
spread (Figure 7, Section 4.2).
"""

from dataclasses import dataclass

import numpy as np

#: Measured 0.8 um IGZO TFT characteristics (Figure 1, mean / std dev).
VTH_V = (1.29, 0.19)
SUBTHRESHOLD_SWING_V_DEC = (0.1, 0.03)
IOFF_NA = (2.14, 0.59)
ION_UA = (34.85, 7.9)
HYSTERESIS_V = (0.04, 0.02)

#: Operating points used throughout the paper.
VDD_NOMINAL = 4.5
VDD_LOW = 3.0

#: Wafer-level systematic variation of the per-die speed/current factors
#: (lognormal sigma).  Calibrated so the fabrication model lands on the
#: paper's Table 5 yields and the 15.3% / 21.5% current-draw RSDs.
SPEED_SIGMA = 0.18
CURRENT_SIGMA = 0.145


@dataclass(frozen=True)
class TftCharacteristics:
    """One sampled device (used by device-level tests and docs)."""

    vth_v: float
    swing_v_dec: float
    ioff_na: float
    ion_ua: float
    hysteresis_v: float


def sample_device(rng):
    """Draw one TFT from the published Figure 1 distributions."""
    return TftCharacteristics(
        vth_v=float(rng.normal(*VTH_V)),
        swing_v_dec=float(rng.normal(*SUBTHRESHOLD_SWING_V_DEC)),
        ioff_na=max(0.0, float(rng.normal(*IOFF_NA))),
        ion_ua=max(0.1, float(rng.normal(*ION_UA))),
        hysteresis_v=float(rng.normal(*HYSTERESIS_V)),
    )


def drive_factor(vdd, vth=VTH_V[0]):
    """Relative n-type drive strength at ``vdd`` (1.0 at 4.5 V).

    A square-law saturation model: I_on ~ (VDD - Vth)^2.  At the paper's
    3 V point this gives ~0.28x the 4.5 V drive, which is what makes
    FlexiCore8's doubled adder chain miss 12.5 kHz timing at 3 V
    (Section 4.1) while FlexiCore4 mostly still passes.
    """
    headroom = max(vdd - vth, 0.05)
    nominal = (VDD_NOMINAL - vth) ** 2
    return (headroom ** 2) / nominal


def delay_factor(vdd, vth=VTH_V[0]):
    """Relative gate delay at ``vdd``: the load still swings ~VDD, so
    delay ~ VDD / I_on."""
    return (vdd / VDD_NOMINAL) / drive_factor(vdd, vth)


def static_current_factor(vdd):
    """Relative static current at ``vdd`` (resistive pull-up: I ~ V/R).

    Section 4.2 reports mean FlexiCore4 current of 1.1 mA at 4.5 V and
    0.73 mA at 3 V -- close to the 3/4.5 ratio this linear model gives.
    """
    return vdd / VDD_NOMINAL


def sample_speed_factor(rng, size=None):
    """Per-die speed multiplier (>1 means slower than typical)."""
    return np.exp(rng.normal(0.0, SPEED_SIGMA, size=size))


def sample_current_factor(rng, size=None, sigma=CURRENT_SIGMA):
    """Per-die static-current multiplier."""
    return np.exp(rng.normal(0.0, sigma, size=size))
