"""Static power and energy model for 0.8 um IGZO logic.

Section 3.1: ">99% of power consumption in 0.8 um IGZO is static power" --
an n-type gate's pull-up resistor conducts whenever its output is LOW, so
power is set by area (number of pull-ups), not by switching activity, and
"power reduction [must] be achieved primarily through area reduction".

Energy for a program is therefore simply ``P_static x T_execution``; at
the chips' 12.5 kHz and ~4.5 mW this is the paper's "360 nJ per
instruction" (Section 5.2).
"""

from dataclasses import dataclass

from repro.tech import tft
from repro.tech.cells import WATTS_PER_PULLUP_AT_4V5

#: Headline figure of Section 5.2.
NJ_PER_INSTRUCTION = 360.0
#: Tested clock rate of the fabricated chips (Section 4.1).
FMAX_HZ = 12.5e3

#: The FlexiCore8 wafer used a refined process with 50% higher pull-up
#: resistance (Table 4), cutting static current by 1/3.
PULLUP_REFINEMENT_FACTOR = 1.5


@dataclass(frozen=True)
class OperatingPoint:
    """Supply voltage plus process options."""

    vdd: float = tft.VDD_NOMINAL
    refined_pullups: bool = False

    def pullup_power_w(self):
        """Static power of one conducting pull-up at this point."""
        power = WATTS_PER_PULLUP_AT_4V5 * (self.vdd / tft.VDD_NOMINAL) ** 2
        if self.refined_pullups:
            power /= PULLUP_REFINEMENT_FACTOR
        return power


def static_power_w(pullups, point=OperatingPoint(), low_fraction=0.5):
    """Static power of a block with ``pullups`` resistive pull-ups.

    ``low_fraction`` is the average fraction of gate outputs held LOW
    (conducting); 0.5 is the long-run average for random logic.
    """
    return pullups * low_fraction * point.pullup_power_w()


def supply_current_a(power_w, vdd):
    """The wafer prober measures current draw; convert power to current."""
    return power_w / vdd


def energy_j(power_w, cycles, frequency_hz=FMAX_HZ):
    """Execution energy: static power times time (Section 5.2)."""
    return power_w * cycles / frequency_hz


def energy_per_instruction_j(power_w, frequency_hz=FMAX_HZ):
    """At one instruction per cycle (the fabricated single-cycle cores)."""
    return power_w / frequency_hz


def battery_life_s(power_w, battery_mah=5.0, battery_v=3.0,
                   duty_cycle=1.0):
    """Runtime on a flexible printed battery (the Section 5.2 estimate
    uses a commercial 3 V, 5 mAh cell and perfect power gating)."""
    battery_j = battery_mah * 1e-3 * 3600.0 * battery_v
    return battery_j / (power_w * duty_cycle)
