"""Table 1: target applications and their feasibility on FlexiCores.

The paper's application analysis (Sections 3.2 and 5.2) reduces to three
checks per application: does the core meet the sample rate, does the
precision fit the datapath, and how long does a printed battery last at
the application's duty cycle?  This module encodes Table 1 and performs
those checks against measured kernel costs.
"""

from dataclasses import dataclass
from typing import Optional

from repro.tech.power import FMAX_HZ, battery_life_s


@dataclass(frozen=True)
class Application:
    """One Table 1 row."""

    name: str
    sample_rate_hz: float       # upper bound of the published range
    precision_bits: int
    duty_cycle: str             # qualitative, as printed
    #: Representative kernel from the Table 6 suite.
    kernel: Optional[str] = None
    #: Effective duty-cycle fraction for battery estimates (the core is
    #: power-gated between samples -- Section 5.2's assumption).
    duty_fraction: float = 1.0


#: Table 1, with each application mapped to its stand-in kernel.
APPLICATIONS = (
    Application("Blood Pressure Sensor", 100, 8, "Hours", "Thresholding"),
    Application("Body Temperature Sensor", 1, 8, "Minutes",
                "Thresholding"),
    Application("Odor Sensor", 25, 8, "Minutes", "Decision Tree"),
    Application("Smart Bandage", 0.01, 8, "Continuous to Hours",
                "IntAvg"),
    Application("Heart Beat Sensor", 4, 1, "Seconds", "Thresholding"),
    Application("Tremor Sensor", 25, 16, "Seconds", "Four-tap FIR"),
    Application("Pressure Sensor", 5.5, 12, "Continuous to Hours",
                "IntAvg"),
    Application("Oral-Nasal Airflow", 25, 8, "Seconds", "Four-tap FIR"),
    Application("Light Level Sensor", 1, 8, "Continuous to Hours",
                "Thresholding"),
    Application("Perspiration Sensor", 25, 8, "Minutes", "Thresholding"),
    Application("Trace Metal Sensor", 25, 16, "Minutes", "IntAvg"),
    Application("Pedometer", 25, 1, "Seconds", "Thresholding"),
    Application("Food Temp. Sensor", 1, 8, "5 minutes", "Thresholding"),
    Application("Timer", 1, 1, "Single Use", "IntAvg"),
    Application("Alcohol Sensor", 1, 8, "Single Use", "Decision Tree"),
    Application("POS Computation", 100, 8, "Single Use", "Calculator"),
    Application("Humidity Sensor", 10, 16, "Continuous to Hours",
                "IntAvg"),
    Application("Smart Labels", 1, 8, "Seconds", "XorShift8"),
    Application("Pseudo-RNG", 1, 8, "Seconds", "XorShift8"),
    Application("Error Detection Coding", 100, 8,
                "Continuous to Hours", "Parity Check"),
)


@dataclass(frozen=True)
class FeasibilityReport:
    application: Application
    instructions_per_sample: float
    achievable_rate_hz: float
    rate_ok: bool
    precision_ok_4bit: bool
    precision_ok_8bit: bool
    battery_days: float


def assess(application, instructions_per_sample,
           core_power_w, frequency_hz=FMAX_HZ,
           battery_mah=5.0, battery_v=3.0):
    """Check one application against a measured kernel cost."""
    time_per_sample = instructions_per_sample / frequency_hz
    achievable = 1.0 / time_per_sample if time_per_sample > 0 else 0.0
    duty = min(1.0, application.sample_rate_hz * time_per_sample)
    mean_power = core_power_w * duty  # perfect power gating (Section 5.2)
    days = battery_life_s(mean_power, battery_mah, battery_v) / 86400 \
        if mean_power > 0 else float("inf")
    # Multi-nibble software arithmetic covers >4-bit needs, but native
    # precision is the Section 3.2 comparison.
    return FeasibilityReport(
        application=application,
        instructions_per_sample=instructions_per_sample,
        achievable_rate_hz=achievable,
        rate_ok=achievable >= application.sample_rate_hz,
        precision_ok_4bit=application.precision_bits <= 4,
        precision_ok_8bit=application.precision_bits <= 8,
        battery_days=days,
    )


def assess_all(kernel_costs, core_power_w, frequency_hz=FMAX_HZ):
    """Assess every Table 1 application.

    ``kernel_costs`` maps kernel name -> mean dynamic instructions per
    transaction (e.g. from :func:`repro.experiments.figures.figure8`).
    """
    reports = []
    for application in APPLICATIONS:
        cost = kernel_costs.get(application.kernel)
        if cost is None:
            continue
        reports.append(assess(
            application, cost, core_power_w, frequency_hz
        ))
    return reports
