"""The thirteen-cell standard-cell library of Figure 1.

The paper's library (n-type logic with resistive pull-up, two of the four
metal layers) exposes exactly these cell types: BUF, DFF, INV and NAND2 in
two drive strengths, NOR2 in two drive strengths, and single-variant MUX2,
XOR2 and XNOR2 -- thirteen cells.  Notably there are *no* AND/OR cells:
netlist builders must compose them (AND = NAND + INV), exactly as the
synthesis flow would.

Per-cell numbers:

- ``devices``: TFTs + pull-up resistors (the paper counts both: FlexiCore4
  totals 2104 devices over 336 gates, ~6.3 devices/gate).
- ``area``: NAND2-equivalent area units (Table 7 reports FlexiCore4 at
  801 NAND2-equivalents for 5.56 mm^2 after place & route).
- ``pullups``: resistors that conduct whenever the cell output is LOW --
  the source of the >99%-static power of Section 3.1.
- ``delay``: normalized propagation delay at 4.5 V (NAND2 X1 = 1.0).
"""

from dataclasses import dataclass
from typing import Dict

#: mm^2 of placed-and-routed silicon per NAND2-equivalent area unit,
#: calibrated from FlexiCore4: 5.56 mm^2 / 801 NAND2-eq.
MM2_PER_NAND2 = 5.56 / 801.0

#: Static power per conducting pull-up at 4.5 V, in watts.  Calibrated so
#: the FlexiCore4 netlist lands near its measured 4.9 mW (Table 4).
WATTS_PER_PULLUP_AT_4V5 = 16.4e-6

#: Gate delay per normalized delay unit at 4.5 V, in seconds.  Calibrated
#: so the typical FlexiCore4 die is comfortably above the 12.5 kHz test
#: clock at 4.5 V and *marginal* at 3 V, reproducing the Table 5
#: yield-vs-voltage behaviour (the chips' own fmax was tester-limited to
#: 12.5 kHz by the IO ring, not by the logic -- Section 4.1).
SECONDS_PER_DELAY_UNIT = 0.95e-6


@dataclass(frozen=True)
class Cell:
    """One standard cell."""

    name: str
    function: str      # logic function family: 'buf','inv','nand2',...
    drive: int         # drive-strength variant (1 or 2)
    devices: int       # TFTs + pull-up resistors
    area: float        # NAND2-equivalent units
    pullups: int       # resistive pull-ups (static-power proxy)
    delay: float       # normalized propagation delay (NAND2_X1 = 1.0)
    inputs: int        # logic inputs (excluding clock)
    sequential: bool = False


#: The thirteen cells.
LIBRARY: Dict[str, Cell] = {
    cell.name: cell
    for cell in (
        # Buffers: two cascaded inverters.
        Cell("BUF_X1", "buf", 1, devices=4, area=1.3, pullups=2,
             delay=1.2, inputs=1),
        Cell("BUF_X2", "buf", 2, devices=6, area=1.8, pullups=2,
             delay=0.9, inputs=1),
        # D flip-flops (master/slave of clocked n-type latches).
        Cell("DFF_X1", "dff", 1, devices=22, area=4.8, pullups=6,
             delay=1.6, inputs=1, sequential=True),
        Cell("DFF_X2", "dff", 2, devices=26, area=5.6, pullups=6,
             delay=1.3, inputs=1, sequential=True),
        Cell("INV_X1", "inv", 1, devices=2, area=0.75, pullups=1,
             delay=0.7, inputs=1),
        Cell("INV_X2", "inv", 2, devices=3, area=1.0, pullups=1,
             delay=0.55, inputs=1),
        # 2:1 mux built from n-type pass/drive stages.
        Cell("MUX2_X1", "mux2", 1, devices=8, area=1.9, pullups=2,
             delay=1.4, inputs=3),
        Cell("NAND2_X1", "nand2", 1, devices=3, area=1.0, pullups=1,
             delay=1.0, inputs=2),
        Cell("NAND2_X2", "nand2", 2, devices=5, area=1.35, pullups=1,
             delay=0.8, inputs=2),
        Cell("NOR2_X1", "nor2", 1, devices=3, area=1.0, pullups=1,
             delay=1.0, inputs=2),
        Cell("NOR2_X2", "nor2", 2, devices=5, area=1.35, pullups=1,
             delay=0.8, inputs=2),
        Cell("XNOR2_X1", "xnor2", 1, devices=9, area=2.4, pullups=3,
             delay=1.9, inputs=2),
        Cell("XOR2_X1", "xor2", 1, devices=9, area=2.4, pullups=3,
             delay=1.9, inputs=2),
    )
}

assert len(LIBRARY) == 13, "the paper's library has exactly thirteen cells"


def get_cell(name):
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown cell '{name}'; library has {sorted(LIBRARY)}"
        ) from None


def cells_by_function(function):
    """All drive variants of a logic function, X1 first."""
    variants = [cell for cell in LIBRARY.values()
                if cell.function == function]
    return sorted(variants, key=lambda cell: cell.drive)


def default_cell(function):
    """The X1 variant of a logic function."""
    return cells_by_function(function)[0]
