"""Always-on flight recorder: the last N things that happened.

Post-mortem observability has a bootstrapping problem: the run that
crashes is never the run you profiled.  The flight recorder keeps a
fixed-size ring buffer of recent engine events, finished spans, and
structured log records *at all times* -- profiling on or off -- so
that when something does go wrong there is a recent history to dump.

The ring is a :class:`collections.deque` with ``maxlen``; appends are
O(1), memory is bounded by ``capacity``, and the recorder never does
I/O on the hot path.  Cost on the disabled-profiling path is one dict
wrap + deque append per *event* (engine events and warning-level logs
-- rare), which `benchmarks/test_bench_obs.py` holds under the same
< 5% overhead bar as the rest of the obs layer.

Dumps land in ``<state-dir>/flight/`` as self-describing JSON, written
when an engine job fails for good, the service answers an unhandled
500, or the process receives ``SIGQUIT``.  ``repro obs flight dump``
forces one; ``repro obs flight show`` replays the latest.
"""

import json
import os
import signal
import threading
import time
from collections import deque

from repro.obs import bridge as _bridge
from repro.obs import logging as _logging
from repro.obs import spans as _spans
from repro.obs import state as _state

#: Subdirectory of the state dir that dumps are written to.
FLIGHT_DIRNAME = "flight"
#: Default ring capacity (records, across all kinds).
DEFAULT_CAPACITY = 2048
#: Dumps beyond this count are pruned oldest-first.
MAX_DUMPS = 20

_lock = threading.Lock()
_ring = deque(maxlen=DEFAULT_CAPACITY)
_enabled = True
_installed = False
_dump_count = 0


def enabled():
    return _enabled


def configure(capacity=None, enabled=None):
    """Resize and/or enable/disable the recorder (partial updates)."""
    global _ring, _enabled
    with _lock:
        if capacity is not None and capacity != _ring.maxlen:
            _ring = deque(_ring, maxlen=max(1, int(capacity)))
        if enabled is not None:
            _enabled = bool(enabled)


def clear():
    """Drop the ring's contents (the recorder stays enabled)."""
    with _lock:
        _ring.clear()


def record(kind, payload):
    """Append one record to the ring (no-op when disabled)."""
    if not _enabled:
        return
    entry = {"kind": kind, "ts": time.time()}
    entry.update(payload)
    _ring.append(entry)


def snapshot():
    """The ring's contents, oldest first."""
    with _lock:
        return list(_ring)


# ----------------------------------------------------------------------
# Taps: engine events, finished spans, structured log records.
# ----------------------------------------------------------------------

def _on_engine_event(event, payload):
    if _enabled:
        record("event", {"event": event, "payload": dict(payload)})


def _on_span(span_record):
    if _enabled:
        record("span", dict(span_record))


def _on_log(log_record):
    if _enabled:
        record("log", dict(log_record))


def install():
    """Tap the bridge, the span stream, and the logger (idempotent)."""
    global _installed
    if _installed:
        return
    _installed = True
    _bridge.subscribe(_on_engine_event)
    _spans.add_span_sink(_on_span)
    _logging.add_log_sink(_on_log)


# ----------------------------------------------------------------------
# Dumps.
# ----------------------------------------------------------------------

def flight_dir(root=None):
    return _state.state_dir(root) / FLIGHT_DIRNAME


def dump(reason, context=None, root=None):
    """Write the ring to ``<state-dir>/flight/``; path or None.

    Best-effort like every state-dir writer: failures are counted via
    :func:`repro.obs.state.write_error_count` and swallowed.
    """
    global _dump_count
    records = snapshot()
    _dump_count += 1
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime())
    name = f"{stamp}_{os.getpid()}_{_dump_count:03d}_{reason}.json"
    document = {
        "written": time.time(),
        "reason": reason,
        "pid": os.getpid(),
        "context": context or {},
        "capacity": _ring.maxlen,
        "records": records,
    }
    directory = flight_dir(root)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f"{name}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, default=str)
        os.replace(tmp, directory / name)
    except OSError as exc:
        _state._note_write_failure(f"{FLIGHT_DIRNAME}/{name}", exc)
        return None
    _prune(directory)
    return directory / name


def _prune(directory):
    try:
        dumps = sorted(path for path in directory.iterdir()
                       if path.suffix == ".json")
        for stale in dumps[:-MAX_DUMPS]:
            stale.unlink()
    except OSError:
        pass


def list_dumps(root=None):
    """Existing dump paths, oldest first."""
    try:
        return sorted(path for path in flight_dir(root).iterdir()
                      if path.suffix == ".json")
    except OSError:
        return []


def load_dump(entry=None, root=None):
    """Parse a dump by path/name (default: the latest), or None."""
    if entry is None:
        dumps = list_dumps(root)
        if not dumps:
            return None
        path = dumps[-1]
    else:
        path = flight_dir(root) / str(entry)
        if not path.exists():
            path = _state.state_dir(root) / str(entry)
        if not path.exists():
            from pathlib import Path
            path = Path(str(entry))
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def render(document, limit=None):
    """Human rendering of a dump (or a live snapshot list)."""
    if document is None:
        return "(no flight dump found)"
    if isinstance(document, dict):
        records = document.get("records", [])
        header = (
            f"flight dump: reason={document.get('reason', '?')} "
            f"pid={document.get('pid', '?')} "
            f"records={len(records)}"
        )
    else:
        records = list(document)
        header = f"flight ring: records={len(records)}"
    if limit is not None:
        records = records[-limit:]
    lines = [header]
    for entry in records:
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(entry.get("ts", 0)))
        kind = entry.get("kind", "?")
        if kind == "event":
            payload = entry.get("payload", {})
            detail = entry.get("event", "?") + "".join(
                f" {key}={payload[key]}"
                for key in ("label", "stage", "status", "trace_id")
                if key in payload
            )
        elif kind == "span":
            detail = (
                f"{entry.get('name', '?')} "
                f"wall={entry.get('wall_s', 0.0):.3f}s "
                f"trace={entry.get('trace', '?')}"
            )
            if entry.get("error"):
                detail += f" !{entry['error']}"
        elif kind == "log":
            detail = (
                f"[{entry.get('logger', '?')}] "
                f"{entry.get('level', '?')}: {entry.get('event', '')}"
            )
            if entry.get("trace_id"):
                detail += f" trace={entry['trace_id']}"
        else:
            detail = json.dumps(entry, default=str)
        lines.append(f"{stamp} {kind:<5} {detail}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# SIGQUIT: dump-on-demand for a live, wedged process.
# ----------------------------------------------------------------------

def install_sigquit():
    """Dump the ring on ``SIGQUIT`` (Ctrl-\\) and keep running.

    Main-thread only (signal module restriction); platforms without
    SIGQUIT (Windows) silently skip installation.
    """
    if not hasattr(signal, "SIGQUIT"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def _handler(signum, frame):
        dump("sigquit")

    try:
        signal.signal(signal.SIGQUIT, _handler)
    except (ValueError, OSError):
        return False
    return True
