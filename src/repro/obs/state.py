"""The observability state directory.

Snapshots that must survive the process -- the latest engine-run
metrics, the exported span stream, the metrics registry dump, and the
structured log -- live in a small state directory *independent of the
result cache*, so ``repro obs``/``repro engine stats`` stay truthful
even for ``--no-cache`` runs (the cache can be cleared or bypassed at
any time; the record of what last ran should not go with it).

Layout (default root: ``$REPRO_STATE_DIR`` or ``.repro-state``)::

    <root>/last_run.json    latest engine-run metrics (``engine stats``)
    <root>/metrics.json     latest metrics-registry snapshot
    <root>/spans.jsonl      latest run's finished spans, one per line
    <root>/log.jsonl        structured log records, appended across runs

Every writer here swallows ``OSError``: observability must never take
an experiment down with it.
"""

import json
import os
from pathlib import Path

#: Environment override for the state root directory.
STATE_DIR_ENV = "REPRO_STATE_DIR"
#: Project-local default state root.
DEFAULT_STATE_DIRNAME = ".repro-state"

LAST_RUN_FILE = "last_run.json"
METRICS_FILE = "metrics.json"
SPANS_FILE = "spans.jsonl"
LOG_FILE = "log.jsonl"


def state_dir(root=None):
    """The state root as a :class:`~pathlib.Path` (not created yet)."""
    return Path(root or os.environ.get(STATE_DIR_ENV)
                or DEFAULT_STATE_DIRNAME)


#: Swallowed ``OSError`` counts per file name.  Writers stay silent to
#: the caller (observability must never fail a run) but the failures
#: are counted, folded into ``obs_write_errors_total``, and announced
#: by one warn-once log line so a read-only state dir is visible.
_WRITE_ERRORS = {}
_write_warned = False


def write_error_count(name=None):
    """Swallowed write failures so far (for ``name``, or in total)."""
    if name is not None:
        return _WRITE_ERRORS.get(name, 0)
    return sum(_WRITE_ERRORS.values())


def _note_write_failure(name, exc):
    global _write_warned
    _WRITE_ERRORS[name] = _WRITE_ERRORS.get(name, 0) + 1
    try:
        from repro import obs
        if obs.active():
            obs.registry().counter(
                "obs_write_errors_total",
                "State-dir writes swallowed as OSError",
            ).inc(file=name)
    except Exception:  # pragma: no cover - obs must never break IO
        pass
    if _write_warned:
        return
    # Flip the latch *before* logging: the warning itself may try to
    # persist through append_jsonl and fail straight back into here.
    _write_warned = True
    try:
        from repro.obs.logging import get_logger
        get_logger("repro.obs.state").warning(
            "state-dir write failed; further failures counted silently",
            file=name, error=f"{type(exc).__name__}: {exc}",
        )
    except Exception:  # pragma: no cover
        pass


def write_json(name, payload, root=None):
    """Atomically write one JSON document; returns True on success."""
    directory = state_dir(root)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f"{name}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        os.replace(tmp, directory / name)
    except OSError as exc:
        _note_write_failure(name, exc)
        return False
    return True


def read_json(name, root=None):
    """The parsed document, or None when absent/corrupt."""
    try:
        with open(state_dir(root) / name) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def write_jsonl(name, records, root=None):
    """Replace a JSONL file with ``records`` (one object per line)."""
    directory = state_dir(root)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f"{name}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, default=str) + "\n")
        os.replace(tmp, directory / name)
    except OSError as exc:
        _note_write_failure(name, exc)
        return False
    return True


def append_jsonl(name, record, root=None):
    """Append one record to a JSONL file.

    The record is serialized first and written with a *single*
    ``write`` of one bytes object to a file opened in unbuffered
    binary append mode.  On POSIX, ``O_APPEND`` writes of one buffer
    are atomic with respect to other appenders, so concurrent writers
    (engine workers all logging to ``log.jsonl``) interleave whole
    lines instead of tearing each other's records mid-line.
    """
    directory = state_dir(root)
    payload = (json.dumps(record, default=str) + "\n").encode("utf-8")
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / name, "ab", buffering=0) as handle:
            handle.write(payload)
    except OSError as exc:
        _note_write_failure(name, exc)
        return False
    return True


#: Malformed JSONL lines skipped by :func:`read_jsonl` this session,
#: keyed by file name.  Torn or half-flushed lines from older writers
#: (or a crash mid-append) are survivable, but not silently ignorable.
_MALFORMED = {}


def malformed_line_count(name=None):
    """Malformed lines skipped so far (for ``name``, or in total)."""
    if name is not None:
        return _MALFORMED.get(name, 0)
    return sum(_MALFORMED.values())


def read_jsonl(name, root=None, last=None):
    """All (or the ``last`` N) parsed records of a JSONL file.

    Lines that fail to parse -- torn by a concurrent writer or a crash
    mid-append -- are skipped, counted in :func:`malformed_line_count`,
    and folded into the ``obs_jsonl_malformed_total`` metric when a
    session is active.
    """
    try:
        with open(state_dir(root) / name) as handle:
            lines = handle.readlines()
    except OSError:
        return []
    if last is not None:
        lines = lines[-last:]
    records = []
    malformed = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            malformed += 1
    if malformed:
        _MALFORMED[name] = _MALFORMED.get(name, 0) + malformed
        try:
            from repro import obs
            if obs.active():
                obs.registry().counter(
                    "obs_jsonl_malformed_total",
                    "Malformed JSONL lines skipped on read",
                ).inc(malformed, file=name)
        except Exception:  # pragma: no cover - obs must never break IO
            pass
    return records
