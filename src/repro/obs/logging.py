"""Structured logging: one event, two renderings.

A log call names an event and attaches key=value fields::

    log = get_logger("repro.engine")
    log.info("stage done", stage="dse", jobs=27, wall_s=1.8)

Below the configured threshold the call is a single integer compare.
At or above it, the event renders twice:

- a *human* line on the configured stream (stderr by default) --
  ``[repro.engine] stage done  stage=dse jobs=27 wall_s=1.8``;
- a *JSONL* record appended to the state directory's ``log.jsonl``
  (when a sink is configured), for ``repro obs tail`` and machines.

There is no handler graph, no logger hierarchy, no formatter registry:
the experiment code needs levels, fields, and two renderers, so that is
all there is.
"""

import json
import sys
import time

from repro.obs import spans as _spans
from repro.obs import state as _state

#: Numeric severity per level name (stdlib-compatible values).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {number: name for name, number in LEVELS.items()}

#: Default threshold: library chatter is invisible unless asked for.
DEFAULT_LEVEL = LEVELS["warning"]


class _Config:
    __slots__ = ("level", "stream", "jsonl_root")

    def __init__(self):
        self.level = DEFAULT_LEVEL
        self.stream = None          # None -> sys.stderr at emit time
        self.jsonl_root = None      # state root for log.jsonl, or None


_config = _Config()
_sinks = []                 # callables fed each structured record


def add_log_sink(callback):
    """Feed every at-or-above-threshold record to ``callback``."""
    if callback not in _sinks:
        _sinks.append(callback)


def remove_log_sink(callback):
    try:
        _sinks.remove(callback)
    except ValueError:
        pass


def level_number(level):
    """Coerce a level name or number to its numeric severity."""
    if isinstance(level, str):
        try:
            return LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
            ) from None
    return int(level)


def configure_logging(level=None, stream="unset", jsonl_root="unset"):
    """Update the process-wide logging configuration (partial updates)."""
    if level is not None:
        _config.level = level_number(level)
    if stream != "unset":
        _config.stream = stream
    if jsonl_root != "unset":
        _config.jsonl_root = jsonl_root


def reset_logging():
    _config.level = DEFAULT_LEVEL
    _config.stream = None
    _config.jsonl_root = None


def current_level():
    return _config.level


def render_human(name, level, message, fields):
    """The human line for one event (no trailing newline)."""
    tail = "".join(
        f" {key}={_scalar(value)}" for key, value in fields.items()
    )
    prefix = "" if level == "info" else f"{level}: "
    return f"[{name}] {prefix}{message}{tail}"


def _scalar(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _emit(name, number, message, fields, force=False):
    if number < _config.level and not force:
        return
    level = _LEVEL_NAMES.get(number, str(number))
    stream = _config.stream or sys.stderr
    try:
        stream.write(render_human(name, level, message, fields) + "\n")
    except (OSError, ValueError):
        pass
    if _config.jsonl_root is not None or _sinks:
        record = {"ts": time.time(), "level": level, "logger": name,
                  "event": message}
        trace_id = _spans.current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        for key, value in fields.items():
            record[key] = value if isinstance(
                value, (bool, int, float, str, type(None))
            ) else str(value)
        for sink in list(_sinks):
            try:
                sink(record)
            except Exception:
                pass
        if _config.jsonl_root is not None:
            _state.append_jsonl(_state.LOG_FILE, record,
                                root=_config.jsonl_root)


class Logger:
    """A named emitter; cheap to construct, safe to share."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def log(self, level, message, **fields):
        number = level_number(level)
        if number < _config.level:
            return
        _emit(self.name, number, message, fields)

    def debug(self, message, **fields):
        if 10 >= _config.level:
            _emit(self.name, 10, message, fields)

    def info(self, message, **fields):
        if 20 >= _config.level:
            _emit(self.name, 20, message, fields)

    def warning(self, message, **fields):
        if 30 >= _config.level:
            _emit(self.name, 30, message, fields)

    def error(self, message, **fields):
        if 40 >= _config.level:
            _emit(self.name, 40, message, fields)

    def force(self, message, **fields):
        """Emit regardless of threshold (opt-in verbose printers)."""
        _emit(self.name, 20, message, fields, force=True)


_loggers = {}


def get_logger(name):
    """The shared :class:`Logger` for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger


def tail_log(count=20, root=None):
    """The last ``count`` structured log records (for ``repro obs tail``)."""
    return _state.read_jsonl(_state.LOG_FILE, root=root, last=count)


def render_log_records(records):
    """Human rendering of persisted log records, one line each."""
    lines = []
    for record in records:
        fields = {
            key: value for key, value in record.items()
            if key not in ("ts", "level", "logger", "event")
        }
        stamp = time.strftime(
            "%H:%M:%S", time.localtime(record.get("ts", 0))
        )
        lines.append(
            f"{stamp} "
            + render_human(
                record.get("logger", "?"), record.get("level", "info"),
                record.get("event", ""), fields,
            )
        )
    return "\n".join(lines)
