"""Hierarchical spans with wall/CPU timing, across process boundaries.

A span is a named region of work::

    with span("yield.wafer", wafer=3):
        ...

Spans nest through a :mod:`contextvars` variable, so a span opened
inside an engine job automatically hangs under the job's span.  The
whole machinery is off by default: with tracing disabled, ``span()``
returns a shared no-op context manager after a single module-global
check.

Crossing the process pool
-------------------------
A live span cannot be pickled, but its *context* -- the trace id plus
the would-be parent's span id -- is two strings.  The engine ships that
context to its workers (:func:`trace_context` ->
:func:`activate_worker`), each worker records spans locally, and the
parent adopts the serialized records afterwards
(:func:`drain_spans` -> :func:`adopt_spans`).  Span ids are prefixed
with the producing pid, so ids never collide across processes and the
assembled tree renders parent and workers as one trace.
"""

import itertools
import os
import time
import uuid
from contextvars import ContextVar

_TRACING = False
_trace_id = None
_process = "main"
_root_parent = None      # parent id grafted onto worker-side roots
_finished = []           # finished span record dicts, in close order
_ids = itertools.count(1)
_current = ContextVar("repro_obs_span", default=None)
#: Per-task/thread (trace_id, parent_span_id) override of the globals.
#: The service sets this for each HTTP request so concurrent jobs keep
#: distinct W3C trace ids while sharing one process-wide span buffer.
_ctx_trace = ContextVar("repro_obs_trace", default=None)
_sinks = []              # callables fed each finished span record


def tracing_enabled():
    return _TRACING


# ----------------------------------------------------------------------
# W3C-style trace identity.
# ----------------------------------------------------------------------

def new_trace_id():
    """A fresh 32-hex-char trace id (W3C ``trace-id`` width)."""
    return uuid.uuid4().hex


def parse_traceparent(header):
    """``(trace_id, parent_id)`` from a W3C ``traceparent``, or None.

    Accepts ``00-<32 hex>-<16 hex>-<2 hex>``; rejects the all-zero
    trace id per the spec.  Malformed headers are ignored (a service
    should mint a fresh trace rather than fail the request).
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4 or parts[0] != "00":
        return None
    trace_id, parent_id = parts[1], parts[2]
    if len(trace_id) != 32 or len(parent_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(parent_id, 16)
        int(parts[3], 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return (trace_id, parent_id)


def format_traceparent(trace_id, span_id=None):
    """Render a W3C ``traceparent`` header value for ``trace_id``."""
    parent = (span_id or "").replace(":", "")
    parent = (parent[-16:] if parent else uuid.uuid4().hex[:16]).zfill(16)
    trace = (trace_id or new_trace_id())[:32].zfill(32)
    return f"00-{trace}-{parent}-01"


def push_trace(trace_id, parent_id=None):
    """Bind a trace identity to the current thread/task.

    Returns a token for :func:`pop_trace`.  While bound, spans record
    ``trace_id`` (instead of the process-global id) and new root spans
    parent under ``parent_id``.
    """
    return _ctx_trace.set((trace_id, parent_id))


def pop_trace(token):
    _ctx_trace.reset(token)


def current_trace_id():
    """The trace id in effect here: context binding, else the global."""
    bound = _ctx_trace.get()
    if bound is not None:
        return bound[0]
    return _trace_id


def start_tracing(trace_id=None, parent_id=None, process=None):
    """Enable span recording (idempotent; resets collected spans).

    The span-id counter is *not* reset: a pool worker is re-activated
    once per chunk, and ids must stay unique across activations of the
    same process or the assembled tree would alias spans.
    """
    global _TRACING, _trace_id, _root_parent, _process
    _TRACING = True
    _trace_id = trace_id or uuid.uuid4().hex[:16]
    _root_parent = parent_id
    if process is not None:
        _process = process
    _finished.clear()
    return _trace_id


def enable_tracing(process=None):
    """Turn span recording on *without* discarding collected spans.

    Unlike :func:`start_tracing` this is safe to call on a process that
    is already collecting: the buffer and trace id survive, so a
    long-lived service can flip tracing on at boot and keep per-request
    identities via :func:`push_trace`.  Returns the global trace id.
    """
    global _TRACING, _trace_id
    _TRACING = True
    if _trace_id is None:
        _trace_id = new_trace_id()
    if process is not None:
        global _process
        _process = process
    return _trace_id


def stop_tracing():
    global _TRACING
    _TRACING = False


def reset_spans():
    global _TRACING, _trace_id, _root_parent, _process
    _TRACING = False
    _trace_id = None
    _root_parent = None
    _process = "main"
    _finished.clear()
    _current.set(None)
    _ctx_trace.set(None)


def add_span_sink(callback):
    """Feed every finished span record to ``callback`` (idempotent)."""
    if callback not in _sinks:
        _sinks.append(callback)


def remove_span_sink(callback):
    try:
        _sinks.remove(callback)
    except ValueError:
        pass


def trace_context():
    """(trace_id, parent span id) to ship to a worker, or None."""
    if not _TRACING:
        return None
    active = _current.get()
    bound = _ctx_trace.get()
    trace = bound[0] if bound is not None else _trace_id
    if active is not None:
        parent = active.id
    elif bound is not None:
        parent = bound[1]
    else:
        parent = _root_parent
    return (trace, parent)


def activate_worker(context, process=None):
    """Adopt a shipped trace context inside a worker process.

    Resets the local span buffer (a forked worker inherits the
    parent's), so :func:`drain_spans` returns only this activation's
    records.
    """
    trace_id, parent_id = context
    start_tracing(
        trace_id=trace_id, parent_id=parent_id,
        process=process or f"worker-{os.getpid()}",
    )


def drain_spans():
    """Remove and return every finished span record."""
    records = list(_finished)
    _finished.clear()
    return records


def collected_spans():
    """The finished span records, without draining them."""
    return list(_finished)


def adopt_spans(records):
    """Graft records drained in another process into this collection."""
    records = records or []
    _finished.extend(records)
    for sink in list(_sinks):
        for record in records:
            try:
                sink(record)
            except Exception:
                pass


def drain_trace(trace_id):
    """Remove and return the finished records belonging to one trace.

    Lets the service harvest exactly the spans of a completed job from
    the shared buffer without disturbing concurrent requests' spans.
    """
    if trace_id is None:
        return []
    kept, mine = [], []
    for record in _finished:
        (mine if record.get("trace") == trace_id else kept).append(record)
    _finished[:] = kept
    return mine


class span:
    """Context manager recording one span (no-op unless tracing)."""

    __slots__ = ("name", "attrs", "id", "_parent", "_token",
                 "_start", "_wall0", "_cpu0")

    def __init__(self, name, **attrs):
        self.name = name
        self.attrs = attrs
        self.id = None

    def __enter__(self):
        if not _TRACING:
            return self
        parent = _current.get()
        if parent is not None:
            self._parent = parent.id
        else:
            bound = _ctx_trace.get()
            self._parent = bound[1] if bound is not None else _root_parent
        self.id = f"{os.getpid()}:{next(_ids)}"
        self._token = _current.set(self)
        self._start = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.id is None:
            return False
        _current.reset(self._token)
        bound = _ctx_trace.get()
        record = {
            "name": self.name,
            "id": self.id,
            "parent": self._parent,
            "trace": bound[0] if bound is not None else _trace_id,
            "process": _process,
            "pid": os.getpid(),
            "start": self._start,
            "wall_s": time.perf_counter() - self._wall0,
            "cpu_s": time.process_time() - self._cpu0,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = {
                key: value if isinstance(
                    value, (bool, int, float, str, type(None))
                ) else str(value)
                for key, value in self.attrs.items()
            }
        _finished.append(record)
        for sink in list(_sinks):
            try:
                sink(record)
            except Exception:
                pass
        self.id = None
        return False

    def set(self, **attrs):
        """Attach attributes to an open span (no-op when disabled)."""
        if self.id is not None:
            self.attrs.update(attrs)
        return self


# ----------------------------------------------------------------------
# Renderers.
# ----------------------------------------------------------------------

def render_tree(records, width=52):
    """Indented span tree with wall/CPU timings and owning process."""
    if not records:
        return "(no spans recorded)"
    by_id = {record["id"]: record for record in records}
    children = {}
    roots = []
    for record in records:
        parent = record.get("parent")
        if parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    roots.sort(key=lambda r: r.get("start", 0.0))

    lines = [f"{'span':<{width}} {'wall':>9} {'cpu':>9}  process"]
    def walk(record, depth):
        label = "  " * depth + record["name"]
        attrs = record.get("attrs") or {}
        if attrs:
            label += " (" + ", ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            ) + ")"
        if len(label) > width:
            label = label[: width - 1] + "…"
        error = " !" + record["error"] if record.get("error") else ""
        lines.append(
            f"{label:<{width}} {record['wall_s']:8.3f}s "
            f"{record['cpu_s']:8.3f}s  {record['process']}{error}"
        )
        for child in sorted(
            children.get(record["id"], ()),
            key=lambda r: r.get("start", 0.0),
        ):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def to_chrome(records):
    """Chrome ``trace_event`` document (load in about://tracing)."""
    events = []
    tids = {}
    for record in records or []:
        process = record.get("process", "main")
        tids.setdefault(process, len(tids) + 1)
    for process, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": process},
        })
    for record in records or []:
        events.append({
            "name": record.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "pid": 1,
            "tid": tids.get(record.get("process", "main"), 1),
            "ts": record.get("start", 0.0) * 1e6,
            "dur": record.get("wall_s", 0.0) * 1e6,
            "args": dict(record.get("attrs") or {},
                         cpu_s=record.get("cpu_s", 0.0),
                         span_id=record.get("id"),
                         parent=record.get("parent")),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
