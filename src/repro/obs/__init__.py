"""``repro.obs`` -- tracing, metrics, and structured logging in one place.

Three instruments, one switchboard:

- :func:`get_logger` -- structured events with levels, rendered as
  human lines (stderr) and/or JSONL (the state directory);
- :func:`span` -- hierarchical wall/CPU timing that nests across the
  engine's process-pool boundary and exports as a span tree or Chrome
  ``trace_event`` JSON;
- :func:`registry` -- counters/gauges/histograms with Prometheus-text
  and JSONL exporters.

Everything is **off by default** and costs one module-global check on
the disabled path, so library users and the tier-1 tests pay nothing.
The CLI turns collection on per run::

    repro yield --profile --jobs 4     # span tree + metrics summary
    repro obs summary | export | tail  # inspect the persisted run

Library code guards its folds with :func:`active` and opens spans
unconditionally (a disabled span is a no-op)::

    from repro import obs

    with obs.span("fab.wafer_yield", core=core):
        ...
        if obs.active():
            obs.registry().counter("fab_dies_probed_total").inc(n)
"""

import os
import time

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs import state as _state
from repro.obs.logging import (  # noqa: F401
    LEVELS,
    Logger,
    configure_logging,
    current_level,
    get_logger,
    level_number,
    render_log_records,
    reset_logging,
    tail_log,
)
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    Registry,
    render_metrics_jsonl,
    render_prometheus,
)
from repro.obs.spans import (  # noqa: F401
    activate_worker,
    adopt_spans,
    collected_spans,
    current_trace_id,
    drain_spans,
    drain_trace,
    enable_tracing,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    pop_trace,
    push_trace,
    render_tree,
    span,
    start_tracing,
    stop_tracing,
    to_chrome,
    trace_context,
    tracing_enabled,
)
from repro.obs.state import (  # noqa: F401
    DEFAULT_STATE_DIRNAME,
    STATE_DIR_ENV,
    state_dir,
)

__all__ = [
    "active", "activate_worker", "adopt_spans", "collected_spans",
    "configure", "current_trace_id", "drain_spans", "drain_trace",
    "enable_tracing", "engine_bridge", "export_text",
    "format_traceparent", "get_logger", "load_snapshot", "new_trace_id",
    "parse_traceparent", "persist_snapshot", "pop_trace", "push_trace",
    "registry", "render_metrics_jsonl", "render_prometheus",
    "render_tree", "reset", "span", "start_tracing", "state_dir",
    "stop_tracing", "summary", "to_chrome", "trace_context",
    "tracing_enabled", "update_process_gauges",
]

#: Process-wide metrics collection flag (spans have their own in
#: :mod:`repro.obs.spans`); ``active()`` is the library's guard.
_metrics_active = False
_registry = _metrics.Registry()
_state_root = None   # None -> $REPRO_STATE_DIR / .repro-state


def active():
    """True when metric folds should run (the disabled fast path)."""
    return _metrics_active


def registry():
    """The process-wide metrics :class:`~repro.obs.metrics.Registry`."""
    return _registry


def configure(metrics=None, trace=None, log_level=None, quiet=None,
              log_stream="unset", state_root="unset", persist_log=None):
    """Turn instruments on/off (partial updates, like a switchboard).

    ``metrics``/``trace`` enable the registry folds and span
    recording; ``log_level`` ("debug".."error") sets the logging
    threshold and ``quiet=True`` forces it to "error"; ``persist_log``
    mirrors log events into ``<state>/log.jsonl``.
    """
    global _metrics_active, _state_root
    if state_root != "unset":
        _state_root = state_root
    if metrics is not None:
        _metrics_active = bool(metrics)
    if trace is not None:
        if trace:
            _spans.start_tracing()
        else:
            _spans.stop_tracing()
    level = "error" if quiet else log_level
    configure_logging(
        level=level, stream=log_stream,
        jsonl_root=(_resolved_root() if persist_log else None)
        if persist_log is not None else "unset",
    )


def reset():
    """Back to the all-off defaults; clears collected spans/metrics.

    The flight recorder ring is emptied but stays *enabled* -- it is
    the always-on instrument, part of the baseline the overhead
    benchmarks measure.
    """
    global _metrics_active, _state_root
    _metrics_active = False
    _state_root = None
    _registry.reset()
    _spans.reset_spans()
    reset_logging()
    from repro.obs import flight as _flight
    _flight.clear()


def _resolved_root():
    return str(_state.state_dir(_state_root))


# ----------------------------------------------------------------------
# Worker-process transport (used by the engine scheduler).
# ----------------------------------------------------------------------

def worker_context():
    """What a pool worker needs to continue this process's collection,
    or ``None`` when every instrument is off (ships nothing)."""
    if not (_metrics_active or _spans.tracing_enabled()):
        return None
    return {
        "metrics": _metrics_active,
        "trace": _spans.trace_context(),
    }


def enter_worker(context):
    """Adopt a shipped :func:`worker_context` inside a worker."""
    global _metrics_active
    _metrics_active = bool(context.get("metrics"))
    _registry.reset()
    if context.get("trace") is not None:
        _spans.activate_worker(context["trace"])
    else:
        _spans.stop_tracing()


def leave_worker():
    """Collect everything recorded since :func:`enter_worker`."""
    payload = {
        "spans": _spans.drain_spans(),
        "metrics": _registry.snapshot() if _metrics_active else None,
    }
    _registry.reset()
    return payload


def absorb(payload):
    """Merge a worker's :func:`leave_worker` payload into this process."""
    if not payload:
        return
    _spans.adopt_spans(payload.get("spans"))
    if payload.get("metrics"):
        _registry.merge(payload["metrics"])


def engine_bridge():
    from repro.obs.bridge import engine_event

    return engine_event


# ----------------------------------------------------------------------
# Standard process gauges (stock-Prometheus dashboard compatibility).
# ----------------------------------------------------------------------

_PROCESS_START = time.time()


def _resident_memory_bytes():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return rss_kb if rss_kb > 1 << 32 else rss_kb * 1024
    except Exception:
        return None


def _open_fds():
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def update_process_gauges(target=None):
    """Refresh ``process_*`` gauges in ``target`` (default: the
    process registry); called before every scrape/persist."""
    target = target or _registry
    target.gauge(
        "process_uptime_seconds", "Seconds since process start",
    ).set(time.time() - _PROCESS_START)
    rss = _resident_memory_bytes()
    if rss is not None:
        target.gauge(
            "process_resident_memory_bytes", "Resident set size",
        ).set(rss)
    fds = _open_fds()
    if fds is not None:
        target.gauge(
            "process_open_fds", "Open file descriptors",
        ).set(fds)
    return target


# ----------------------------------------------------------------------
# Summaries, persistence, exports.
# ----------------------------------------------------------------------

def _counter_total(snapshot, name):
    return sum(
        entry["value"]
        for entry in snapshot.get(name, {}).get("values", [])
    )


def _counter_by_label(snapshot, name, label):
    by = {}
    for entry in snapshot.get(name, {}).get("values", []):
        key = entry.get("labels", {}).get(label, "")
        by[key] = by.get(key, 0) + entry["value"]
    return by


def summary(snapshot=None):
    """Human metrics summary (the ``--profile`` / ``obs summary`` view)."""
    snapshot = snapshot if snapshot is not None else _registry.snapshot()
    instructions = _counter_total(snapshot, "sim_instructions_total")
    gate_evals = _counter_total(snapshot, "gate_evaluations_total")
    probed = _counter_total(snapshot, "fab_dies_probed_total")
    passed = _counter_total(snapshot, "fab_dies_pass_total")
    failures = _counter_by_label(
        snapshot, "fab_die_failures_total", "mode"
    )
    hits = _counter_total(snapshot, "engine_cache_hits_total")
    misses = _counter_total(snapshot, "engine_cache_misses_total")
    looked_up = hits + misses
    lines = [
        f"instructions retired: {instructions:,}",
        f"gate evaluations:     {gate_evals:,}",
        f"dies tested:          {probed:,}"
        + (f" ({passed:,} pass"
           + "".join(f", {count:,} fail {mode}"
                     for mode, count in sorted(failures.items()))
           + ")" if probed else ""),
        f"engine cache:         {hits}/{looked_up} hits"
        + (f" ({100 * hits / looked_up:.0f}% hit rate)"
           if looked_up else ""),
    ]
    designs = _counter_total(snapshot, "dse_designs_evaluated_total")
    if designs:
        lines.append(f"designs evaluated:    {designs:,}")
    shown = {
        "sim_instructions_total", "gate_evaluations_total",
        "fab_dies_probed_total", "fab_dies_pass_total",
        "fab_die_failures_total", "engine_cache_hits_total",
        "engine_cache_misses_total", "dse_designs_evaluated_total",
    }
    others = [
        name for name, data in sorted(snapshot.items())
        if name not in shown and data.get("kind") != "histogram"
    ]
    for name in others:
        lines.append(f"{name}: {_counter_total(snapshot, name):,}")
    for name, data in sorted(snapshot.items()):
        if data.get("kind") != "histogram":
            continue
        for entry in data.get("values", []):
            count = entry.get("count", 0)
            if not count:
                continue
            mean = entry.get("sum", 0.0) / count
            label = "".join(
                f" {k}={v}"
                for k, v in sorted(entry.get("labels", {}).items())
            )
            lines.append(
                f"{name}{label}: n={count} mean={mean:.4f}s "
                f"total={entry.get('sum', 0.0):.3f}s"
            )
    return "\n".join(lines)


def persist_snapshot(root=None):
    """Write the registry snapshot and collected spans to the state
    directory (what ``repro obs summary|export`` reads back)."""
    root = root if root is not None else _state_root
    update_process_gauges()
    snapshot = _registry.snapshot()
    _state.write_json(
        _state.METRICS_FILE,
        {"written": time.time(), "metrics": snapshot},
        root=root,
    )
    _state.write_jsonl(
        _state.SPANS_FILE, _spans.collected_spans(), root=root
    )
    return snapshot


def load_snapshot(root=None):
    """(metrics snapshot, span records) persisted by the last run."""
    root = root if root is not None else _state_root
    document = _state.read_json(_state.METRICS_FILE, root=root) or {}
    spans = _state.read_jsonl(_state.SPANS_FILE, root=root)
    return document.get("metrics", {}), spans


def export_text(format, snapshot=None, spans=None):
    """Render metrics/spans in one of the supported export formats."""
    if snapshot is None and spans is None:
        snapshot, spans = load_snapshot()
    snapshot = snapshot or {}
    spans = spans or []
    if format == "prometheus":
        return render_prometheus(snapshot)
    if format == "jsonl":
        return render_metrics_jsonl(snapshot)
    if format == "chrome":
        import json

        return json.dumps(to_chrome(spans), indent=2)
    raise ValueError(
        f"unknown export format {format!r}; "
        "choose prometheus, jsonl, or chrome"
    )


# ----------------------------------------------------------------------
# The always-on flight recorder taps in at import time (docs in
# repro.obs.flight).  Last, so every module it hooks exists.
# ----------------------------------------------------------------------

from repro.obs import flight  # noqa: E402,F401

flight.install()
