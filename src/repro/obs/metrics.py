"""The metrics registry: counters, gauges, histograms.

Instruments are named, optionally labelled, and process-local; worker
processes run their own registry and the engine merges the deltas back
(see :func:`Registry.merge`), so a parallel run's totals equal the
serial run's.

Snapshots are plain dicts -- everything downstream (the Prometheus and
JSONL renderers, persistence, merging) operates on snapshots, so a
persisted run exports exactly like a live one.
"""

import json
import math

#: Default histogram bucket upper bounds, seconds-flavoured log scale.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _label_key(labels):
    return tuple(sorted(labels.items()))


def _label_dict(key):
    return dict(key)


class Counter:
    """A monotonically increasing total, optionally labelled."""

    __slots__ = ("name", "help", "_values")
    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._values = {}

    def inc(self, amount=1, **labels):
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels):
        return self._values.get(_label_key(labels), 0)

    def total(self):
        return sum(self._values.values())

    def snapshot(self):
        return {
            "kind": self.kind, "help": self.help,
            "values": [
                {"labels": _label_dict(key), "value": value}
                for key, value in sorted(self._values.items())
            ],
        }


class Gauge(Counter):
    """A point-in-time value; ``set`` replaces, ``inc`` still adds."""

    __slots__ = ()
    kind = "gauge"

    def set(self, value, **labels):
        self._values[_label_key(labels)] = value


class Histogram:
    """Bucketed observations with sum and count, optionally labelled."""

    __slots__ = ("name", "help", "buckets", "_series")
    kind = "histogram"

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(buckets)
        self._series = {}

    def _cell(self, labels):
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            cell = self._series[key] = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0, "count": 0,
            }
        return cell

    def observe(self, value, **labels):
        cell = self._cell(labels)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                cell["counts"][index] += 1
                break
        else:
            cell["counts"][-1] += 1
        cell["sum"] += value
        cell["count"] += 1

    def count(self, **labels):
        return self._series.get(_label_key(labels), {}).get("count", 0)

    def quantile(self, q, **labels):
        """Estimated ``q``-quantile for one labelled cell (seconds)."""
        cell = self._series.get(_label_key(labels))
        if not cell:
            return 0.0
        return histogram_quantile(q, self.buckets, cell["counts"])

    def mean(self, **labels):
        cell = self._series.get(_label_key(labels))
        if not cell or not cell["count"]:
            return 0.0
        return cell["sum"] / cell["count"]

    def snapshot(self):
        return {
            "kind": self.kind, "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {"labels": _label_dict(key), "counts": cell["counts"],
                 "sum": cell["sum"], "count": cell["count"]}
                for key, cell in sorted(self._series.items())
            ],
        }


class Registry:
    """A namespace of instruments, snapshot-able and merge-able."""

    def __init__(self):
        self._instruments = {}

    def _get(self, cls, name, help, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help=help, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name, help=""):
        return self._get(Counter, name, help)

    def gauge(self, name, help=""):
        return self._get(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return self._get(Histogram, name, help, buckets=buckets)

    def names(self):
        return sorted(self._instruments)

    def reset(self):
        self._instruments.clear()

    # -- snapshots -----------------------------------------------------

    def snapshot(self):
        """{metric name: instrument snapshot} for every instrument."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def merge(self, snapshot):
        """Fold a (worker's) snapshot into this registry.

        Counters and histogram cells add; gauges take the incoming
        value (last write wins).
        """
        for name, data in (snapshot or {}).items():
            kind = data.get("kind", "counter")
            if kind == "histogram":
                histogram = self.histogram(
                    name, help=data.get("help", ""),
                    buckets=tuple(data.get("buckets", DEFAULT_BUCKETS)),
                )
                for entry in data.get("values", []):
                    cell = histogram._cell(entry.get("labels", {}))
                    counts = entry.get("counts", [])
                    if len(counts) == len(cell["counts"]):
                        cell["counts"] = [
                            a + b for a, b in zip(cell["counts"], counts)
                        ]
                    cell["sum"] += entry.get("sum", 0.0)
                    cell["count"] += entry.get("count", 0)
                continue
            if kind == "gauge":
                gauge = self.gauge(name, help=data.get("help", ""))
                for entry in data.get("values", []):
                    gauge.set(entry["value"], **entry.get("labels", {}))
                continue
            counter = self.counter(name, help=data.get("help", ""))
            for entry in data.get("values", []):
                counter.inc(entry["value"], **entry.get("labels", {}))


def histogram_quantile(q, buckets, counts):
    """Estimate the ``q``-quantile from per-bucket counts.

    ``buckets`` are the upper bounds, ``counts`` the per-bucket (not
    cumulative) observation counts with the overflow bucket last --
    exactly a :class:`Histogram` cell.  Linear interpolation within
    the containing bucket, Prometheus-style; the overflow bucket
    reports its lower bound (there is no upper edge to interpolate
    toward).  Returns 0.0 when the cell is empty.
    """
    total = sum(counts)
    if not total:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts[:-1]):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count:
            low = buckets[index - 1] if index else 0.0
            high = buckets[index]
            fraction = (rank - previous) / count
            return low + (high - low) * fraction
    return float(buckets[-1])


# ----------------------------------------------------------------------
# Renderers (operate on snapshots, so persisted == live).
# ----------------------------------------------------------------------

def _prom_labels(labels):
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _prom_escape(value):
    return str(value).replace("\\", r"\\").replace('"', r'\"') \
        .replace("\n", r"\n")


def _prom_number(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(snapshot):
    """Prometheus text exposition format (0.0.4) of a snapshot."""
    lines = []
    for name, data in sorted((snapshot or {}).items()):
        kind = data.get("kind", "counter")
        if data.get("help"):
            lines.append(f"# HELP {name} {data['help']}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            buckets = data.get("buckets", [])
            for entry in data.get("values", []):
                labels = entry.get("labels", {})
                cumulative = 0
                for bound, count in zip(buckets, entry.get("counts", [])):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(dict(labels, le=_prom_number(float(bound))))}"
                        f" {cumulative}"
                    )
                cumulative += entry.get("counts", [0])[-1] \
                    if entry.get("counts") else 0
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(dict(labels, le='+Inf'))} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} "
                    f"{_prom_number(entry.get('sum', 0.0))}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} "
                    f"{entry.get('count', 0)}"
                )
            continue
        for entry in data.get("values", []):
            lines.append(
                f"{name}{_prom_labels(entry.get('labels', {}))} "
                f"{_prom_number(entry['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_jsonl(snapshot):
    """One JSON object per metric sample."""
    lines = []
    for name, data in sorted((snapshot or {}).items()):
        kind = data.get("kind", "counter")
        for entry in data.get("values", []):
            record = {"metric": name, "kind": kind,
                      "labels": entry.get("labels", {})}
            if kind == "histogram":
                record.update(
                    count=entry.get("count", 0),
                    sum=entry.get("sum", 0.0),
                    buckets=data.get("buckets", []),
                    counts=entry.get("counts", []),
                )
            else:
                record["value"] = entry["value"]
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")
