"""Folding the engine's event stream into the observability layer.

The scheduler already narrates itself through hook events
(``job_done`` / ``stage_done`` / ``degraded`` / ``cancelled``).  This
module is the one hook every :class:`~repro.engine.scheduler.Engine`
installs: it forwards the stream to the structured logger (debug for
jobs, info for stages, warning for degradation) and -- when metrics
collection is on -- folds the same events into the registry, so the
engine's private ``EngineMetrics`` and the process-wide registry can
never disagree about what ran.

It is also the process-wide tap point: :func:`subscribe` registers a
callback that receives every engine event from every engine in the
process, which is how ``repro.service`` streams per-job progress to
HTTP clients without the scheduler knowing the service exists.
"""

import itertools

from repro.obs.logging import get_logger

_log = get_logger("repro.engine")

#: {token: callback} of live :func:`subscribe` registrations.
_subscribers = {}
_tokens = itertools.count(1)


def subscribe(callback):
    """Register ``callback(event, payload)`` for every engine event.

    The callback runs in whatever thread executed the engine hook
    (the thread that called ``Engine.run``), so subscribers that fan
    into shared state must do their own locking.  A callback that
    raises is dropped, like any engine hook.  Returns a token for
    :func:`unsubscribe`.
    """
    token = next(_tokens)
    _subscribers[token] = callback
    return token


def unsubscribe(token):
    """Remove a :func:`subscribe` registration (unknown tokens no-op)."""
    _subscribers.pop(token, None)


def _fan_out(event, payload):
    for token, callback in list(_subscribers.items()):
        try:
            callback(event, payload)
        except Exception:
            _subscribers.pop(token, None)


def engine_event(event, payload):
    """The always-installed engine hook (logging + metrics fold)."""
    from repro import obs
    from repro.obs import spans as _spans

    trace_id = _spans.current_trace_id()
    if trace_id is not None and "trace_id" not in payload:
        payload["trace_id"] = trace_id

    _fan_out(event, payload)

    if event == "job_done":
        _log.debug(
            f"{payload['label']}: {payload['status']}",
            elapsed_s=payload.get("elapsed_s", 0.0),
            where=payload.get("where", "?"),
            attempts=payload.get("attempts", 0),
        )
        if obs.active():
            registry = obs.registry()
            registry.counter(
                "engine_jobs_total",
                "Engine jobs by completion status and venue",
            ).inc(status=payload["status"],
                  where=payload.get("where", "?"))
            if payload["status"] == "cached":
                registry.counter(
                    "engine_cache_hits_total",
                    "Engine jobs answered from the result cache",
                ).inc()
            elif payload["status"] == "completed":
                registry.counter(
                    "engine_cache_misses_total",
                    "Engine jobs actually computed",
                ).inc()
                registry.histogram(
                    "engine_job_seconds",
                    "Per-job compute wall time",
                ).observe(payload.get("elapsed_s", 0.0))
    elif event == "stage_done":
        _log.info(
            f"stage {payload['stage']} done",
            jobs=payload.get("jobs", 0),
            cache_hits=payload.get("cache_hits", 0),
            wall_s=payload.get("wall_s", 0.0),
        )
        if obs.active():
            registry = obs.registry()
            registry.counter(
                "engine_stages_total", "Engine stages run",
            ).inc(stage=payload.get("stage", "?"))
            registry.histogram(
                "engine_stage_seconds", "Per-stage wall time",
            ).observe(payload.get("wall_s", 0.0))
    elif event == "degraded":
        _log.warning(
            "degraded to serial", reason=payload.get("reason", "?")
        )
        if obs.active():
            obs.registry().counter(
                "engine_degraded_total",
                "Runs degraded from the process pool to serial",
            ).inc()
    elif event == "cancelled":
        _log.warning(
            "run cancelled", reason=payload.get("reason", "?")
        )
        if obs.active():
            obs.registry().counter(
                "engine_cancelled_total", "Engine runs cancelled",
            ).inc()
