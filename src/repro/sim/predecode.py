"""Predecoded program tables: decode once, dispatch many.

FlexiCore programs are tiny (at most sixteen 128-byte pages) and hot --
every kernel evaluation, fault-campaign oracle and DSE sweep re-executes
the same few hundred bytes millions of times.  The reference
:meth:`~repro.sim.simulator.Simulator.step` loop re-decodes the
instruction under the PC on every cycle; this module instead decodes
each page **once** per ``(isa, image)`` into a dense per-offset table of
bound semantic functions, so the execution loop in
:mod:`repro.sim.dispatch` becomes a table lookup plus one call.

A :class:`PageTable` holds parallel per-offset lists (function,
operands, size, fall-through PC, branch flag, ...) rather than per-offset
objects, so the hot loop indexes flat lists.  Offsets whose bytes do not
decode store an error message instead -- the fault is raised only if the
PC actually lands there, exactly like the lazy reference fetch.

Windows wrap within the page like the hardware PC does (the same
semantics as :meth:`repro.sim.memory.ProgramMemory.fetch_window`), and
pages beyond the image decode as zero-filled ROM.  MMU page switches
become a table swap instead of any kind of cache flush.

Tables are memoized per ISA instance (weakly) and per image, and the
build/hit traffic is visible through the ``sim_predecode_*`` obs
counters.
"""

from collections import OrderedDict
from weakref import WeakKeyDictionary

from repro import obs
from repro.asm.assembler import MAX_PAGES, PAGE_SIZE
from repro.isa.model import InstrClass, OperandKind

#: Retained predecoded images per ISA instance (LRU beyond this).
MAX_CACHED_IMAGES = 128

#: Longest instruction window, matching ``ProgramMemory.fetch_window``.
WINDOW_BYTES = 4

#: The memory-mapped port addresses (kept local to avoid an import
#: cycle with :mod:`repro.isa.state`; asserted against it in tests).
_IPORT_ADDR = 0
_OPORT_ADDR = 1


class _DecodeFault(Exception):
    """Raised by the table entry of an undecodable offset; the dispatch
    loop converts it to a :class:`~repro.sim.simulator.SimulationError`
    with the flat page address (which only the loop knows -- the zero-ROM
    table is shared by every out-of-image page)."""


class PageTable:
    """Dense decode table for one 128-byte page.

    All attributes are 128-entry lists indexed by page-local PC:

    - ``fns`` / ``opss``: the spec's execute function and its operand
      tuple (an undecodable offset holds a closure raising
      :class:`_DecodeFault`, so the hot loop needs no validity check);
    - ``sizes``: instruction size in bytes;
    - ``falls``: the fall-through PC ``(pc + size) & pc_mask``;
    - ``branches``: True for :class:`~repro.isa.model.InstrClass` BRANCH;
    - ``specials``: True when the post-execute bookkeeping (taken-branch
      detection, halt check) must run -- branches and ``halt`` are the
      only instructions that can redirect or stop the machine;
    - ``syncs``: True when the instruction may write the output port, so
      the dispatch loop must sync ``stats.instructions`` first for the
      sink's cycle stamps (a conservative static over-approximation);
    - ``reads_iport``: True when the instruction architecturally samples
      the input bus (used by the cross-check replay to present IPORT);
    - ``decoded``: the full :class:`~repro.isa.model.DecodedInstruction`
      (``address`` is the page-local offset);
    - ``errors``: the decode-fault message for undecodable offsets.
    """

    __slots__ = ("fns", "opss", "sizes", "falls", "branches",
                 "specials", "syncs", "reads_iport", "decoded", "errors")

    def __init__(self):
        self.fns = [None] * PAGE_SIZE
        self.opss = [()] * PAGE_SIZE
        self.sizes = [0] * PAGE_SIZE
        self.falls = [0] * PAGE_SIZE
        self.branches = [False] * PAGE_SIZE
        self.specials = [False] * PAGE_SIZE
        self.syncs = [False] * PAGE_SIZE
        self.reads_iport = [False] * PAGE_SIZE
        self.decoded = [None] * PAGE_SIZE
        self.errors = [None] * PAGE_SIZE


class PredecodedProgram:
    """All page tables for one ``(isa, image)`` pair.

    ``pages`` always spans the full :data:`MAX_PAGES` address space the
    MMU's 4-bit page register can reach; pages past the image share one
    zero-ROM table per ISA.
    """

    __slots__ = ("isa", "image", "image_pages", "pages")

    def __init__(self, isa, image, pages, image_pages):
        self.isa = isa
        self.image = image
        self.image_pages = image_pages
        self.pages = pages

    def page(self, number):
        return self.pages[number]


def _decodes_iport_read(decoded):
    """Does this instruction architecturally read the input bus?

    Mirrors the cross-check replay's test: any non-store instruction
    with a memory-address operand naming the IPORT address (the
    load-store ISA reads input through its explicit ``in`` instruction,
    which carries no MEMADDR operand, so it reports False -- matching
    the replay, which only models memory-mapped IO cores).
    """
    if decoded.mnemonic == "store":
        return False
    return any(
        spec.kind is OperandKind.MEMADDR and operand == _IPORT_ADDR
        for spec, operand in zip(decoded.spec.operands, decoded.operands)
    )


def _may_write_output(decoded):
    """Could this instruction write the output port?

    Static over-approximation: any MEMADDR operand naming OPORT (reads
    of it are harmlessly included), or the load-store ISA's explicit
    ``out``.  Every ISA addresses memory through immediate operands, so
    no write site can escape this test.
    """
    if decoded.mnemonic == "out":
        return True
    return any(
        spec.kind is OperandKind.MEMADDR and operand == _OPORT_ADDR
        for spec, operand in zip(decoded.spec.operands, decoded.operands)
    )


def _fault_fn(message):
    def raise_fault(state, operands):
        raise _DecodeFault(message)
    return raise_fault


def _build_page(isa, page_bytes, pc_mask):
    """Decode every offset of one page into a :class:`PageTable`."""
    table = PageTable()
    wrapped = page_bytes + page_bytes[:WINDOW_BYTES - 1]
    for offset in range(PAGE_SIZE):
        window = wrapped[offset:offset + WINDOW_BYTES]
        try:
            decoded = isa.decode(window, 0)
        except Exception as exc:  # DecodeError, truncation, ...
            message = str(exc)
            table.errors[offset] = message
            table.fns[offset] = _fault_fn(message)
            continue
        # Re-anchor the decoded address at the page-local offset (decode
        # ran against a window starting at 0).
        decoded = type(decoded)(
            spec=decoded.spec, operands=decoded.operands,
            address=offset, raw=decoded.raw,
        )
        table.fns[offset] = decoded.spec.execute_fn
        table.opss[offset] = decoded.operands
        table.sizes[offset] = decoded.size
        table.falls[offset] = (offset + decoded.size) & pc_mask
        table.branches[offset] = decoded.spec.iclass is InstrClass.BRANCH
        # ``halt`` is the only non-branch instruction that stops the
        # machine; everything else needs no post-execute bookkeeping.
        table.specials[offset] = (
            table.branches[offset] or decoded.mnemonic == "halt"
        )
        table.syncs[offset] = _may_write_output(decoded)
        table.reads_iport[offset] = _decodes_iport_read(decoded)
        table.decoded[offset] = decoded
    return table


# isa -> OrderedDict[image bytes -> PredecodedProgram]  (LRU per ISA)
_CACHE = WeakKeyDictionary()
# isa -> the shared zero-ROM PageTable
_ZERO_PAGES = WeakKeyDictionary()


def _zero_page(isa):
    table = _ZERO_PAGES.get(isa)
    if table is None:
        table = _build_page(isa, bytes(PAGE_SIZE), (1 << isa.pc_bits) - 1)
        _ZERO_PAGES[isa] = table
    return table


def predecode_image(isa, image):
    """Return the (cached) :class:`PredecodedProgram` for ``isa``/``image``.

    ``image`` is the flat program-memory image (any length up to the
    16-page address space); the table covers every page the MMU can
    select, with out-of-image pages decoding as zero-filled ROM.
    """
    image = bytes(image)
    per_isa = _CACHE.get(isa)
    if per_isa is None:
        per_isa = OrderedDict()
        _CACHE[isa] = per_isa
    program = per_isa.get(image)
    if program is not None:
        per_isa.move_to_end(image)
        if obs.active():
            obs.registry().counter(
                "sim_predecode_hits_total",
                "Predecode-table cache hits",
            ).inc(isa=isa.name)
        return program

    pc_mask = (1 << isa.pc_bits) - 1
    image_pages = max(1, (len(image) + PAGE_SIZE - 1) // PAGE_SIZE)
    zero = _zero_page(isa)
    pages = []
    for number in range(image_pages):
        blob = image[number * PAGE_SIZE:(number + 1) * PAGE_SIZE]
        if not blob.strip(b"\x00"):
            pages.append(zero)
            continue
        blob = blob + bytes(PAGE_SIZE - len(blob))
        pages.append(_build_page(isa, blob, pc_mask))
    pages.extend([zero] * (MAX_PAGES - len(pages)))

    program = PredecodedProgram(isa, image, pages, image_pages)
    per_isa[image] = program
    while len(per_isa) > MAX_CACHED_IMAGES:
        per_isa.popitem(last=False)
    if obs.active():
        obs.registry().counter(
            "sim_predecode_builds_total",
            "Predecode tables built (one per new (isa, image))",
        ).inc(isa=isa.name)
    return program


def clear_cache():
    """Drop every memoized table (tests and memory-pressure hook)."""
    _CACHE.clear()
    _ZERO_PAGES.clear()
