"""IO peripherals attached to FlexiCore's asynchronous input/output buses.

The FlexiCore IO model (Section 3.3) is two unidirectional buses: reads of
data address 0 sample IPORT, writes to data address 1 drive OPORT.  The
peripherals here cover everything the benchmark suite needs:

- :class:`InputStream` -- a sensor/user feeding one value per read
  (pop semantics: each IPORT read consumes the next sample).
- :class:`HeldInput` -- a level-driven input that holds a value until the
  test bench changes it (multiple reads see the same sample).
- :class:`OutputSink` -- records every OPORT write with its cycle number.
"""


class InputExhausted(Exception):
    """An :class:`InputStream` was read past its last sample."""


class InputStream:
    """Sequential input samples; each IPORT read pops one.

    Parameters
    ----------
    samples:
        Iterable of integers (masked to the port width by the core).
    on_exhausted:
        ``"raise"`` (default) aborts the simulation -- the harness uses
        this to stop streaming kernels after N inputs; ``"hold"`` keeps
        returning the final sample; ``"zero"`` returns 0.
    """

    def __init__(self, samples, on_exhausted="raise"):
        if on_exhausted not in ("raise", "hold", "zero"):
            raise ValueError(f"bad on_exhausted: {on_exhausted!r}")
        self._samples = list(samples)
        self._index = 0
        self.on_exhausted = on_exhausted

    def __call__(self):
        if self._index < len(self._samples):
            value = self._samples[self._index]
            self._index += 1
            return value
        if self.on_exhausted == "raise":
            raise InputExhausted(
                f"input stream exhausted after {len(self._samples)} samples"
            )
        if self.on_exhausted == "hold" and self._samples:
            return self._samples[-1]
        return 0

    @property
    def consumed(self):
        return self._index

    @property
    def remaining(self):
        return len(self._samples) - self._index


class HeldInput:
    """A level-driven input bus: reads return the current level."""

    def __init__(self, value=0):
        self.value = value
        self.reads = 0

    def set(self, value):
        self.value = value

    def __call__(self):
        self.reads += 1
        return self.value


class OutputSink:
    """Records OPORT writes; the simulator stamps each with its cycle."""

    def __init__(self):
        self.values = []
        self.cycles = []
        self._clock = lambda: 0

    def bind_clock(self, clock_fn):
        self._clock = clock_fn

    def write(self, value):
        self.values.append(value)
        self.cycles.append(self._clock())

    def __call__(self, value):
        self.write(value)

    def __len__(self):
        return len(self.values)

    def last(self):
        if not self.values:
            raise IndexError("no output written yet")
        return self.values[-1]

    def clear(self):
        self.values.clear()
        self.cycles.clear()

    def as_bytes(self, width=4, order="little"):
        """Group consecutive values into wider words (e.g. two nibbles into
        a byte), for kernels that emit multi-word results."""
        if len(self.values) % 2:
            raise ValueError("odd number of output values")
        result = []
        for i in range(0, len(self.values), 2):
            lo, hi = self.values[i], self.values[i + 1]
            if order == "big":
                lo, hi = hi, lo
            result.append((hi << width) | lo)
        return result
