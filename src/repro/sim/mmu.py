"""The off-chip memory-management unit of Section 5.1.

Programs larger than the 128 instructions a 7-bit PC can address (e.g.
Calculator at 352 static instructions) rely on an off-chip MMU: a
finite-state transducer watching the FlexiCore's output port plus a
four-bit page register.  When the transducer recognizes a specific value
sequence on OPORT, it latches the next written value into the page
register "after a short delay", extending the program space to sixteen
128-instruction pages.

Protocol (chosen here; the paper does not publish one):

1. software writes the sentinel (0xA on a 4-bit port, 0xAA on an 8-bit
   port) to OPORT at least :data:`ARM_COUNT` times in a row -- further
   sentinel writes extend the run harmlessly;
2. the first *non-sentinel* write after an arming run is the new page
   number (consequently page 0xA cannot be selected through a 4-bit MMU
   -- the suite never places code there);
3. the page register updates after a short delay: the two instructions
   *after* the page write still fetch from the old page, giving software
   room to execute the in-page branch that lands it at the desired
   location of the new page (the ``%farjump`` macro emits exactly this).

Like the NES memory-mapper controllers the paper cites, the escape
sequence rides on the normal output bus, so the transducer must coexist
with programs that emit the sentinel as data.  The run-based design makes
this safe under one discipline, which every multi-page kernel in the
suite satisfies: *a program must never emit the sentinel as data
``ARM_COUNT`` times in a row* (Calculator transactions are (value, flag)
pairs that cannot produce three 0xA in a row; Decision Tree labels stay
below 8; XorShift8's output stream is checked by the test suite to be
run-free).  A data sentinel immediately preceding a real escape simply
lengthens the run: when the page write arrives, the transducer forwards
the ``run - ARM_COUNT`` leading sentinels downstream as the data they
were.
"""

#: Consecutive sentinel writes required to arm the page latch.
ARM_COUNT = 3
#: Fetches of delay between the page write and the new page taking effect.
PAGE_SWITCH_DELAY = 2


class Mmu:
    """Finite-state page-switch transducer.

    Parameters
    ----------
    port_width:
        OPORT width in bits (4 or 8); sets the sentinel value.
    forward_escapes:
        When False (default), arming/page writes are consumed by the MMU
        and not forwarded to the downstream sink.
    """

    def __init__(self, port_width=4, forward_escapes=False,
                 arm_count=ARM_COUNT):
        self.sentinel = 0xA if port_width <= 4 else 0xAA
        self.forward_escapes = forward_escapes
        self.arm_count = arm_count
        self.page = 0
        self.page_switches = 0
        self._run = 0
        self._pending_page = None
        self._pending_delay = 0
        self._sink = None

    def attach(self, sink):
        """Interpose this MMU in front of an output callable/sink."""
        self._sink = sink
        return self

    @property
    def armed(self):
        return self._run >= self.arm_count

    # -- core-facing interface -------------------------------------------

    def observe_output(self, value):
        """Called for every OPORT write; runs the transducer."""
        if value == self.sentinel:
            self._run += 1
            if self.forward_escapes:
                self._forward(value)
            return
        if self.armed:
            # Page write.  Leading sentinels beyond the arm count were
            # program data that happened to precede the escape.
            if not self.forward_escapes:
                for _ in range(self._run - self.arm_count):
                    self._forward(self.sentinel)
            else:
                self._forward(value)
            self._pending_page = value & 0xF
            self._pending_delay = PAGE_SWITCH_DELAY
            self.page_switches += 1
            self._run = 0
            return
        # Short run: the withheld sentinels were ordinary data.
        if not self.forward_escapes:
            for _ in range(self._run):
                self._forward(self.sentinel)
        self._run = 0
        self._forward(value)

    def _forward(self, value):
        if self._sink is None:
            return
        if callable(self._sink):
            self._sink(value)
        else:
            self._sink.write(value)

    # -- fetch-side interface ---------------------------------------------

    def on_fetch(self):
        """Advance the page-switch delay; called once per instruction fetch.

        Returns the page the *current* fetch should use.
        """
        current = self.page
        if self._pending_page is not None:
            if self._pending_delay == 0:
                self.page = self._pending_page
                self._pending_page = None
                current = self.page
            else:
                self._pending_delay -= 1
        return current

    def reset(self):
        self.page = 0
        self.page_switches = 0
        self._run = 0
        self._pending_page = None
        self._pending_delay = 0
