"""Functional simulator for the FlexiCore family.

The simulator is instruction-accurate: it fetches through the (optional)
MMU, decodes with the ISA's decoder, runs the spec's semantic function and
collects the statistics the evaluation needs (dynamic instruction counts
by class, taken branches, fetched bytes).  Cycle counts for a particular
microarchitecture are derived from these statistics by
:mod:`repro.sim.timing`; for the fabricated single-cycle FlexiCores,
cycles == dynamic instructions == fetched bytes.

Halting.  The base FlexiCore ISA has no halt instruction (streaming
programs run forever), so the simulator recognizes the conventional
"branch to self" idle loop as completion, and also stops on the extended
ISAs' explicit ``halt``, on input-stream exhaustion, or at ``max_cycles``.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.isa.model import InstrClass
from repro.sim.dispatch import resolve_dispatch
from repro.sim.memory import ProgramMemory
from repro.sim.mmu import Mmu
from repro.sim.peripherals import OutputSink


class SimulationError(Exception):
    """The simulated program misbehaved (decode fault, runaway, ...)."""


@dataclass
class ExecStats:
    """Execution statistics accumulated by :class:`Simulator`."""

    instructions: int = 0
    fetched_bytes: int = 0
    taken_branches: int = 0
    by_class: Dict[str, int] = field(default_factory=dict)
    by_mnemonic: Dict[str, int] = field(default_factory=dict)
    by_size: Dict[int, int] = field(default_factory=dict)
    io_reads: int = 0
    io_writes: int = 0
    page_switches: int = 0

    def record(self, decoded, taken=False):
        self.instructions += 1
        self.fetched_bytes += decoded.size
        if taken:
            self.taken_branches += 1
        iclass = decoded.spec.iclass.value
        self.by_class[iclass] = self.by_class.get(iclass, 0) + 1
        self.by_size[decoded.size] = self.by_size.get(decoded.size, 0) + 1
        mnem = decoded.mnemonic
        self.by_mnemonic[mnem] = self.by_mnemonic.get(mnem, 0) + 1

    @property
    def branch_fraction(self):
        if not self.instructions:
            return 0.0
        return self.by_class.get(InstrClass.BRANCH.value, 0) / self.instructions


@dataclass
class RunResult:
    """Outcome of a :meth:`Simulator.run` call."""

    stats: ExecStats
    halted: bool
    reason: str  # 'halt' | 'self_branch' | 'input_exhausted' | 'max_cycles'

    @property
    def instructions(self):
        return self.stats.instructions


class Simulator:
    """Drives one core: ISA + program memory + peripherals.

    Parameters
    ----------
    isa:
        An :class:`repro.isa.model.ISA` instance.
    program:
        A :class:`repro.asm.Program`, a raw bytes image, or a
        :class:`ProgramMemory`.
    input_fn:
        Callable returning input-bus samples (e.g. an
        :class:`~repro.sim.peripherals.InputStream`).
    output:
        An :class:`~repro.sim.peripherals.OutputSink` (or any callable).
    use_mmu:
        Attach the Section 5.1 page-switch MMU.  Enabled automatically
        when the program occupies more than one page.
    halt_on_self_branch:
        Treat a taken branch whose target is its own address as program
        completion (the base-ISA halt idiom).

    Execution paths.  :meth:`run` drives the program through a pluggable
    :mod:`repro.sim.dispatch` strategy -- by default the predecoded fast
    path, which is bit-identical to the reference but decodes each page
    only once.  :meth:`step` is the single-step reference used for
    traces, debugging, and the ``"reference"`` dispatch.
    """

    def __init__(self, isa, program, input_fn=None, output=None,
                 use_mmu=None, halt_on_self_branch=True):
        self.isa = isa
        self.output = output if output is not None else OutputSink()
        if isinstance(program, ProgramMemory):
            self.memory = program
        else:
            image = program if isinstance(program, (bytes, bytearray)) \
                else program.image()
            if use_mmu is None:
                use_mmu = len(image) > 128
            mmu = Mmu(port_width=isa.word_bits) if use_mmu else None
            self.memory = ProgramMemory(image, mmu)
        self.mmu = self.memory.mmu
        self.state = isa.new_state()
        if input_fn is not None:
            self.state.input_fn = input_fn
        if self.mmu is not None:
            self.mmu.attach(self.output)
            self.state.output_fn = self.mmu.observe_output
        else:
            sink = self.output
            self.state.output_fn = (
                sink if callable(sink) else sink.write
            )
        self.halt_on_self_branch = halt_on_self_branch
        self.stats = ExecStats()
        #: Why the last halt happened; per-instance so a stale
        #: "self_branch" can never leak across simulators or resets.
        self._halt_reason = "halt"
        if hasattr(self.output, "bind_clock"):
            self.output.bind_clock(lambda: self.stats.instructions)

    # ------------------------------------------------------------------

    def step(self):
        """Execute one instruction.  Returns the decoded instruction.

        Raises :class:`SimulationError` on decode faults and propagates
        :class:`InputExhausted` from input peripherals.
        """
        state = self.state
        base, window = self.memory.fetch_window(state.pc)
        try:
            decoded = self.isa.decode(window, 0)
        except Exception as exc:
            raise SimulationError(
                f"decode fault at page address {base}: {exc}"
            ) from exc
        pc_before = state.pc
        self.isa.execute(state, decoded)
        taken = (
            decoded.spec.iclass == InstrClass.BRANCH
            and state.pc != ((pc_before + decoded.size) & state.pc_mask)
        )
        self.stats.record(decoded, taken)
        if (
            self.halt_on_self_branch
            and taken
            and state.pc == pc_before
        ):
            state.halted = True
            self._halt_reason = "self_branch"
        elif state.halted:
            self._halt_reason = "halt"
        return decoded

    def run(self, max_cycles=1_000_000, dispatch=None, fastpath=None):
        """Run until the program halts (see class docstring) or the cycle
        budget is exhausted.

        ``dispatch`` selects the execution strategy by name
        (``"predecode"`` / ``"reference"``; ``None`` uses the process
        default).  ``fastpath`` is boolean sugar: ``False`` forces the
        reference step loop, ``True`` the predecoded fast path.
        """
        if dispatch is None and fastpath is not None:
            dispatch = "predecode" if fastpath else "reference"
        runner = resolve_dispatch(dispatch)
        reason = runner(self, max_cycles)
        if self.mmu is not None:
            self.stats.page_switches = self.mmu.page_switches
        self.stats.io_reads = self.state.io_reads
        self.stats.io_writes = self.state.io_writes
        if obs.active():
            _fold_exec_stats(self.stats, reason)
        return RunResult(
            stats=self.stats,
            halted=self.state.halted,
            reason=reason,
        )

    def reset(self):
        self.state.reset()
        self.stats = ExecStats()
        self._halt_reason = "halt"
        if self.mmu is not None:
            self.mmu.reset()


def _fold_exec_stats(stats, reason):
    """Fold one finished run's statistics into the metrics registry.

    Stats accumulate locally during the (hot) fetch/execute loop; only
    this completion-time fold touches the registry, so a disabled run
    costs one boolean check.
    """
    registry = obs.registry()
    retired = registry.counter(
        "sim_instructions_total",
        "Retired instructions by mnemonic",
    )
    for mnemonic, count in stats.by_mnemonic.items():
        retired.inc(count, mnemonic=mnemonic)
    registry.counter(
        "sim_taken_branches_total", "Taken branches",
    ).inc(stats.taken_branches)
    registry.counter(
        "sim_fetched_bytes_total", "Program bytes fetched",
    ).inc(stats.fetched_bytes)
    registry.counter(
        "sim_page_switches_total", "MMU page switches",
    ).inc(stats.page_switches)
    registry.counter(
        "sim_io_total", "Architectural IO operations by direction",
    ).inc(stats.io_reads, direction="read")
    registry.counter(
        "sim_io_total", "Architectural IO operations by direction",
    ).inc(stats.io_writes, direction="write")
    registry.counter(
        "sim_runs_total", "Simulator runs by completion reason",
    ).inc(reason=reason)


def run_program(program, isa=None, inputs=None, max_cycles=1_000_000,
                on_exhausted="raise", fastpath=None):
    """One-shot helper: run ``program`` and return (RunResult, OutputSink).

    ``inputs`` may be an iterable of samples or a ready-made callable.
    ``fastpath=False`` forces the reference step loop (the default runs
    the predecoded dispatch, which is bit-identical and much faster).
    """
    from repro.sim.peripherals import InputStream

    if isa is None:
        isa = program.isa
    input_fn = None
    if inputs is not None:
        input_fn = (
            inputs if callable(inputs)
            else InputStream(inputs, on_exhausted=on_exhausted)
        )
    sink = OutputSink()
    simulator = Simulator(isa, program, input_fn=input_fn, output=sink)
    result = simulator.run(max_cycles=max_cycles, fastpath=fastpath)
    return result, sink
