"""Functional simulation: cores, program memory, MMU, peripherals, timing."""

from repro.sim.dispatch import (
    DISPATCHES,
    configure as configure_dispatch,
    default_dispatch,
    resolve_dispatch,
)
from repro.sim.memory import ProgramMemory
from repro.sim.predecode import (
    PredecodedProgram,
    clear_cache as clear_predecode_cache,
    predecode_image,
)
from repro.sim.mmu import ARM_COUNT, Mmu, PAGE_SWITCH_DELAY
from repro.sim.peripherals import (
    HeldInput,
    InputExhausted,
    InputStream,
    OutputSink,
)
from repro.sim.trace import TraceEntry, Tracer, trace_program
from repro.sim.simulator import (
    ExecStats,
    RunResult,
    SimulationError,
    Simulator,
    run_program,
)
from repro.sim.timing import (
    ExecutionEstimate,
    InfeasibleDesign,
    MicroArch,
    cycle_count,
    cycles_multicycle,
    cycles_pipelined,
    cycles_single_cycle,
    estimate,
    requires_multicycle_fetch,
)

__all__ = [
    "ARM_COUNT",
    "DISPATCHES",
    "ExecStats",
    "ExecutionEstimate",
    "HeldInput",
    "InfeasibleDesign",
    "InputExhausted",
    "InputStream",
    "MicroArch",
    "Mmu",
    "OutputSink",
    "PAGE_SWITCH_DELAY",
    "PredecodedProgram",
    "ProgramMemory",
    "RunResult",
    "SimulationError",
    "Simulator",
    "TraceEntry",
    "Tracer",
    "clear_predecode_cache",
    "configure_dispatch",
    "cycle_count",
    "default_dispatch",
    "predecode_image",
    "resolve_dispatch",
    "trace_program",
    "cycles_multicycle",
    "cycles_pipelined",
    "cycles_single_cycle",
    "estimate",
    "requires_multicycle_fetch",
    "run_program",
]
