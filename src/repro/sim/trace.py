"""Execution tracing: cycle-by-cycle visibility into a simulated core.

Wraps a :class:`~repro.sim.simulator.Simulator` and records, for every
instruction: the page/PC, the disassembly, and the architectural state
after execution.  Useful for debugging kernels and for the docs'
worked examples; the formatter mirrors the waveform-style presentation
of the paper's Figure 5c.
"""

import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class TraceEntry:
    index: int
    page: int
    pc: int
    text: str
    acc: int
    carry: int
    mem: Tuple[int, ...]
    size: int
    oport: Optional[int]  # value written this step, if any

    def to_record(self):
        """Plain JSON-serializable dict form of this entry."""
        return asdict(self)

    @classmethod
    def from_record(cls, record):
        fields = dict(record)
        fields["mem"] = tuple(fields["mem"])
        return cls(**fields)

    def __str__(self):
        output = f" -> OPORT={self.oport:#x}" if self.oport is not None \
            else ""
        return (
            f"{self.index:5d}  {self.page}:{self.pc:<3d} "
            f"{self.text:<14} acc={self.acc:#3x} c={self.carry} "
            f"mem={list(self.mem)}{output}"
        )


class Tracer:
    """Records a bounded window of execution."""

    def __init__(self, simulator: Simulator, limit=10_000):
        self.simulator = simulator
        self.limit = limit
        self.entries: List[TraceEntry] = []
        self._writes_seen = 0

    def run(self, max_cycles=100_000):
        """Run the wrapped simulator to completion, tracing each step."""
        simulator = self.simulator
        state = simulator.state
        while (not state.halted
               and simulator.stats.instructions < max_cycles):
            page = simulator.memory.current_page()
            pc_before = state.pc
            writes_before = state.io_writes
            try:
                decoded = simulator.step()
            except Exception:
                raise
            oport = None
            if state.io_writes > writes_before:
                oport = state.mem[1]
            if len(self.entries) < self.limit:
                self.entries.append(TraceEntry(
                    index=simulator.stats.instructions - 1,
                    page=page,
                    pc=pc_before,
                    text=decoded.text(),
                    acc=state.acc,
                    carry=state.carry,
                    mem=tuple(state.mem),
                    size=decoded.size,
                    oport=oport,
                ))
        return self.entries

    def text(self, first=0, count=None):
        entries = self.entries[first:]
        if count is not None:
            entries = entries[:count]
        return "\n".join(str(entry) for entry in entries)

    def to_records(self):
        """All recorded entries as JSON-serializable dicts."""
        return [entry.to_record() for entry in self.entries]

    def to_jsonl(self):
        """The trace window as JSON Lines, one entry per line."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.to_records()
        )

    def taken_branch_targets(self):
        """PCs reached by taken branches -- handy for coverage checks."""
        targets = []
        previous = None
        for entry in self.entries:
            if previous is not None and entry.pc != (
                previous.pc + previous.size
            ) % 128:
                targets.append(entry.pc)
            previous = entry
        return targets


def entries_from_jsonl(text):
    """Parse a JSON Lines trace back into :class:`TraceEntry` objects.

    Inverse of :meth:`Tracer.to_jsonl`; blank lines are ignored so a
    trailing newline (or hand-edited file) round-trips cleanly.
    """
    return [
        TraceEntry.from_record(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def trace_program(program, isa=None, inputs=None, max_cycles=100_000,
                  limit=10_000):
    """One-shot convenience: trace a program, return (entries, outputs)."""
    from repro.sim.peripherals import InputStream, OutputSink
    from repro.sim.simulator import Simulator

    if isa is None:
        isa = program.isa
    sink = OutputSink()
    input_fn = None
    if inputs is not None:
        input_fn = InputStream(inputs, on_exhausted="hold")
    simulator = Simulator(isa, program, input_fn=input_fn, output=sink)
    tracer = Tracer(simulator, limit=limit)
    tracer.run(max_cycles=max_cycles)
    return tracer, sink.values
