"""Pluggable execution dispatch for the functional simulator.

Mirrors the :mod:`repro.netlist.backend` shape at the ISA level: a
*dispatch* is a named strategy for driving one
:class:`~repro.sim.simulator.Simulator` run to completion.  Two are
registered:

- ``"reference"`` -- the single-step :meth:`Simulator.step` loop, the
  bit-exact reference (fetch window, decode, execute, per-step stats);
- ``"predecode"`` -- the fast path: each page is decoded once into a
  :mod:`repro.sim.predecode` table, then a tight loop dispatches bound
  semantic functions, accumulating statistics in flat per-offset
  counters that fold into a bit-identical
  :class:`~repro.sim.simulator.ExecStats` at run end.

Consumers select a dispatch by name (or with the ``fastpath=`` sugar on
:meth:`Simulator.run` and friends); ``None`` resolves to the process
default, which the ``REPRO_SIM_DISPATCH`` environment variable or
:func:`configure` can override.
"""

import os

from repro.sim.memory import PAGE_SIZE
from repro.sim.peripherals import InputExhausted
from repro.sim.predecode import _DecodeFault, predecode_image

_DEFAULT_DISPATCH = "predecode"
_default_name = None  # None -> environment / library default

#: name -> runner(simulator, max_cycles) -> completion reason.
DISPATCHES = {}


def register_dispatch(name):
    """Decorator adding a run-loop implementation to the registry."""
    def decorate(fn):
        DISPATCHES[name] = fn
        return fn
    return decorate


def configure(default=None):
    """Install the process-wide default dispatch name.

    Returns the active default; ``configure()`` with no argument resets
    to the environment/library default.
    """
    global _default_name
    if default is not None and default not in DISPATCHES:
        raise ValueError(
            f"unknown dispatch {default!r}; choose from {sorted(DISPATCHES)}"
        )
    _default_name = default
    return default_dispatch()


def default_dispatch():
    """Name of the process-wide default dispatch."""
    if _default_name is not None:
        return _default_name
    return os.environ.get("REPRO_SIM_DISPATCH", _DEFAULT_DISPATCH)


def resolve_dispatch(name):
    """Map a dispatch spec (name or None) to its registered runner."""
    name = name or default_dispatch()
    try:
        return DISPATCHES[name]
    except KeyError:
        raise ValueError(
            f"unknown dispatch {name!r}; choose from {sorted(DISPATCHES)}"
        ) from None


# ----------------------------------------------------------------------
# Reference: the single-step loop (bit-exact, trace-friendly).
# ----------------------------------------------------------------------

@register_dispatch("reference")
def run_reference(simulator, max_cycles):
    """Drive :meth:`Simulator.step` until completion; the reference."""
    while simulator.stats.instructions < max_cycles:
        try:
            simulator.step()
        except InputExhausted:
            return "input_exhausted"
        if simulator.state.halted:
            return simulator._halt_reason
    return "max_cycles"


# ----------------------------------------------------------------------
# Fast path: predecoded table dispatch.
# ----------------------------------------------------------------------

@register_dispatch("predecode")
def run_predecoded(simulator, max_cycles):
    """Dispatch through predecoded page tables; bit-identical results.

    The loop touches no dicts and allocates nothing per instruction:
    per-offset execution counts and a taken-branch tally accumulate in
    flat locals and fold into ``simulator.stats`` only at run end.  Per
    instruction the common case is one attribute read (the PC), two
    table lookups, the bound semantic call, and a counter bump; the
    table's per-offset flags gate everything else:

    - ``stats.instructions`` is synced only before instructions that may
      write the output port (``syncs``), keeping sink cycle stamps
      identical to the reference;
    - taken-branch and halt bookkeeping runs only for branches and
      ``halt`` (``specials``) -- nothing else can redirect or stop the
      machine;
    - :meth:`Mmu.on_fetch` is called only while a page switch is
      pending; it is a pure read of the page register otherwise.
    """
    from repro.sim.simulator import SimulationError

    state = simulator.state
    if state.halted:
        # Resuming a halted core is a degenerate case with reference
        # semantics of its own (one instruction, then 'halt').
        return run_reference(simulator, max_cycles)
    stats = simulator.stats
    memory = simulator.memory
    mmu = memory.mmu
    halt_self = simulator.halt_on_self_branch
    program = predecode_image(simulator.isa, memory.image)
    tables = program.pages
    counts = [None] * len(tables)

    page = mmu.page if mmu is not None else 0
    table = tables[page]
    page_counts = counts[page] = [0] * PAGE_SIZE
    fns, opss = table.fns, table.opss
    branches, falls = table.branches, table.falls
    specials, syncs = table.specials, table.syncs
    base_addr = page * PAGE_SIZE

    n = stats.instructions
    taken = 0
    reason = "max_cycles"

    try:
        while n < max_cycles:
            if mmu is not None and mmu._pending_page is not None:
                # The delay counter only advances while a switch is
                # pending, so skipping on_fetch otherwise is exact.
                new_page = mmu.on_fetch()
                if new_page != page:
                    page = new_page
                    table = tables[page]
                    page_counts = counts[page]
                    if page_counts is None:
                        page_counts = counts[page] = [0] * PAGE_SIZE
                    fns, opss = table.fns, table.opss
                    branches, falls = table.branches, table.falls
                    specials, syncs = table.specials, table.syncs
                    base_addr = page * PAGE_SIZE
            pc = state.pc
            if syncs[pc]:
                stats.instructions = n
            fns[pc](state, opss[pc])
            n += 1
            page_counts[pc] += 1
            if specials[pc]:
                if branches[pc]:
                    new_pc = state.pc
                    if new_pc != falls[pc]:
                        taken += 1
                        if halt_self and new_pc == pc:
                            state.halted = True
                            reason = "self_branch"
                            break
                if state.halted:
                    reason = "halt"
                    break
    except InputExhausted:
        reason = "input_exhausted"
    except _DecodeFault as exc:
        stats.instructions = n
        _fold_counts(stats, tables, counts, taken)
        raise SimulationError(
            f"decode fault at page address {base_addr + state.pc}: {exc}"
        ) from None

    stats.instructions = n
    if state.halted:
        # Mirror what the reference step loop records, so the two paths
        # leave the simulator in an identical externally-visible state.
        simulator._halt_reason = reason
    _fold_counts(stats, tables, counts, taken)
    return reason


def _fold_counts(stats, tables, counts, taken):
    """Fold flat per-offset execution counts into ``ExecStats``.

    Produces exactly the totals the reference path's per-step
    ``ExecStats.record`` calls would (mnemonic/class/size histograms,
    fetched bytes, taken branches); only the dict key insertion order
    can differ, which dict equality ignores.
    """
    stats.taken_branches += taken
    by_class = stats.by_class
    by_mnemonic = stats.by_mnemonic
    by_size = stats.by_size
    fetched = 0
    for table, page_counts in zip(tables, counts):
        if page_counts is None:
            continue
        decoded_list = table.decoded
        sizes = table.sizes
        for offset, count in enumerate(page_counts):
            if not count:
                continue
            decoded = decoded_list[offset]
            size = sizes[offset]
            fetched += count * size
            iclass = decoded.spec.iclass.value
            by_class[iclass] = by_class.get(iclass, 0) + count
            by_size[size] = by_size.get(size, 0) + count
            mnemonic = decoded.mnemonic
            by_mnemonic[mnemonic] = by_mnemonic.get(mnemonic, 0) + count
    stats.fetched_bytes += fetched
