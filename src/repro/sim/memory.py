"""Program memory for FlexiCore systems.

FlexiCores store programs off-chip (Section 3.5): instructions arrive over
a dedicated instruction bus, and the 7-bit PC addresses one 128-byte page.
:class:`ProgramMemory` models the external memory chip; when paired with
an :class:`~repro.sim.mmu.Mmu` it serves multi-page programs.
"""

from repro.asm.assembler import MAX_PAGES, PAGE_SIZE


class ProgramMemory:
    """External program memory, optionally behind an MMU page register."""

    def __init__(self, image, mmu=None):
        """``image`` is a flat bytes object; page p occupies
        ``image[p*128:(p+1)*128]``."""
        if len(image) > MAX_PAGES * PAGE_SIZE:
            raise ValueError(
                f"image of {len(image)} bytes exceeds the "
                f"{MAX_PAGES}-page address space"
            )
        self._image = bytes(image)
        self.mmu = mmu

    @classmethod
    def from_program(cls, program, mmu=None):
        return cls(program.image(), mmu)

    @property
    def image(self):
        return self._image

    @property
    def pages(self):
        return (len(self._image) + PAGE_SIZE - 1) // PAGE_SIZE

    def current_page(self):
        return self.mmu.page if self.mmu is not None else 0

    def fetch_window(self, pc):
        """Return (flat_base_address, bytes) for one instruction fetch.

        Called once per instruction; advances the MMU's page-switch delay
        counter.  The returned window is long enough for the longest
        instruction and wraps within the page, like the hardware PC does.
        """
        page = self.mmu.on_fetch() if self.mmu is not None else 0
        base = page * PAGE_SIZE
        window = bytearray()
        for i in range(4):  # longest instruction is 2 bytes; margin for wrap
            addr = base + ((pc + i) & (PAGE_SIZE - 1))
            window.append(self._image[addr] if addr < len(self._image) else 0)
        return base + (pc & (PAGE_SIZE - 1)), bytes(window)
