"""Program memory for FlexiCore systems.

FlexiCores store programs off-chip (Section 3.5): instructions arrive over
a dedicated instruction bus, and the 7-bit PC addresses one 128-byte page.
:class:`ProgramMemory` models the external memory chip; when paired with
an :class:`~repro.sim.mmu.Mmu` it serves multi-page programs.
"""

from repro.asm.assembler import MAX_PAGES, PAGE_SIZE

#: What a fetch from a page the image never wrote returns: zero-filled
#: ROM, long enough for the longest instruction.
_WINDOW_BYTES = 4
_ZERO_WINDOW = bytes(_WINDOW_BYTES)


class ProgramMemory:
    """External program memory, optionally behind an MMU page register."""

    def __init__(self, image, mmu=None):
        """``image`` is a flat bytes object; page p occupies
        ``image[p*128:(p+1)*128]``."""
        if len(image) > MAX_PAGES * PAGE_SIZE:
            raise ValueError(
                f"image of {len(image)} bytes exceeds the "
                f"{MAX_PAGES}-page address space"
            )
        self._image = bytes(image)
        self.mmu = mmu
        self._windows = None

    def _build_windows(self):
        """Precompute every per-page wrap-around fetch window.

        One slice per page offset, built lazily on the first fetch, so
        :meth:`fetch_window` never assembles a window byte-by-byte on
        the per-instruction path -- and the predecoded dispatch, which
        never fetches, pays nothing at all.
        """
        windows = []
        for page in range(self.pages):
            blob = self._image[page * PAGE_SIZE:(page + 1) * PAGE_SIZE]
            blob = blob + bytes(PAGE_SIZE - len(blob))
            wrapped = blob + blob[:_WINDOW_BYTES - 1]
            windows.append([
                wrapped[offset:offset + _WINDOW_BYTES]
                for offset in range(PAGE_SIZE)
            ])
        return windows

    @classmethod
    def from_program(cls, program, mmu=None):
        return cls(program.image(), mmu)

    @property
    def image(self):
        return self._image

    @property
    def pages(self):
        return (len(self._image) + PAGE_SIZE - 1) // PAGE_SIZE

    def current_page(self):
        return self.mmu.page if self.mmu is not None else 0

    def fetch_window(self, pc):
        """Return (flat_base_address, bytes) for one instruction fetch.

        Called once per instruction; advances the MMU's page-switch delay
        counter.  The returned window is long enough for the longest
        instruction and wraps within the page, like the hardware PC does.
        Windows are precomputed per page, so this is two lookups; a page
        the image never wrote reads as zero-filled ROM.
        """
        page = self.mmu.on_fetch() if self.mmu is not None else 0
        offset = pc & (PAGE_SIZE - 1)
        windows = self._windows
        if windows is None:
            windows = self._windows = self._build_windows()
        window = windows[page][offset] if page < len(windows) \
            else _ZERO_WINDOW
        return page * PAGE_SIZE + offset, window
