"""Microarchitecture timing models (Sections 3.4 and 6.2).

The functional simulator reports *what* executed; these models translate
that into cycle counts for each microarchitecture the paper explores:

- **single-cycle (SC)** -- the fabricated FlexiCores: one instruction per
  cycle provided the program bus delivers a whole instruction per cycle.
- **two-stage pipeline (P)** -- fetch | decode+execute, with a one-cycle
  flush on every taken branch.
- **multicycle (MC)** -- separate fetch and execute cycles (the ALU adder
  is reused to increment the PC, which is why fetch and execute cannot
  overlap); the paper notes this "would double the core's CPI".

Every model takes the program-bus width: with FlexiCore's 8-bit bus a
16-bit load-store instruction needs two fetch cycles, which is what makes
the single-cycle and pipelined load-store machines infeasible in
Figure 13's "(Bus)" configuration.
"""

import enum
import math
from dataclasses import dataclass


class MicroArch(enum.Enum):
    SINGLE_CYCLE = "SC"
    PIPELINED = "P"
    MULTICYCLE = "MC"


class InfeasibleDesign(Exception):
    """The microarchitecture cannot be built under the given constraints
    (e.g. single-cycle execution with a bus narrower than an instruction).
    """


def _fetch_cycle_histogram(stats, bus_bits):
    """Map instruction-size (bytes) counts to per-instruction fetch cycles."""
    histogram = {}
    for size, count in stats.by_size.items():
        cycles = max(1, math.ceil(size * 8 / bus_bits))
        histogram[cycles] = histogram.get(cycles, 0) + count
    return histogram


def requires_multicycle_fetch(isa, bus_bits):
    """True when some instruction of ``isa`` cannot be fetched in a cycle."""
    max_size = max(spec.size for spec in isa.specs.values())
    return max_size * 8 > bus_bits


def cycles_single_cycle(stats, bus_bits=8, strict=False):
    """Cycle count on a single-cycle machine.

    With ``strict=True``, raises :class:`InfeasibleDesign` if any executed
    instruction needed more than one fetch cycle -- a single-cycle machine
    has no state to hold a partial fetch (Section 3.4: FlexiCore avoids
    bus multiplexing precisely to stay single-cycle).
    """
    histogram = _fetch_cycle_histogram(stats, bus_bits)
    if strict and any(cycles > 1 for cycles in histogram):
        raise InfeasibleDesign(
            f"single-cycle machine with a {bus_bits}-bit bus cannot fetch "
            f"multi-cycle instructions"
        )
    return sum(cycles * count for cycles, count in histogram.items())


def cycles_pipelined(stats, bus_bits=8, branch_penalty=1, strict=False):
    """Cycle count on a two-stage (fetch | decode-execute) pipeline.

    Execution overlaps the next fetch, so throughput is limited by fetch
    bandwidth; each taken branch flushes the fetched-but-not-executed
    instruction (``branch_penalty`` cycles) and one cycle fills the pipe.
    """
    histogram = _fetch_cycle_histogram(stats, bus_bits)
    if strict and any(cycles > 1 for cycles in histogram):
        raise InfeasibleDesign(
            f"a 2-stage pipeline with a {bus_bits}-bit bus cannot sustain "
            f"one instruction per cycle"
        )
    fetch_cycles = sum(cycles * count for cycles, count in histogram.items())
    return fetch_cycles + branch_penalty * stats.taken_branches + 1


def cycles_multicycle(stats, bus_bits=8, execute_cycles=1):
    """Cycle count on a multicycle machine: per-instruction fetch cycles
    plus ``execute_cycles`` non-overlapped execute cycles."""
    histogram = _fetch_cycle_histogram(stats, bus_bits)
    fetch_cycles = sum(cycles * count for cycles, count in histogram.items())
    return fetch_cycles + execute_cycles * stats.instructions


def cycle_count(stats, microarch, bus_bits=8, strict=False):
    """Dispatch on :class:`MicroArch`."""
    if microarch == MicroArch.SINGLE_CYCLE:
        return cycles_single_cycle(stats, bus_bits, strict=strict)
    if microarch == MicroArch.PIPELINED:
        return cycles_pipelined(stats, bus_bits, strict=strict)
    if microarch == MicroArch.MULTICYCLE:
        return cycles_multicycle(stats, bus_bits)
    raise ValueError(f"unknown microarchitecture {microarch}")


@dataclass(frozen=True)
class ExecutionEstimate:
    """Cycles mapped to wall-clock time and energy at a given operating
    point (static-power-dominated, per Section 3.1)."""

    cycles: int
    frequency_hz: float
    static_power_w: float

    @property
    def time_s(self):
        return self.cycles / self.frequency_hz

    @property
    def energy_j(self):
        # >99% of 0.8um IGZO power is static: energy is power x time.
        return self.static_power_w * self.time_s

    @property
    def energy_per_cycle_j(self):
        return self.static_power_w / self.frequency_hz


def estimate(stats, microarch, frequency_hz, static_power_w, bus_bits=8,
             strict=False):
    """Build an :class:`ExecutionEstimate` for a run."""
    return ExecutionEstimate(
        cycles=cycle_count(stats, microarch, bus_bits, strict=strict),
        frequency_hz=frequency_hz,
        static_power_w=static_power_w,
    )
