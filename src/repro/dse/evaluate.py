"""Design-point evaluation: area, power, timing, code size, energy.

Everything Figures 9-13 need, measured rather than assumed:

- *area / static power* come from the design's gate-level netlist;
- *clock period* comes from STA plus the microarchitecture period model
  (single-cycle pays fetch + execute in one cycle; the two-stage pipeline
  overlaps fetch with a decode-trimmed execute stage; multicycle runs a
  shorter per-cycle path but more cycles);
- *code size* comes from assembling the Table 6 suite against the
  design's ISA with its macro library;
- *cycles* come from functional simulation plus the
  :mod:`repro.sim.timing` cycle models at the design's program-bus width.
"""

import math
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.dse.designs import ALL_DESIGNS, BASELINE, DesignPoint
from repro.engine import Job, engine_or_default, job_function
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE
from repro.netlist.backend import default_backend, make_backend
from repro.netlist.sta import FETCH_DELAY_UNITS, analyze
from repro.sim import MicroArch, cycle_count, cycles_multicycle
from repro.sim.timing import InfeasibleDesign
from repro.tech.cells import SECONDS_PER_DELAY_UNIT
from repro.tech.power import OperatingPoint, static_power_w

#: Pipeline register (clock-to-q + setup) cost added to a staged period.
PIPELINE_REG_UNITS = 2.0
#: Fraction of the core critical path left in the execute stage after
#: the fetch|execute split moves instruction decode into stage one.
EXEC_STAGE_FRACTION = 0.7
#: Decode delay charged to the fetch stage of a pipelined design.
DECODE_STAGE_FRACTION = 0.2
#: Per-cycle path fraction of a multicycle design.  The split is poor:
#: there is "very limited opportunity for structure reuse" (Section 3.4),
#: so the execute cycle still traverses most of the core.
MC_STAGE_FRACTION = 0.8


def period_units(report, microarch):
    """Clock period of a design, in normalized delay units."""
    crit = report.critical_delay_units
    if microarch == MicroArch.SINGLE_CYCLE:
        return FETCH_DELAY_UNITS + crit
    if microarch == MicroArch.PIPELINED:
        fetch_stage = FETCH_DELAY_UNITS + DECODE_STAGE_FRACTION * crit
        exec_stage = EXEC_STAGE_FRACTION * crit
        return max(fetch_stage, exec_stage) + PIPELINE_REG_UNITS
    if microarch == MicroArch.MULTICYCLE:
        per_cycle = max(FETCH_DELAY_UNITS, MC_STAGE_FRACTION * crit)
        return per_cycle + PIPELINE_REG_UNITS
    raise ValueError(microarch)


@dataclass
class KernelMetrics:
    """One kernel on one design."""

    static_instructions: int
    code_bits: int
    dynamic_instructions: int
    cycles: int
    time_s: float
    energy_j: float
    feasible: bool = True


@dataclass
class DesignMetrics:
    """Full evaluation of one design point."""

    design: DesignPoint
    gate_count: int
    nand2_area: float
    area_mm2: float
    pullups: int
    static_power_w: float
    critical_delay_units: float
    period_units: float
    frequency_hz: float
    kernels: Dict[str, KernelMetrics] = field(default_factory=dict)
    #: Optional gate-level grounding result (:func:`gate_level_check`);
    #: populated when the evaluation ran with ``gate_check=True``.
    gate_check: Optional[dict] = None

    def total_code_bits(self):
        return sum(k.code_bits for k in self.kernels.values())

    def mean_relative(self, baseline, attribute):
        """Geometric-mean ratio of a kernel attribute vs a baseline."""
        ratios = []
        for name, metrics in self.kernels.items():
            base = getattr(baseline.kernels[name], attribute)
            mine = getattr(metrics, attribute)
            if base and mine and metrics.feasible:
                ratios.append(mine / base)
        if not ratios:
            return float("nan")
        return float(np.exp(np.mean(np.log(ratios))))


@lru_cache(maxsize=None)
def _design_static(design):
    netlist = design.build_netlist()
    report = analyze(netlist)
    return netlist, report


def _run_kernel(kernel, target, transactions, seed, fastpath=None):
    rng = np.random.default_rng(seed)
    inputs = kernel.generate_inputs(rng, transactions)
    result = kernel.check(target, inputs, fastpath=fastpath)
    program = kernel.program(target)
    return program, result.stats


def gate_level_check(design, backend=None, cycles=64, seed=2022):
    """Ground a design point's netlist in gate-level simulation.

    The analytical metrics (area, STA period, cycle models) never
    actually *run* the netlist; this does, on the selected
    :mod:`repro.netlist.backend` (``"interpreted"`` / ``"compiled"`` /
    ``"vector"``).  The baseline design -- whose netlist
    is the fabricated, ISA-verified FlexiCore4 -- is cross-checked
    against its ISA model over the directed test program.  The DSE
    netlists model hardware with no cycle-accurate ISA twin, so they
    get a random-stimulus run instead: the check confirms the netlist
    levelizes, simulates, and toggles on the chosen backend.
    """
    backend = backend or default_backend()
    netlist, _ = _design_static(design)
    if design.is_baseline:
        from repro.fab.testing import directed_program
        from repro.isa import get_isa
        from repro.netlist.verify import run_cross_check

        isa = get_isa(design.isa_name)
        rng = np.random.default_rng(seed)
        inputs = [int(rng.integers(0, 16)) for _ in range(32)]
        result = run_cross_check(
            netlist, isa, directed_program(isa), inputs=inputs,
            max_instructions=120, backend=backend,
        )
        return {
            "backend": backend,
            "mode": "cross_check",
            "cycles": result.cycles,
            "mismatches": result.mismatches,
            "passed": result.passed,
            "toggle_fraction": result.toggle_fraction,
        }
    sim = make_backend(backend, netlist)
    instr_bits = sum(1 for net in netlist.inputs if net.startswith("instr"))
    iport_bits = sum(1 for net in netlist.inputs if net.startswith("iport"))
    rng = np.random.default_rng(seed)
    for _ in range(cycles):
        sim.set_inputs({
            "instr": int(rng.integers(0, 1 << instr_bits)),
            "iport": int(rng.integers(0, 1 << iport_bits)),
        })
        sim.step()
    toggled, _ = sim.toggle_coverage()
    sim.flush_obs()
    return {
        "backend": backend,
        "mode": "stimulus",
        "cycles": sim.cycles,
        "mismatches": 0,
        "passed": True,
        "toggle_fraction": toggled,
    }


def evaluate_design(design, transactions=12, seed=2022, vdd=4.5,
                    bus_bits=None, gate_check=False, backend=None,
                    fastpath=None):
    """Measure one design point over the whole Table 6 suite.

    ``bus_bits`` restricts the program-memory bus (Figure 13's "(Bus)"
    configuration uses 8); by default each design gets a bus wide enough
    to fetch one instruction per cycle, as the paper assumes first.
    With ``gate_check=True`` the metrics also carry a
    :func:`gate_level_check` run on the selected simulation ``backend``.
    ``fastpath=False`` forces the reference ISA-simulator step loop for
    the kernel runs.
    """
    started = time.perf_counter()
    with obs.span("dse.evaluate", design=design.name):
        metrics = _evaluate_design(
            design, transactions, seed, vdd, bus_bits, fastpath
        )
        if gate_check:
            metrics.gate_check = gate_level_check(
                design, backend=backend, seed=seed
            )
    if obs.active():
        registry = obs.registry()
        registry.counter(
            "dse_designs_evaluated_total", "Design points evaluated",
        ).inc()
        registry.histogram(
            "dse_design_eval_seconds",
            "Wall time to evaluate one design point",
        ).observe(time.perf_counter() - started)
    return metrics


def _evaluate_design(design, transactions, seed, vdd, bus_bits,
                     fastpath=None):
    netlist, report = _design_static(design)
    punits = period_units(report, design.microarch)
    period_s = punits * SECONDS_PER_DELAY_UNIT
    frequency = 1.0 / period_s
    power = static_power_w(netlist.pullups, OperatingPoint(vdd=vdd))

    target = Target.named(design.isa_name)
    effective_bus = bus_bits if bus_bits is not None \
        else target.isa.fetch_bits

    metrics = DesignMetrics(
        design=design,
        gate_count=netlist.gate_count,
        nand2_area=netlist.nand2_area,
        area_mm2=netlist.area_mm2,
        pullups=netlist.pullups,
        static_power_w=power,
        critical_delay_units=report.critical_delay_units,
        period_units=punits,
        frequency_hz=frequency,
    )
    # A single-cycle or pipelined machine needs to fetch at least its
    # smallest instruction in one cycle; with an 8-bit bus the all-16-bit
    # load-store ISA cannot, so "the single cycle and 2-stage versions of
    # the load-store machine are not possible" (Section 6.2).  Multi-byte
    # instructions in an otherwise byte-wide ISA are fine: the FlexiCore8
    # LOAD BYTE flag generalizes to them.
    min_instr_bits = 8 * min(
        spec.size for spec in target.isa.specs.values()
    )
    design_feasible = not (
        design.microarch in (MicroArch.SINGLE_CYCLE, MicroArch.PIPELINED)
        and effective_bus < min_instr_bits
    )
    for kernel in SUITE:
        program, stats = _run_kernel(
            kernel, target, transactions, seed, fastpath=fastpath,
        )
        if design.microarch == MicroArch.MULTICYCLE:
            # The multicycle load-store machine trades its second register
            # port for an extra operand-read cycle (Section 6.2): CPI 3
            # (fetch, read, execute) vs the accumulator's CPI 2.
            execute_cycles = 2 if design.operand_model == "ls" else 1
            cycles = cycles_multicycle(
                stats, bus_bits=effective_bus,
                execute_cycles=execute_cycles,
            )
        else:
            cycles = cycle_count(
                stats, design.microarch, bus_bits=effective_bus,
            )
        feasible = design_feasible
        time_s = cycles * period_s
        metrics.kernels[kernel.name] = KernelMetrics(
            static_instructions=program.static_instructions,
            code_bits=program.size_bits,
            dynamic_instructions=stats.instructions,
            cycles=cycles,
            time_s=time_s,
            energy_j=power * time_s,
            feasible=feasible,
        )
    return metrics


@job_function("dse.evaluate_design", version="1")
def evaluate_design_job(params, seed):
    """Engine job wrapper around :func:`evaluate_design`.

    The kernel-input seed is an explicit parameter (it is part of the
    experiment's definition, not of the scheduling), so the engine-level
    ``seed`` is unused and the job is trivially order-independent.
    """
    return evaluate_design(
        params["design"],
        transactions=params["transactions"],
        seed=params["seed"],
        bus_bits=params["bus_bits"],
        gate_check=params.get("gate_check", False),
        backend=params.get("backend"),
        fastpath=params.get("fastpath"),
    )


def evaluate_all(designs=ALL_DESIGNS, transactions=12, seed=2022,
                 bus_bits=None, engine=None, gate_check=False,
                 backend=None, fastpath=None):
    """Evaluate a set of designs; returns {design name: DesignMetrics}.

    Each design point is one engine job: with ``engine`` (or the
    process-wide default) configured for multiple workers the designs
    evaluate in parallel, and with a cache the whole sweep is a lookup.
    ``gate_check``/``backend`` thread through to
    :func:`evaluate_design`; the gate-check knobs -- and a non-default
    ``fastpath`` -- join the cache key only when set, so existing
    cached sweeps stay valid (both simulator paths are bit-identical,
    so the cached value is too).
    """
    designs = list(designs)
    seen = {}
    for design in designs:
        seen.setdefault(design.name, []).append(design)
    duplicates = sorted(name for name, hits in seen.items()
                        if len(hits) > 1)
    if duplicates:
        raise ValueError(
            f"duplicate design name(s) {duplicates}: the result keys "
            "by name, so duplicates would silently collapse; rename "
            "the conflicting DesignPoints"
        )
    eng = engine_or_default(engine)
    nodes = [
        eng.submit(Job(
            evaluate_design_job,
            {"design": design, "transactions": transactions,
             "seed": seed, "bus_bits": bus_bits,
             **({"gate_check": True, "backend": backend or
                 default_backend()} if gate_check else {}),
             **({"fastpath": fastpath} if fastpath is not None else {})},
            label=f"dse:{design.name}"
                  + (f":bus{bus_bits}" if bus_bits else ""),
        ))
        for design in designs
    ]
    eng.run_graph(stage="dse")
    return {
        design.name: node.result
        for design, node in zip(designs, nodes)
    }


def baseline_metrics(transactions=12, seed=2022):
    return evaluate_design(BASELINE, transactions=transactions, seed=seed)
