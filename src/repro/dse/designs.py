"""The Section 6 design points.

Seven cores anchor the exploration: the fabricated FlexiCore4 baseline,
plus the revised operation set in accumulator and load-store flavors,
each as a single-cycle (SC), two-stage pipelined (P) or multicycle (MC)
machine -- the six colored bars of Figure 11 and the six points of
Figure 12.
"""

from dataclasses import dataclass
from typing import FrozenSet

from repro.isa.extended import FULL_FEATURES
from repro.sim.timing import MicroArch


@dataclass(frozen=True)
class DesignPoint:
    """One core design in the exploration."""

    name: str
    operand_model: str          # 'acc' | 'ls'
    microarch: MicroArch
    features: FrozenSet[str]    # DSE hardware features ('' for base)
    isa_name: str               # ISA the kernels assemble against

    @property
    def is_baseline(self):
        return self.name == "FlexiCore4"

    def build_netlist(self):
        """Gate-level netlist for this design (uncached)."""
        from repro.netlist.cores import build_flexicore4
        from repro.netlist.dse_cores import (
            build_extended_core,
            build_loadstore_core,
        )

        if self.is_baseline:
            return build_flexicore4()
        if self.operand_model == "acc":
            return build_extended_core(
                self.features, self.microarch.value
            )
        return build_loadstore_core(self.microarch.value)


#: The revised accumulator feature set maps straight onto Section 6.1's
#: final operation list.
_ACC_FEATURES = frozenset(FULL_FEATURES)

BASELINE = DesignPoint(
    name="FlexiCore4",
    operand_model="acc",
    microarch=MicroArch.SINGLE_CYCLE,
    features=frozenset(),
    isa_name="flexicore4",
)

ACC_SC = DesignPoint("Acc SC", "acc", MicroArch.SINGLE_CYCLE,
                     _ACC_FEATURES, "extacc")
ACC_P = DesignPoint("Acc P", "acc", MicroArch.PIPELINED,
                    _ACC_FEATURES, "extacc")
ACC_MC = DesignPoint("Acc MC", "acc", MicroArch.MULTICYCLE,
                     _ACC_FEATURES, "extacc")
LS_SC = DesignPoint("LS SC", "ls", MicroArch.SINGLE_CYCLE,
                    frozenset(), "loadstore")
LS_P = DesignPoint("LS P", "ls", MicroArch.PIPELINED,
                   frozenset(), "loadstore")
LS_MC = DesignPoint("LS MC", "ls", MicroArch.MULTICYCLE,
                    frozenset(), "loadstore")

#: Figure 11/12/13 order.
DSE_DESIGNS = (ACC_SC, ACC_P, ACC_MC, LS_SC, LS_P, LS_MC)
ALL_DESIGNS = (BASELINE,) + DSE_DESIGNS
