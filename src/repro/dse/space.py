"""The parametric design space behind the adaptive DSE search.

The paper explores seven hand-picked cores (Figures 11-13) plus a
one-feature-at-a-time sweep (Figures 9-10).  The full space those
figures sample is much larger: every subset of the Section 6.1 feature
gates, crossed with the operand model, the microarchitecture, and the
program-bus width of Figure 13.  This module makes that space a
first-class object:

- :class:`Genome` -- one candidate's coordinates on every axis, in a
  canonical (hashable, JSON-friendly) form;
- :class:`DesignSpace` -- the axes themselves, with deterministic
  enumeration, membership tests, random sampling, and the
  mutation/crossover moves the NSGA-II loop in
  :mod:`repro.dse.search` uses;
- :meth:`DesignSpace.anchors` -- the paper's own grid (base core,
  the Figure 9 single-feature points, the revised full-feature set,
  the load-store machines) as warm-start seeds for the search.

A genome materializes into a :class:`~repro.dse.designs.DesignPoint`
whose netlist comes from the parametric builders in
:mod:`repro.netlist.dse_cores` and whose kernels assemble against the
matching ``extacc[...]`` / ``loadstore`` ISA.
"""

from dataclasses import dataclass, field
from typing import Tuple

from repro.isa.extended import FULL_FEATURES
from repro.netlist.dse_cores import DSE_FEATURES
from repro.sim.timing import MicroArch

#: Axis values understood by the generator.
OPERAND_MODELS = ("acc", "ls")
MICROARCHS = ("SC", "P", "MC")
#: Program-bus widths; 0 means "natural" (wide enough to fetch one
#: instruction per cycle), 8 is the Figure 13 "(Bus)" restriction.
BUS_CHOICES = (0, 8)


@dataclass(frozen=True)
class Genome:
    """One candidate's coordinates: operand model x microarchitecture x
    feature-gate subset x program-bus width.

    Canonical form: ``features`` is a sorted tuple and is empty for the
    load-store model (its netlist builder takes no feature gates), so
    two genomes describing the same hardware always compare equal.
    """

    operand_model: str              # 'acc' | 'ls'
    microarch: str                  # 'SC' | 'P' | 'MC'
    features: Tuple[str, ...] = ()  # sorted feature gates ('acc' only)
    bus_bits: int = 0               # 0 = natural width

    def __post_init__(self):
        feats = () if self.operand_model == "ls" \
            else tuple(sorted(set(self.features)))
        object.__setattr__(self, "features", feats)

    @property
    def key(self):
        """Canonical display/dedup name, e.g. ``acc-sc[adc+shift]@bus8``."""
        tag = "+".join(self.features) if self.features else "base"
        name = f"{self.operand_model}-{self.microarch.lower()}"
        if self.operand_model == "acc":
            name += f"[{tag}]"
        if self.bus_bits:
            name += f"@bus{self.bus_bits}"
        return name

    @property
    def isa_name(self):
        if self.operand_model == "ls":
            return "loadstore"
        tag = "+".join(self.features) if self.features else "base"
        return f"extacc[{tag}]"

    def design(self):
        """The :class:`~repro.dse.designs.DesignPoint` this genome names."""
        from repro.dse.designs import DesignPoint

        return DesignPoint(
            name=self.key,
            operand_model=self.operand_model,
            microarch=MicroArch(self.microarch),
            features=frozenset(self.features),
            isa_name=self.isa_name,
        )

    def to_doc(self):
        """JSON-ready record (the search trail / service documents)."""
        return {
            "operand_model": self.operand_model,
            "microarch": self.microarch,
            "features": list(self.features),
            "bus_bits": self.bus_bits,
        }


@dataclass(frozen=True)
class DesignSpace:
    """The searchable axes.  Defaults cover the whole extended space:
    both operand models, all three microarchitectures, every Section 6.1
    feature gate, and the natural / 8-bit program buses."""

    operand_models: Tuple[str, ...] = OPERAND_MODELS
    microarchs: Tuple[str, ...] = MICROARCHS
    features: Tuple[str, ...] = DSE_FEATURES
    bus_bits: Tuple[int, ...] = BUS_CHOICES

    def __post_init__(self):
        object.__setattr__(self, "operand_models",
                           tuple(self.operand_models))
        object.__setattr__(self, "microarchs", tuple(self.microarchs))
        object.__setattr__(self, "features", tuple(self.features))
        object.__setattr__(self, "bus_bits",
                           tuple(int(b) for b in self.bus_bits))
        unknown = set(self.operand_models) - set(OPERAND_MODELS)
        if unknown:
            raise ValueError(f"unknown operand model(s) {sorted(unknown)}; "
                             f"choose from {list(OPERAND_MODELS)}")
        unknown = set(self.microarchs) - set(MICROARCHS)
        if unknown:
            raise ValueError(f"unknown microarch(s) {sorted(unknown)}; "
                             f"choose from {list(MICROARCHS)}")
        unknown = set(self.features) - set(DSE_FEATURES)
        if unknown:
            raise ValueError(f"unknown feature gate(s) {sorted(unknown)}; "
                             f"choose from {list(DSE_FEATURES)}")
        if any(b < 0 for b in self.bus_bits):
            raise ValueError("bus widths must be >= 0 (0 = natural)")
        if not (self.operand_models and self.microarchs and self.bus_bits):
            raise ValueError("every axis needs at least one value")

    def size(self):
        """Number of distinct genomes in the space."""
        per_model = 0
        if "acc" in self.operand_models:
            per_model += 2 ** len(self.features)
        if "ls" in self.operand_models:
            per_model += 1
        return per_model * len(self.microarchs) * len(self.bus_bits)

    def enumerate(self):
        """Every genome, in a deterministic (binary-counting) order."""
        out = []
        for model in self.operand_models:
            subsets = [()] if model == "ls" else [
                tuple(f for bit, f in enumerate(self.features)
                      if mask >> bit & 1)
                for mask in range(2 ** len(self.features))
            ]
            for microarch in self.microarchs:
                for bus in self.bus_bits:
                    for subset in subsets:
                        out.append(Genome(model, microarch, subset, bus))
        return out

    def __contains__(self, genome):
        if genome.operand_model not in self.operand_models:
            return False
        if genome.microarch not in self.microarchs:
            return False
        if genome.bus_bits not in self.bus_bits:
            return False
        return set(genome.features) <= set(self.features)

    # -- sampling and variation -----------------------------------------

    def _random_features(self, rng, model):
        if model == "ls" or not self.features:
            return ()
        mask = rng.integers(0, 2, size=len(self.features))
        return tuple(f for bit, f in zip(mask, self.features) if bit)

    def random(self, rng):
        """One uniform-ish random genome."""
        model = str(rng.choice(self.operand_models))
        return Genome(
            model,
            str(rng.choice(self.microarchs)),
            self._random_features(rng, model),
            int(rng.choice(self.bus_bits)),
        )

    def mutate(self, genome, rng, attempts=8):
        """A single random move: toggle one feature gate, or switch the
        microarchitecture, bus width, or operand model.  Retries a few
        times so the result differs from the input when the space has
        more than one point."""
        for _ in range(attempts):
            moves = []
            if genome.operand_model == "acc" and self.features:
                moves.append("feature")
            if len(self.microarchs) > 1:
                moves.append("microarch")
            if len(self.bus_bits) > 1:
                moves.append("bus")
            if len(self.operand_models) > 1:
                moves.append("model")
            if not moves:
                return genome
            move = str(rng.choice(moves))
            if move == "feature":
                flip = str(rng.choice(self.features))
                feats = set(genome.features) ^ {flip}
                child = Genome(genome.operand_model, genome.microarch,
                               tuple(sorted(feats)), genome.bus_bits)
            elif move == "microarch":
                child = Genome(genome.operand_model,
                               str(rng.choice(self.microarchs)),
                               genome.features, genome.bus_bits)
            elif move == "bus":
                child = Genome(genome.operand_model, genome.microarch,
                               genome.features,
                               int(rng.choice(self.bus_bits)))
            else:
                model = str(rng.choice(self.operand_models))
                child = Genome(model, genome.microarch,
                               self._random_features(rng, model),
                               genome.bus_bits)
            if child != genome:
                return child
        return genome

    def neighbors(self, genome):
        """Every single-move variant of ``genome`` inside this space,
        in a deterministic order: each feature gate toggled, each other
        microarchitecture, each other bus width, and the operand-model
        switch (to the base accumulator core when coming from
        load-store).  The Pareto local-search phase of
        :func:`repro.dse.search.search` walks these."""
        out = []

        def add(child):
            if child != genome and child in self and child not in out:
                out.append(child)

        if genome.operand_model == "acc":
            for feature in self.features:
                feats = set(genome.features) ^ {feature}
                add(Genome(genome.operand_model, genome.microarch,
                           tuple(sorted(feats)), genome.bus_bits))
        for microarch in self.microarchs:
            add(Genome(genome.operand_model, microarch,
                       genome.features, genome.bus_bits))
        for bus in self.bus_bits:
            add(Genome(genome.operand_model, genome.microarch,
                       genome.features, bus))
        for model in self.operand_models:
            if model != genome.operand_model:
                add(Genome(model, genome.microarch, (), genome.bus_bits))
        return out

    def crossover(self, a, b, rng):
        """Uniform crossover: each axis (and each feature gate) comes
        from either parent."""
        model = a.operand_model if rng.integers(0, 2) else b.operand_model
        feats = []
        for feature in self.features:
            parent = a if rng.integers(0, 2) else b
            if feature in parent.features:
                feats.append(feature)
        return Genome(
            model,
            a.microarch if rng.integers(0, 2) else b.microarch,
            tuple(feats),
            a.bus_bits if rng.integers(0, 2) else b.bus_bits,
        )

    def anchors(self):
        """The paper's own design grid, restricted to this space --
        warm-start seeds so the search begins from the Figure 9-13
        points rather than from noise.

        Base core, each single-feature point (Figure 9), and the
        revised full-feature set on the first microarch/bus; the
        full-feature set and the load-store machine across the other
        microarchitectures (Figures 11-12).
        """
        out = []

        def add(genome):
            if genome in self and genome not in out:
                out.append(genome)

        m0, b0 = self.microarchs[0], self.bus_bits[0]
        if "acc" in self.operand_models:
            add(Genome("acc", m0, (), b0))
            for feature in self.features:
                add(Genome("acc", m0, (feature,), b0))
            full = tuple(sorted(set(self.features) & FULL_FEATURES))
            for microarch in self.microarchs:
                add(Genome("acc", microarch, full, b0))
        if "ls" in self.operand_models:
            for microarch in self.microarchs:
                add(Genome("ls", microarch, (), b0))
        return out
