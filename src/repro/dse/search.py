"""Adaptive multi-objective DSE search (the suggest/score loop).

:func:`repro.dse.evaluate.evaluate_all` sweeps a fixed, hand-picked
design list -- fine for the paper's seven cores, useless for the
thousands-strong feature-gated space of :mod:`repro.dse.space`.  This
module searches that space instead of enumerating it:

- **Scoring** (:func:`score_design_job`): one engine job per candidate
  measures NAND2-equivalent area, energy per kernel (geometric mean
  over the Table 6 suite), and *yield-adjusted cost per good die* --
  the candidate's netlist goes through the
  :mod:`repro.fab.yield_model` wafer Monte Carlo and the
  :mod:`repro.fab.cost` volume-production model, so a bigger core pays
  twice: fewer dies per wafer *and* a lower yield on each.
- **Selection** (NSGA-II style): fast non-dominated sort plus crowding
  distance over the chosen objectives, with constraint domination
  (feasible candidates always beat infeasible ones).
- **Variation**: tournament-selected parents produce offspring by
  uniform crossover and single-move mutation over the genome axes.
- **Successive halving**: new candidates are screened at a cheap
  fidelity (few kernel transactions, few wafers); only the screen-time
  non-dominated set is promoted to full-fidelity scoring, so dominated
  regions of the space never consume a full evaluation.

Every scored candidate is one :class:`~repro.engine.Job`, so a search
batches one generation per :meth:`~repro.engine.Engine.run_graph`
wave, fans over the engine's workers, and -- because job cache keys
depend only on the candidate's parameters -- warm-starts from the
shared :class:`~repro.engine.ResultCache`: a repeated or resumed
search answers its evaluations as cache hits.

The search is deterministic for a fixed ``(budget, seed)``: all
stochastic decisions draw from one seeded generator, and the scoring
jobs are order-independent.
"""

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro import obs
from repro.dse.space import DesignSpace, Genome
from repro.engine import Job, engine_or_default, job_function
from repro.fab.cost import flexible_die_cost, production_die_count
from repro.fab.process import FC4_WAFER
from repro.fab.yield_model import fabricate_wafer

#: Objective extractors over a :func:`score_design_job` result, all
#: lower-is-better.  ``cost`` is the yield-adjusted cost per *good*
#: die; ``energy`` the geometric-mean energy per kernel in joules;
#: ``code`` the Table 6 suite's total code bits.
SEARCH_OBJECTIVES = ("area", "cost", "energy", "code")

#: Default objective triple (the Section 6.3 axes plus the paper's
#: sub-cent cost claim).
DEFAULT_OBJECTIVES = ("area", "cost", "energy")


@job_function("dse.score_design", version="1")
def score_design_job(params, seed):
    """Engine job: score one candidate on every search objective.

    The engine-level ``seed`` is unused: the kernel-input seed and the
    wafer Monte Carlo seed are explicit parameters (they are part of
    the experiment's definition, not of the scheduling), so the job is
    order-independent and two searches share cache entries whenever
    their fidelity parameters agree.

    The wafer draws use *common random numbers*: every candidate
    fabricates its wafers from the same seeded stream, so candidate
    comparisons see process noise that cancels instead of noise that
    reshuffles the frontier.
    """
    from repro.dse.evaluate import _design_static, evaluate_design

    design = params["design"]
    transactions = params["transactions"]
    wafers = params["wafers"]
    voltage = params["voltage"]
    process = params.get("process", FC4_WAFER)
    bus_bits = params["bus_bits"] or None

    with obs.span("dse.score", design=design.name):
        metrics = evaluate_design(
            design, transactions=transactions, seed=params["seed"],
            bus_bits=bus_bits,
        )
        netlist, report = _design_static(design)
        rng = np.random.default_rng(
            np.random.SeedSequence(params["seed"])
        )
        fractions = []
        for _ in range(wafers):
            fabricated = fabricate_wafer(
                netlist, process, rng, timing_report=report
            )
            fractions.append(
                fabricated.probe(voltage, rng).yield_fraction()
            )
        yield_fraction = float(np.mean(fractions))
        dies = production_die_count(die_area_mm2=netlist.area_mm2)
        estimate = flexible_die_cost(yield_fraction, dies_per_wafer=dies)

    energies = [k.energy_j for k in metrics.kernels.values()]
    times = [k.time_s for k in metrics.kernels.values()]
    infeasible = sorted(
        name for name, k in metrics.kernels.items() if not k.feasible
    )
    if obs.active():
        obs.registry().counter(
            "dse_search_candidates_scored_total",
            "Candidates scored by the DSE search",
        ).inc()
    return {
        "design": design.name,
        "operand_model": design.operand_model,
        "microarch": design.microarch.value,
        "features": sorted(design.features),
        "bus_bits": params["bus_bits"],
        "area": metrics.nand2_area,
        "area_mm2": metrics.area_mm2,
        "gate_count": metrics.gate_count,
        "period_units": metrics.period_units,
        "energy": float(np.exp(np.mean(np.log(energies)))),
        "time": float(np.exp(np.mean(np.log(times)))),
        "code": metrics.total_code_bits(),
        "yield": yield_fraction,
        "dies_per_wafer": dies,
        "cost": estimate.cost_per_good_die_usd,
        "feasible": not infeasible,
        "infeasible_kernels": infeasible,
        "transactions": transactions,
        "wafers": wafers,
        "voltage": voltage,
    }


# ----------------------------------------------------------------------
# Multi-objective machinery.
# ----------------------------------------------------------------------

def weakly_dominates(a, b):
    """True when ``a`` is no worse than ``b`` on every objective."""
    return all(x <= y for x, y in zip(a, b))


def _dominates(a, b):
    """Constraint-dominance: ``(feasible, values)`` vs the same."""
    a_ok, a_vals = a
    b_ok, b_vals = b
    if a_ok != b_ok:
        return a_ok
    return (weakly_dominates(a_vals, b_vals)
            and any(x < y for x, y in zip(a_vals, b_vals)))


def non_dominated_sort(entries):
    """Fast non-dominated sort over ``[(feasible, values), ...]``.

    Returns a list of fronts, each a list of indices into ``entries``;
    front 0 is the (constraint-)non-dominated set.
    """
    n = len(entries)
    dominated_by = [[] for _ in range(n)]
    counts = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if _dominates(entries[i], entries[j]):
                dominated_by[i].append(j)
                counts[j] += 1
            elif _dominates(entries[j], entries[i]):
                dominated_by[j].append(i)
                counts[i] += 1
    fronts = [[i for i in range(n) if counts[i] == 0]]
    while fronts[-1]:
        nxt = []
        for i in fronts[-1]:
            for j in dominated_by[i]:
                counts[j] -= 1
                if counts[j] == 0:
                    nxt.append(j)
        fronts.append(sorted(nxt))
    return [front for front in fronts if front]


def crowding_distance(values, front):
    """NSGA-II crowding distance of each index in ``front``.

    Boundary points get ``inf`` so the extremes of every objective
    always survive selection.
    """
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: math.inf for i in front}
    n_objectives = len(values[front[0]])
    for m in range(n_objectives):
        ordered = sorted(front, key=lambda i: values[i][m])
        lo, hi = values[ordered[0]][m], values[ordered[-1]][m]
        distance[ordered[0]] = math.inf
        distance[ordered[-1]] = math.inf
        span = hi - lo
        if span <= 0 or not math.isfinite(span):
            continue
        for prev, cur, nxt in zip(ordered, ordered[1:], ordered[2:]):
            if math.isfinite(distance[cur]):
                distance[cur] += (
                    (values[nxt][m] - values[prev][m]) / span
                )
    return distance


# ----------------------------------------------------------------------
# Search configuration and results.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one search run.

    ``budget`` counts *scoring jobs* (any fidelity, cache hit or not);
    the search stops submitting once it is spent.  With
    ``screen_transactions == transactions`` and ``screen_wafers ==
    wafers`` the successive-halving screen is skipped and every
    candidate scores at full fidelity directly.
    """

    budget: int = 48
    seed: int = 2022
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    population: int = 16
    space: DesignSpace = field(default_factory=DesignSpace)
    transactions: int = 12
    wafers: int = 5
    screen_transactions: int = 3
    screen_wafers: int = 2
    voltage: float = 4.5

    def __post_init__(self):
        object.__setattr__(self, "objectives", tuple(self.objectives))
        unknown = set(self.objectives) - set(SEARCH_OBJECTIVES)
        if unknown:
            raise ValueError(
                f"unknown objective(s) {sorted(unknown)}; "
                f"choose from {list(SEARCH_OBJECTIVES)}"
            )
        if not self.objectives:
            raise ValueError("at least one objective is required")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.population < 2:
            raise ValueError("population must be >= 2")

    @property
    def single_fidelity(self):
        return (self.screen_transactions >= self.transactions
                and self.screen_wafers >= self.wafers)


@dataclass(frozen=True)
class ScoredDesign:
    """One frontier entry: the genome, its objective tuple, and the
    full score document."""

    key: str
    genome: Genome
    values: Tuple[float, ...]
    score: Dict


@dataclass
class SearchResult:
    """Everything a search run learned."""

    config: SearchConfig
    frontier: List[ScoredDesign]
    evaluations: int
    generations: int
    space_size: int
    scored: Dict[str, Dict]
    trail: List[Dict]
    cache_hits: int = 0
    cache_misses: int = 0

    def frontier_names(self):
        return [entry.key for entry in self.frontier]

    def write_trail(self, path):
        """Append-free JSONL trail: one line per evaluation, in order."""
        with open(path, "w") as handle:
            for record in self.trail:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def to_doc(self):
        """JSON-ready summary (the service result document)."""
        return {
            "objectives": list(self.config.objectives),
            "budget": self.config.budget,
            "seed": self.config.seed,
            "evaluations": self.evaluations,
            "generations": self.generations,
            "space_size": self.space_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "frontier": [
                {
                    "design": entry.key,
                    "genome": entry.genome.to_doc(),
                    **{
                        objective: entry.values[index]
                        for index, objective
                        in enumerate(self.config.objectives)
                    },
                    "yield": entry.score["yield"],
                    "feasible": entry.score["feasible"],
                }
                for entry in self.frontier
            ],
        }


def _objective_values(score, objectives):
    return tuple(float(score[name]) for name in objectives)


def _score_job(genome, config, screen):
    transactions = config.screen_transactions if screen \
        else config.transactions
    wafers = config.screen_wafers if screen else config.wafers
    return Job(
        score_design_job,
        {"design": genome.design(), "transactions": transactions,
         "seed": config.seed, "bus_bits": genome.bus_bits,
         "wafers": wafers, "voltage": config.voltage},
        label=f"score:{genome.key}" + (":screen" if screen else ""),
    )


def _select_parents(keys, scored, fidelity, objectives, population):
    """The NSGA-II survivor set: rank by (full fidelity first,
    non-dominated front, crowding distance), truncate to
    ``population``.  Returns keys, best first."""
    if not keys:
        return []
    entries = []
    values = []
    for key in keys:
        score = scored[key]
        vals = _objective_values(score, objectives)
        entries.append((bool(score["feasible"]), vals))
        values.append(vals)
    ranked = []
    for rank, front in enumerate(non_dominated_sort(entries)):
        crowding = crowding_distance(values, front)
        for index in front:
            # Full-fidelity scores outrank screens at equal rank, so
            # promoted survivors anchor the next generation.
            ranked.append((
                rank,
                0 if fidelity[keys[index]] == "full" else 1,
                -crowding[index],
                keys[index],
            ))
    ranked.sort(key=lambda item: (item[0], item[1], item[2], item[3]))
    return [key for _, _, _, key in ranked[:population]]


def _tournament(parents, rng):
    """Binary tournament on the (already rank-ordered) parent list."""
    if len(parents) == 1:
        return parents[0]
    picks = rng.integers(0, len(parents), size=2)
    return parents[int(min(picks))]


def search(config=None, engine=None, **overrides):
    """Run the adaptive multi-objective search; returns a
    :class:`SearchResult`.

    Either pass a :class:`SearchConfig` or keyword overrides for its
    fields (``search(budget=32, seed=7)``).  One generation of
    candidates is one engine graph wave; every candidate is one cached
    engine job, so repeating a search (same space, objectives do not
    matter -- the score carries all of them) replays from the result
    cache.
    """
    if config is None:
        config = SearchConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SearchConfig or overrides, not both")
    eng = engine_or_default(engine)
    rng = np.random.default_rng(config.seed)
    space = config.space
    space_size = space.size()

    genomes = {}            # key -> Genome
    scored = {}             # key -> best-known score dict
    fidelity = {}           # key -> 'screen' | 'full'
    trail = []
    evaluations = 0
    generations = 0
    hits_before = eng.metrics.cache_hits
    misses_before = eng.metrics.cache_misses

    def remember(genome):
        genomes.setdefault(genome.key, genome)
        return genome.key

    # -- initial population: the paper's grid plus random samples -------
    population = []
    for genome in space.anchors():
        if len(population) >= config.population:
            break
        if genome.key not in {g.key for g in population}:
            population.append(genome)
    attempts = 0
    while (len(population) < min(config.population, space_size)
           and attempts < 50 * config.population):
        candidate = space.random(rng)
        attempts += 1
        if candidate.key not in {g.key for g in population}:
            population.append(candidate)

    screen = not config.single_fidelity
    queue = [(genome, screen) for genome in population]
    promoted = set()

    with obs.span("dse.search", budget=config.budget, seed=config.seed):
        while queue and evaluations < config.budget:
            batch = queue[:config.budget - evaluations]
            queue = []
            jobs = []
            for genome, is_screen in batch:
                remember(genome)
                jobs.append(_score_job(genome, config, is_screen))
            nodes = [eng.submit(job) for job in jobs]
            eng.run_graph(stage=f"dse-search:gen{generations}")
            for (genome, is_screen), node in zip(batch, nodes):
                score = node.result
                level = "screen" if is_screen else "full"
                if fidelity.get(genome.key) != "full":
                    scored[genome.key] = score
                    fidelity[genome.key] = level
                evaluations += 1
                trail.append({
                    "evaluation": evaluations,
                    "generation": generations,
                    "design": genome.key,
                    "fidelity": level,
                    "cached": node.status == "cached",
                    "feasible": score["feasible"],
                    **{name: score[name]
                       for name in config.objectives},
                    "yield": score["yield"],
                })
            generations += 1
            if evaluations >= config.budget:
                break

            # -- promotion: the screen-time non-dominated set moves to
            # full fidelity (successive halving's surviving arm).
            keys = sorted(scored)
            entries = [
                (bool(scored[k]["feasible"]),
                 _objective_values(scored[k], config.objectives))
                for k in keys
            ]
            front0 = {keys[i] for i in non_dominated_sort(entries)[0]}
            for key in sorted(front0):
                if fidelity[key] == "screen" and key not in promoted:
                    promoted.add(key)
                    queue.append((genomes[key], False))

            # -- Pareto local search: the unexplored single-move
            # neighbourhood of the current front goes into the next
            # wave (deterministic order, capped at one population).
            # Yield noise keeps the true frontier within a move or
            # two of the measured one, so walking the neighbourhood
            # finds the points crossover rarely lands on.
            queued = {g.key for g, _ in queue}
            explored = 0
            for key in sorted(front0):
                for neighbor in space.neighbors(genomes[key]):
                    if explored >= config.population:
                        break
                    if (neighbor.key not in scored
                            and neighbor.key not in queued):
                        queued.add(neighbor.key)
                        explored += 1
                        queue.append((neighbor, screen))

            # -- variation: offspring of tournament-selected parents.
            parents = _select_parents(
                keys, scored, fidelity, config.objectives,
                config.population,
            )
            wanted = max(2, config.population // 2)
            produced = []
            attempts = 0
            while len(produced) < wanted and attempts < 30 * wanted:
                attempts += 1
                mother = genomes[_tournament(parents, rng)]
                father = genomes[_tournament(parents, rng)]
                child = space.crossover(mother, father, rng)
                if rng.random() < 0.7 or child.key in scored:
                    child = space.mutate(child, rng)
                if (child in space and child.key not in scored
                        and child.key not in {g.key for g, _ in queue}
                        and child.key not in {g.key for g in produced}):
                    produced.append(child)
            queue.extend((child, screen) for child in produced)

    # -- final frontier: full-fidelity scores only (screens are a
    # pruning signal, not a result).  If the budget ran out before any
    # promotion, fall back to the best-known scores.
    final_keys = [k for k in sorted(scored) if fidelity[k] == "full"] \
        or sorted(scored)
    entries = [
        (bool(scored[k]["feasible"]),
         _objective_values(scored[k], config.objectives))
        for k in final_keys
    ]
    frontier = []
    if final_keys:
        for index in non_dominated_sort(entries)[0]:
            key = final_keys[index]
            if not scored[key]["feasible"]:
                continue
            frontier.append(ScoredDesign(
                key=key,
                genome=genomes[key],
                values=entries[index][1],
                score=scored[key],
            ))
    frontier.sort(key=lambda entry: (entry.values, entry.key))

    return SearchResult(
        config=config,
        frontier=frontier,
        evaluations=evaluations,
        generations=generations,
        space_size=space_size,
        scored=scored,
        trail=trail,
        cache_hits=eng.metrics.cache_hits - hits_before,
        cache_misses=eng.metrics.cache_misses - misses_before,
    )


def exhaustive(space=None, config=None, engine=None, **overrides):
    """Score *every* genome in ``space`` at full fidelity (the
    reference grid the benchmark compares the search against).

    Returns ``{genome key: score dict}``.  One engine job per genome,
    all in a single graph wave; the jobs are the same
    :func:`score_design_job` entries the search submits, so a search
    after an exhaustive sweep (or vice versa) is pure cache hits.
    """
    if config is None:
        config = SearchConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SearchConfig or overrides, not both")
    space = space or config.space
    eng = engine_or_default(engine)
    genomes = space.enumerate()
    nodes = [
        eng.submit(_score_job(genome, config, screen=False))
        for genome in genomes
    ]
    eng.run_graph(stage="dse-exhaustive")
    return {
        genome.key: node.result for genome, node in zip(genomes, nodes)
    }


def frontier_of(scores, objectives=DEFAULT_OBJECTIVES):
    """The feasible non-dominated subset of ``{key: score dict}`` as
    ``[(key, values)]``, sorted by values then key."""
    keys = sorted(scores)
    entries = [
        (bool(scores[k]["feasible"]),
         _objective_values(scores[k], objectives))
        for k in keys
    ]
    frontier = [
        (keys[i], entries[i][1])
        for i in non_dominated_sort(entries)[0]
        if scores[keys[i]]["feasible"]
    ]
    return sorted(frontier)


def format_search_frontier(result):
    """Human-readable frontier table for the CLI / service artifact."""
    objectives = result.config.objectives
    names = result.frontier_names() or ["(empty)"]
    width = max(len("design"), *(len(name) for name in names)) + 2
    header = f"{'design':<{width}}" + "".join(
        f"{name:>12}" for name in objectives
    ) + f"{'yield':>8}"
    lines = [header]
    for entry in result.frontier:
        cells = "".join(f"{value:12.4g}" for value in entry.values)
        lines.append(
            f"{entry.key:<{width}}{cells}"
            f"{entry.score['yield']:8.2f}"
        )
    lines.append(
        f"({len(result.frontier)} frontier point(s) from "
        f"{result.evaluations} evaluation(s) over a "
        f"{result.space_size}-point space, "
        f"{result.generations} generation(s), "
        f"{result.cache_hits} cache hit(s))"
    )
    return "\n".join(lines)
