"""Pareto analysis over the design space.

The paper picks two winners by scenario (Section 6.3); this utility
generalizes that: given the evaluated design points, find the Pareto
frontier over any subset of (area, energy, code size, latency), and
explain which designs each one dominates.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dse.designs import ALL_DESIGNS, BASELINE
from repro.dse.evaluate import evaluate_all

#: Metric extractors (all lower-is-better).
METRICS = {
    "area": lambda m, base: m.nand2_area / base.nand2_area,
    "energy": lambda m, base: m.mean_relative(base, "energy_j"),
    "latency": lambda m, base: m.mean_relative(base, "time_s"),
    "code": lambda m, base: (
        m.total_code_bits() / base.total_code_bits()
    ),
}


@dataclass(frozen=True)
class ParetoPoint:
    name: str
    values: Tuple[float, ...]
    dominates: Tuple[str, ...]


def dominates(a, b):
    """True when point ``a`` is no worse everywhere and better somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(points):
    """``points``: {name: tuple of lower-is-better values}.

    Returns the non-dominated points, each annotated with the designs it
    dominates, sorted by (values, name) so ties on the first metric
    still order deterministically.  Duplicate value tuples survive
    together: neither strictly dominates the other.
    """
    frontier = []
    for name, values in points.items():
        if any(dominates(other, values)
               for other_name, other in points.items()
               if other_name != name):
            continue
        beaten = tuple(sorted(
            other_name for other_name, other in points.items()
            if other_name != name and dominates(values, other)
        ))
        frontier.append(ParetoPoint(name=name, values=values,
                                    dominates=beaten))
    return sorted(frontier, key=lambda point: (point.values, point.name))


def explore(metrics=("area", "energy"), designs=ALL_DESIGNS,
            bus_bits=None, transactions=12, feasible_only=True,
            baseline=BASELINE.name):
    """Evaluate ``designs`` and return the Pareto frontier over
    ``metrics`` (names from :data:`METRICS`).

    Every metric is normalized against ``baseline`` (a design name
    that must be present in ``designs``); the baseline is selected
    *before* ``feasible_only`` filtering, so an infeasible baseline
    still anchors the relative metrics even though it is excluded
    from the frontier itself.
    """
    unknown = set(metrics) - set(METRICS)
    if unknown:
        raise KeyError(f"unknown metrics {sorted(unknown)}; "
                       f"choose from {sorted(METRICS)}")
    results = evaluate_all(designs, transactions=transactions,
                           bus_bits=bus_bits)
    if baseline not in results:
        raise ValueError(
            f"baseline design {baseline!r} is not among the evaluated "
            f"designs {sorted(results)}; pass baseline= to pick the "
            "design the relative metrics normalize against"
        )
    base = results[baseline]
    points = {}
    for name, metric_values in results.items():
        if feasible_only and not all(
            k.feasible for k in metric_values.kernels.values()
        ):
            continue
        points[name] = tuple(
            METRICS[metric](metric_values, base) for metric in metrics
        )
    return pareto_frontier(points), points


def format_frontier(frontier, points, metrics):
    # Size the design column to the longest name (plus the frontier
    # marker and a separating space) so long names never fuse with
    # the first metric cell.
    width = max(
        [len("design")] + [len(name) + 1 for name in points]
    ) + 2
    header = f"{'design':<{width}}" + "".join(f"{m:>9}" for m in metrics) \
        + "  dominates"
    lines = [header]
    frontier_names = {point.name for point in frontier}
    for name, values in sorted(points.items(),
                               key=lambda kv: (kv[1], kv[0])):
        marker = "*" if name in frontier_names else " "
        cells = "".join(f"{value:9.2f}" for value in values)
        beaten = ""
        for point in frontier:
            if point.name == name and point.dominates:
                beaten = ", ".join(point.dominates)
        lines.append(f"{marker}{name:<{width - 1}}{cells}  {beaten}")
    lines.append("(* = Pareto-optimal)")
    return "\n".join(lines)
