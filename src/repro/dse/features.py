"""Per-feature ISA-extension study (Figures 9 and 10).

For each Section 6.1 extension, measure against the base FlexiCore4:

- core area and cell count with the feature's hardware added (the
  Figure 9 bars), from the parametric gate-level netlists, and
- the code size of the whole Table 6 suite -- total for Figure 9, per
  benchmark for Figure 10 -- by re-assembling every kernel against an
  ISA with just that feature enabled.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE
from repro.netlist.dse_cores import build_extended_core

#: Figure 9/10 sweep, with the paper's display names.
FEATURE_LABELS = (
    ("adc", "ADC (data coalescing)"),
    ("shift", "Right shift (barrel shifter)"),
    ("flags", "Branch flags (nzp)"),
    ("mult", "Multiplication"),
    ("xchg", "Accumulator exchange"),
    ("subr", "Subroutines (call/ret)"),
    ("fullalu", "Full ALU (and/or/sub/neg)"),
    ("mem2x", "Double data memory"),
)


@dataclass
class FeatureReport:
    """One extension's cost and benefit relative to the base design."""

    feature: str
    label: str
    area_ratio: float
    cell_ratio: float
    #: {kernel name: code size in bits}
    code_bits: Dict[str, int] = field(default_factory=dict)
    code_ratio: float = 1.0
    code_ratio_by_kernel: Dict[str, float] = field(default_factory=dict)


def _suite_code_bits(target):
    return {
        kernel.name: kernel.program(target).size_bits for kernel in SUITE
    }


def feature_sweep():
    """Run the Figure 9/10 sweep.  Returns (base_report, [FeatureReport])."""
    base_netlist = build_extended_core(())
    base_target = Target.named("extacc[base]")
    base_bits = _suite_code_bits(base_target)
    base_total = sum(base_bits.values())

    base_report = FeatureReport(
        feature="base",
        label="Base FlexiCore4 ISA",
        area_ratio=1.0,
        cell_ratio=1.0,
        code_bits=base_bits,
        code_ratio=1.0,
        code_ratio_by_kernel={name: 1.0 for name in base_bits},
    )

    reports = []
    for feature, label in FEATURE_LABELS:
        netlist = build_extended_core((feature,))
        target = Target.named(f"extacc[{feature}]")
        bits = _suite_code_bits(target)
        total = sum(bits.values())
        reports.append(FeatureReport(
            feature=feature,
            label=label,
            area_ratio=netlist.nand2_area / base_netlist.nand2_area,
            cell_ratio=netlist.gate_count / base_netlist.gate_count,
            code_bits=bits,
            code_ratio=total / base_total,
            code_ratio_by_kernel={
                name: bits[name] / base_bits[name] for name in bits
            },
        ))
    return base_report, reports


def revised_isa_report():
    """The final revised operation set (Section 6.1) vs the base."""
    base_netlist = build_extended_core(())
    base_bits = _suite_code_bits(Target.named("extacc[base]"))
    full_netlist = build_extended_core(
        frozenset({"adc", "shift", "flags", "xchg", "subr", "fullalu"})
    )
    full_bits = _suite_code_bits(Target.named("extacc"))
    return {
        "area_ratio": full_netlist.nand2_area / base_netlist.nand2_area,
        "code_ratio": sum(full_bits.values()) / sum(base_bits.values()),
        "code_ratio_by_kernel": {
            name: full_bits[name] / base_bits[name] for name in full_bits
        },
    }
