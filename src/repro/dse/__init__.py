"""Design-space exploration of Section 6."""

from repro.dse.designs import (
    ACC_MC,
    ACC_P,
    ACC_SC,
    ALL_DESIGNS,
    BASELINE,
    DSE_DESIGNS,
    LS_MC,
    LS_P,
    LS_SC,
    DesignPoint,
)
from repro.dse.evaluate import (
    DesignMetrics,
    KernelMetrics,
    evaluate_all,
    evaluate_design,
    evaluate_design_job,
    period_units,
)
from repro.dse.features import (
    FEATURE_LABELS,
    FeatureReport,
    feature_sweep,
    revised_isa_report,
)
from repro.dse.search import (
    ScoredDesign,
    SearchConfig,
    SearchResult,
    exhaustive,
    format_search_frontier,
    frontier_of,
    score_design_job,
    search,
)
from repro.dse.space import DesignSpace, Genome

__all__ = [
    "ACC_MC", "ACC_P", "ACC_SC", "ALL_DESIGNS", "BASELINE",
    "DSE_DESIGNS", "DesignMetrics", "DesignPoint", "DesignSpace",
    "FEATURE_LABELS", "FeatureReport", "Genome", "KernelMetrics",
    "LS_MC", "LS_P", "LS_SC", "ScoredDesign", "SearchConfig",
    "SearchResult", "evaluate_all", "evaluate_design",
    "evaluate_design_job", "exhaustive", "feature_sweep",
    "format_search_frontier", "frontier_of", "period_units",
    "revised_isa_report", "score_design_job", "search",
]
