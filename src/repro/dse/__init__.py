"""Design-space exploration of Section 6."""

from repro.dse.designs import (
    ACC_MC,
    ACC_P,
    ACC_SC,
    ALL_DESIGNS,
    BASELINE,
    DSE_DESIGNS,
    LS_MC,
    LS_P,
    LS_SC,
    DesignPoint,
)
from repro.dse.evaluate import (
    DesignMetrics,
    KernelMetrics,
    evaluate_all,
    evaluate_design,
    evaluate_design_job,
    period_units,
)
from repro.dse.features import (
    FEATURE_LABELS,
    FeatureReport,
    feature_sweep,
    revised_isa_report,
)

__all__ = [
    "ACC_MC", "ACC_P", "ACC_SC", "ALL_DESIGNS", "BASELINE",
    "DSE_DESIGNS", "DesignMetrics", "DesignPoint", "FEATURE_LABELS",
    "FeatureReport", "KernelMetrics", "LS_MC", "LS_P", "LS_SC",
    "evaluate_all", "evaluate_design", "evaluate_design_job",
    "feature_sweep", "period_units", "revised_isa_report",
]
