"""Scalar reference mirror of the field-batched wafer Monte Carlo.

PR 4 vectorized :func:`repro.fab.yield_model.fabricate_wafer` and
:meth:`FabricatedWafer.probe` into whole-wafer array arithmetic.  This
module re-derives the same results die by die in plain Python so the
conformance harness can check ``vectorized == scalar`` bit-for-bit.

What is shared and what is re-derived:

- **Random draws are shared.**  Both paths must consume the generator
  stream identically (that equality is part of what the oracle checks),
  so the mirror issues the *same* array-valued ``rng`` calls in the
  same order -- including the ``np.exp`` applied to the drawn normals,
  since a vectorized transcendental is not guaranteed to round like a
  scalar ``math.exp`` call.
- **Everything downstream of the draws is re-derived scalar-wise**:
  defect-density and radial-gradient composition, timing
  classification, error-count clamping and integer truncation, and the
  current model all run per die on Python floats, in the same
  association order as the array expressions.  IEEE-754 double
  arithmetic is deterministic, so any difference is a real divergence
  in the vectorized composition, not float noise.
"""

import math

import numpy as np

from repro.fab.yield_model import (
    TEST_CYCLES,
    Die,
    FabricatedWafer,
    ProbeRecord,
    WaferProbeResult,
)
from repro.fab.wafer import Wafer
from repro.tech.power import FMAX_HZ, OperatingPoint, static_power_w


def fabricate_wafer_scalar(netlist, process, rng, wafer=None,
                           timing_report=None):
    """Scalar mirror of :func:`repro.fab.yield_model.fabricate_wafer`."""
    from repro.netlist.sta import analyze

    wafer = wafer or Wafer.standard()
    timing_report = timing_report or analyze(netlist)
    area_mm2 = netlist.area_mm2
    sites = wafer.sites
    radius = max(site.radius_mm for site in sites) or 1.0

    # Per-die scalar composition of the defect/speed/current fields.
    lam = []
    speed_mu = []
    radial = []
    for site in sites:
        edge = not site.in_inclusion_zone
        density = process.defect_density_per_mm2
        if edge:
            density = density * process.edge_defect_multiplier
        lam.append(density * area_mm2)
        speed_mu.append(math.log(process.edge_speed_penalty)
                       if edge else 0.0)
        ratio = site.radius_mm / radius
        # ratio * ratio, not ratio ** 2: numpy lowers an array ** 2 to
        # np.square (one multiply), and the mirror must round the same.
        radial.append(
            1.0 + process.radial_current_gradient * (ratio * ratio)
        )

    # The draws themselves (and the exp over them) are shared with the
    # vectorized path: same arguments, same order, same stream.
    defects = rng.poisson(np.array(lam))
    speeds = np.exp(rng.normal(np.array(speed_mu), process.speed_sigma))
    lognormals = np.exp(
        rng.normal(0.0, process.current_sigma, size=len(sites))
    )
    dies = []
    for index, site in enumerate(sites):
        dies.append(Die(
            site=site,
            defects=int(defects[index]),
            speed_factor=float(speeds[index]),
            current_factor=float(radial[index] * float(lognormals[index])),
        ))
    return FabricatedWafer(
        wafer=wafer, process=process, dies=dies,
        base_pullups=netlist.pullups, timing_report=timing_report,
    )


def probe_scalar(fabricated, voltage, rng, frequency_hz=FMAX_HZ):
    """Scalar mirror of :meth:`FabricatedWafer.probe`."""
    point = OperatingPoint(
        vdd=voltage, refined_pullups=fabricated.process.refined_pullups
    )
    base_power = static_power_w(fabricated.base_pullups, point)
    dies = fabricated.dies
    n = len(dies)
    base_period = fabricated.timing_report.period_s(voltage, 1.0)

    # Shared noise draws (identical calls to the vectorized path).
    defect_noise = np.exp(rng.normal(9.0, 1.8, size=n))
    timing_noise = np.exp(rng.normal(7.0, 1.2, size=n))
    current_noise = np.exp(rng.normal(0.0, 0.35, size=n))

    base_current = base_power / voltage
    records = []
    for index, die in enumerate(dies):
        speed = die.speed_factor
        has_defect = die.defects > 0
        meets_timing = 1.0 / (base_period * speed) >= frequency_hz
        functional = (not has_defect) and meets_timing
        if functional:
            errors = 0
            mode = None
        elif has_defect:
            errors = max(
                int(min(TEST_CYCLES,
                        float(defect_noise[index]) * die.defects)),
                1,
            )
            mode = "defect"
        else:
            shortfall = base_period * speed * frequency_hz - 1.0
            errors = int(min(
                TEST_CYCLES,
                max(1.0, shortfall * float(timing_noise[index])),
            ))
            mode = "timing"
        current_a = base_current * die.current_factor
        if has_defect:
            current_a = current_a * float(current_noise[index])
        records.append(ProbeRecord(
            site=die.site,
            functional=bool(functional),
            errors=errors,
            current_ma=float(current_a * 1e3),
            failure_mode=mode,
        ))
    return WaferProbeResult(voltage=voltage, records=records)
