"""Wafer fabrication and probing Monte Carlo (Sections 4.1 and 4.2).

:func:`fabricate_wafer` rolls one wafer: every die site draws a Poisson
defect count (density scaled up in the edge-exclusion ring), a lognormal
speed factor (how much slower than typical its critical path is) and a
lognormal static-current factor with a mild radial gradient.

:meth:`FabricatedWafer.probe` then reproduces the paper's test flow at a
chosen supply voltage: a die passes when it has zero defects *and* its
process corner meets the 12.5 kHz test clock at that voltage.  Failing
dies report a nonzero output-error count over the ~100,000-cycle vector
suite (Figure 6's wafer maps); every probed die reports a current draw
(Figure 7's maps and the Section 4.2 variation study).

:func:`gate_probe_wafer` replaces the analytic pass/fail model with an
actual gate-level campaign: each die's defect draw becomes stuck-at
faults in one simulation lane of a wafer-scale vector backend, so a
full Table 5 yield study (:func:`run_gate_yield_study`) is *simulated*
die by die in a handful of engine jobs, with every die replayable
bit-for-bit against the interpreted reference.
"""

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional

import numpy as np

from repro import obs
from repro.engine import Job, engine_or_default, job_function, spawn_seeds
from repro.fab.process import WaferProcess
from repro.fab.testing import fault_study_job
from repro.fab.wafer import Wafer
from repro.netlist.backend import default_backend
from repro.netlist.verify import run_cross_check_batch
from repro.tech import tft
from repro.tech.power import FMAX_HZ, OperatingPoint, static_power_w

#: Cycles in the probe vector suite (Section 4.1: "over 100,000 cycles").
TEST_CYCLES = 100_000


@dataclass
class Die:
    """One fabricated die's latent process draw."""

    site: object
    defects: int
    speed_factor: float
    current_factor: float

    @property
    def has_defect(self):
        return self.defects > 0


@dataclass
class ProbeRecord:
    """Result of probing one die at one voltage."""

    site: object
    functional: bool
    errors: int
    current_ma: float
    failure_mode: Optional[str]  # None | 'defect' | 'timing'


@dataclass
class WaferProbeResult:
    """All probe records for one wafer at one voltage."""

    voltage: float
    records: List[ProbeRecord]

    def _subset(self, inclusion_only):
        if not inclusion_only:
            return self.records
        return [r for r in self.records if r.site.in_inclusion_zone]

    def yield_fraction(self, inclusion_only=True):
        subset = self._subset(inclusion_only)
        if not subset:
            return 0.0
        passing = sum(1 for record in subset if record.functional)
        return passing / len(subset)

    def functional_currents_ma(self, inclusion_only=True):
        return np.array([
            record.current_ma for record in self._subset(inclusion_only)
            if record.functional
        ])

    def current_statistics(self, inclusion_only=True):
        """(mean mA, std mA, relative std) over functional dies --
        the Section 4.2 process-variation metrics."""
        currents = self.functional_currents_ma(inclusion_only)
        if len(currents) == 0:
            return 0.0, 0.0, 0.0
        mean = float(np.mean(currents))
        std = float(np.std(currents))
        return mean, std, (std / mean if mean else 0.0)

    def error_map(self):
        """{(row, col): errors} for rendering the Figure 6 wafer maps."""
        return {
            (record.site.row, record.site.col): record.errors
            for record in self.records
        }

    def current_map(self):
        """{(row, col): mA} for the Figure 7 wafer maps."""
        return {
            (record.site.row, record.site.col): record.current_ma
            for record in self.records
        }


@dataclass
class FabricatedWafer:
    """One wafer of dies plus the design knowledge needed to probe them."""

    wafer: Wafer
    process: WaferProcess
    dies: List[Die]
    base_pullups: int
    timing_report: object  # repro.netlist.sta.TimingReport

    def probe(self, voltage, rng, frequency_hz=FMAX_HZ):
        """Probe every die at ``voltage`` (the paper probes 3 V and 4.5 V).

        Field-batched Monte Carlo: every noise field is a single
        generator call over all die sites (one defect-error draw, one
        timing-error draw, one defect-current draw), and the
        pass/fail classification runs as array arithmetic.  The scalar
        path drew lazily per failing die, so the random stream is
        consumed in a different order -- the distributions are
        identical, and the Table 5 calibration tests pin the result.
        """
        point = OperatingPoint(
            vdd=voltage, refined_pullups=self.process.refined_pullups
        )
        base_power = static_power_w(self.base_pullups, point)
        dies = self.dies
        n = len(dies)
        speed = np.array([die.speed_factor for die in dies])
        defects = np.array([die.defects for die in dies])
        factors = np.array([die.current_factor for die in dies])
        has_defect = defects > 0
        # ``period_s`` associates as ((units*SPD)*delay_factor)*speed,
        # so base_period * speed is float-identical to the per-die call.
        base_period = self.timing_report.period_s(voltage, 1.0)
        meets_timing = 1.0 / (base_period * speed) >= frequency_hz
        functional = ~has_defect & meets_timing
        # A structural fault corrupts a large share of vectors; a
        # timing miss produces errors growing with the shortfall.
        defect_noise = np.exp(rng.normal(9.0, 1.8, size=n))
        timing_noise = np.exp(rng.normal(7.0, 1.2, size=n))
        current_noise = np.exp(rng.normal(0.0, 0.35, size=n))
        defect_errors = np.maximum(
            np.minimum(TEST_CYCLES, defect_noise * defects)
            .astype(np.int64),
            1,
        )
        shortfall = base_period * speed * frequency_hz - 1.0
        timing_errors = np.minimum(
            TEST_CYCLES, np.maximum(1.0, shortfall * timing_noise)
        ).astype(np.int64)
        # P ~ V^2 through the pull-ups, so I = P/V scales linearly in
        # V -- matching the measured 1.1 mA @ 4.5 V vs 0.73 mA @ 3 V.
        # Shorts/opens push a defective die's current either way.
        current_a = base_power / voltage * factors
        current_ma = np.where(
            has_defect, current_a * current_noise, current_a
        ) * 1e3

        records = []
        for index, die in enumerate(dies):
            if functional[index]:
                errors = 0
                mode = None
            elif has_defect[index]:
                errors = int(defect_errors[index])
                mode = "defect"
            else:
                errors = int(timing_errors[index])
                mode = "timing"
            records.append(ProbeRecord(
                site=die.site,
                functional=bool(functional[index]),
                errors=errors,
                current_ma=float(current_ma[index]),
                failure_mode=mode,
            ))
        result = WaferProbeResult(voltage=voltage, records=records)
        if obs.active():
            _fold_probe(result)
        return result


def _fold_probe(result):
    """Per-wafer die pass/fail/timing counters, labelled by voltage."""
    registry = obs.registry()
    voltage = f"{result.voltage:g}"
    probed = registry.counter(
        "fab_dies_probed_total", "Dies probed, by test voltage",
    )
    passed = registry.counter(
        "fab_dies_pass_total", "Functional dies, by test voltage",
    )
    failed = registry.counter(
        "fab_die_failures_total",
        "Non-functional dies by failure mode and test voltage",
    )
    probed.inc(len(result.records), voltage=voltage)
    for record in result.records:
        if record.functional:
            passed.inc(voltage=voltage)
        else:
            failed.inc(mode=record.failure_mode or "unknown",
                       voltage=voltage)
    registry.counter(
        "fab_wafers_probed_total", "Wafer probe passes, by voltage",
    ).inc(voltage=voltage)


def fabricate_wafer(netlist, process, rng, wafer=None, timing_report=None):
    """Roll one wafer of ``netlist`` dies under ``process``.

    Field-batched: one Poisson draw over every die site's defect rate,
    one lognormal draw per variation field (speed, static current), so
    a wafer costs three generator calls instead of three per die.  The
    per-die draw order of the scalar version is not preserved; the
    distributions are, and the calibration tests pin the Table 5
    yields and current spreads.
    """
    from repro.netlist.sta import analyze

    wafer = wafer or Wafer.standard()
    timing_report = timing_report or analyze(netlist)
    area_mm2 = netlist.area_mm2
    sites = wafer.sites
    radius = max(site.radius_mm for site in sites) or 1.0
    edge = np.array([not site.in_inclusion_zone for site in sites])
    density = np.where(
        edge,
        process.defect_density_per_mm2 * process.edge_defect_multiplier,
        process.defect_density_per_mm2,
    )
    speed_mu = np.where(edge, math.log(process.edge_speed_penalty), 0.0)
    radii = np.array([site.radius_mm for site in sites])
    radial = 1.0 + process.radial_current_gradient * (radii / radius) ** 2

    defects = rng.poisson(density * area_mm2)
    speeds = np.exp(rng.normal(speed_mu, process.speed_sigma))
    currents = radial * np.exp(
        rng.normal(0.0, process.current_sigma, size=len(sites))
    )
    dies = [
        Die(
            site=site, defects=int(defect),
            speed_factor=float(speed), current_factor=float(current),
        )
        for site, defect, speed, current
        in zip(sites, defects, speeds, currents)
    ]
    return FabricatedWafer(
        wafer=wafer, process=process, dies=dies,
        base_pullups=netlist.pullups, timing_report=timing_report,
    )


def _probe_bucket(probe):
    """Compact pass/current summary of one probed wafer at one voltage."""
    bucket = {"full_pass": 0, "full_total": 0,
              "incl_pass": 0, "incl_total": 0, "currents": []}
    for record in probe.records:
        bucket["full_total"] += 1
        bucket["full_pass"] += record.functional
        if record.site.in_inclusion_zone:
            bucket["incl_total"] += 1
            bucket["incl_pass"] += record.functional
            if record.functional:
                bucket["currents"].append(record.current_ma)
    return bucket


def _merge_buckets(per_wafer, voltages):
    """Fold per-wafer buckets into the Table 5 summary, in wafer order
    (so the result is independent of execution order)."""
    summary = {}
    for voltage in voltages:
        merged = {"full_pass": 0, "full_total": 0,
                  "incl_pass": 0, "incl_total": 0, "currents": []}
        for buckets in per_wafer:
            bucket = buckets[voltage]
            for count in ("full_pass", "full_total",
                          "incl_pass", "incl_total"):
                merged[count] += bucket[count]
            merged["currents"].extend(bucket["currents"])
        currents = np.array(merged["currents"])
        mean = float(np.mean(currents)) if len(currents) else 0.0
        std = float(np.std(currents)) if len(currents) else 0.0
        summary[voltage] = {
            "full": merged["full_pass"] / max(1, merged["full_total"]),
            "inclusion": (
                merged["incl_pass"] / max(1, merged["incl_total"])
            ),
            "mean_current_ma": mean,
            "std_current_ma": std,
            "rsd": std / mean if mean else 0.0,
        }
    return summary


@job_function("fab.merge_yield", version="1")
def merge_yield_job(params, seed):
    """Engine job: fold per-wafer buckets into the Table 5 summary.

    Runs as the sink node of the yield graph with ``per_wafer``
    injected from the wafer nodes' results.  Submitted with
    ``cached=False``: the fold is cheap and its inputs are already
    cached per wafer, so an extra entry would only dilute hit
    accounting.
    """
    return _merge_buckets(params["per_wafer"], params["voltages"])


@lru_cache(maxsize=None)
def _core_static(core):
    """Per-process memo of a named core's netlist and timing report, so
    pool workers build each core at most once."""
    from repro.netlist.cores import build_core
    from repro.netlist.sta import analyze

    netlist = build_core(core)
    return netlist, analyze(netlist)


@job_function("fab.wafer_yield", version="2")
def wafer_yield_job(params, seed):
    """Engine job: fabricate one wafer of ``params['core']`` and probe
    it at every voltage, returning compact per-voltage buckets.

    Version 2: the wafer Monte Carlo draws are field-batched, which
    consumes the seed stream in a different order than version 1 --
    the version bump invalidates cached version-1 wafers so a cached
    sweep can never mix the two draw orders.
    """
    with obs.span("fab.wafer_yield", core=params["core"]):
        netlist, report = _core_static(params["core"])
        rng = seed.rng()
        with obs.span("fab.fabricate", core=params["core"]):
            fabricated = fabricate_wafer(
                netlist, params["process"], rng, timing_report=report
            )
        buckets = {}
        for voltage in params["voltages"]:
            with obs.span("fab.probe", voltage=voltage):
                buckets[voltage] = _probe_bucket(
                    fabricated.probe(voltage, rng)
                )
        return buckets


@job_function("fab.probed_wafer", version="2")
def probed_wafer_job(params, seed):
    """Engine job: one fabricated wafer with its full probe records
    (the Figure 6/7 wafer maps need every die, not just the counts).

    Version 2: field-batched Monte Carlo draws (see
    :func:`wafer_yield_job`)."""
    with obs.span("fab.probed_wafer", core=params["core"]):
        netlist, report = _core_static(params["core"])
        rng = seed.rng()
        with obs.span("fab.fabricate", core=params["core"]):
            fabricated = fabricate_wafer(
                netlist, params["process"], rng, timing_report=report
            )
        probes = {}
        for voltage in params["voltages"]:
            with obs.span("fab.probe", voltage=voltage):
                probes[voltage] = fabricated.probe(voltage, rng)
        return {"fabricated": fabricated, "probes": probes}


def gate_probe_wafer(netlist, isa, fabricated, rng, voltages=(3.0, 4.5),
                     *, backend=None, max_instructions=120,
                     frequency_hz=FMAX_HZ):
    """Probe every die on a wafer *gate-level*: one simulation lane per die.

    Each die's latent Poisson defect count is materialized as that many
    distinct stuck-at sites (its whole multi-defect draw occupying one
    lane), and the entire wafer runs as a single
    :func:`~repro.netlist.verify.run_cross_check_batch` campaign --
    under the vector backend, one settle pass advances all 124 dies at
    once.  Mismatch counts are voltage-independent (a stuck gate fails
    the vectors at any supply), so one gate campaign serves every
    probe voltage; timing is classified analytically per voltage from
    the die's speed factor, exactly as :meth:`FabricatedWafer.probe`
    does.

    Returns ``(probes, campaign)``: ``probes`` maps voltage to a
    :class:`WaferProbeResult` whose error counts are the *gate-level*
    mismatch tallies (the Figure 6 maps, simulated rather than drawn
    from the error-noise model), and ``campaign`` records the stimulus
    (IPORT samples, instruction budget) plus per-die fault sites and
    mismatch counts -- everything needed to replay any die against the
    interpreted reference bit for bit.
    Note a defective die whose faults the vectors never observe counts
    *functional* here (a test escape); the analytic model's yield is a
    lower bound on this one.
    """
    from repro.fab.testing import directed_program, sample_fault_sites

    dies = fabricated.dies
    faults = [
        sample_fault_sites(netlist, rng, die.defects) if die.defects
        else None
        for die in dies
    ]
    program = directed_program(isa)
    inputs = [int(value) for value in rng.integers(0, 16, size=64)]
    with obs.span("fab.gate_probe", dies=len(dies),
                  backend=backend or default_backend()):
        outcomes = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=max_instructions, faults=faults,
            backend=backend,
        )
    mismatches = np.array([outcome.mismatches for outcome in outcomes])

    speed = np.array([die.speed_factor for die in dies])
    factors = np.array([die.current_factor for die in dies])
    has_defect = np.array([die.has_defect for die in dies])
    current_noise = np.exp(rng.normal(0.0, 0.35, size=len(dies)))
    probes = {}
    for voltage in voltages:
        point = OperatingPoint(
            vdd=voltage, refined_pullups=fabricated.process.refined_pullups
        )
        base_power = static_power_w(fabricated.base_pullups, point)
        base_period = fabricated.timing_report.period_s(voltage, 1.0)
        meets_timing = 1.0 / (base_period * speed) >= frequency_hz
        functional = (mismatches == 0) & meets_timing
        shortfall = base_period * speed * frequency_hz - 1.0
        current_a = base_power / voltage * factors
        current_ma = np.where(
            has_defect, current_a * current_noise, current_a
        ) * 1e3
        records = []
        for index, die in enumerate(dies):
            if functional[index]:
                errors, mode = 0, None
            elif mismatches[index]:
                errors, mode = int(mismatches[index]), "defect"
            else:
                # Deterministic timing-shortfall error count: the gate
                # simulation is zero-delay, so a timing miss is scored
                # from the analytic shortfall, noise-free.
                errors = int(min(
                    TEST_CYCLES,
                    max(1.0, round(shortfall[index] * TEST_CYCLES)),
                ))
                mode = "timing"
            records.append(ProbeRecord(
                site=die.site,
                functional=bool(functional[index]),
                errors=errors,
                current_ma=float(current_ma[index]),
                failure_mode=mode,
            ))
        result = WaferProbeResult(voltage=voltage, records=records)
        if obs.active():
            _fold_probe(result)
        probes[voltage] = result

    campaign = {
        "inputs": inputs,
        "max_instructions": max_instructions,
        "dies": [
            {
                "row": die.site.row,
                "col": die.site.col,
                "inclusion": bool(die.site.in_inclusion_zone),
                "defects": die.defects,
                "fault_sites": list(faults[index]) if faults[index] else [],
                "mismatches": int(mismatches[index]),
                "speed_factor": die.speed_factor,
            }
            for index, die in enumerate(dies)
        ],
    }
    return probes, campaign


@job_function("fab.gate_wafer_yield", version="1")
def gate_wafer_yield_job(params, seed):
    """Engine job: fabricate one wafer and probe every die gate-level.

    The whole wafer is one simulation campaign (one lane per die, see
    :func:`gate_probe_wafer`), so a full Table 5 study is ``wafers``
    engine jobs rather than thousands of per-die runs.  Returns the
    per-voltage Table 5 buckets, the gate-level Figure 6 error maps,
    and per-die records (fault sites, mismatch counts) sufficient to
    replay any die against the interpreted reference.
    """
    from repro.isa import get_isa

    with obs.span("fab.gate_wafer_yield", core=params["core"],
                  backend=params["backend"]):
        netlist, report = _core_static(params["core"])
        rng = seed.rng()
        with obs.span("fab.fabricate", core=params["core"]):
            fabricated = fabricate_wafer(
                netlist, params["process"], rng, timing_report=report
            )
        probes, campaign = gate_probe_wafer(
            netlist, get_isa(params["isa"]), fabricated, rng,
            voltages=params["voltages"],
            backend=params["backend"],
            max_instructions=params.get("max_instructions", 120),
        )
        return {
            "buckets": {
                voltage: _probe_bucket(probe)
                for voltage, probe in probes.items()
            },
            "error_maps": {
                voltage: {
                    f"{row},{col}": errors
                    for (row, col), errors in probe.error_map().items()
                }
                for voltage, probe in probes.items()
            },
            "inputs": campaign["inputs"],
            "max_instructions": campaign["max_instructions"],
            "dies": campaign["dies"],
        }


def run_gate_yield_study(process, *, seed, core="flexicore4", wafers=5,
                         voltages=(3.0, 4.5), backend="vector",
                         max_instructions=120, engine=None):
    """The Table 5 study with every die *simulated*, not modelled.

    One engine job per wafer (see :func:`gate_wafer_yield_job`); each
    job runs its whole wafer as a single gate-level campaign through
    ``backend`` (default ``"vector"``, whose lane capacity covers any
    wafer).  Returns ``{"summary": {voltage: table5_row},
    "wafers": [per-wafer job results]}`` -- the summary matches
    :func:`run_yield_study`'s shape, the wafer entries carry the
    gate-level Figure 6 error maps and the per-die fault sites needed
    to cross-check sampled dies against the interpreted reference.
    """
    eng = engine_or_default(engine)
    nodes = [
        eng.submit(Job(
            gate_wafer_yield_job,
            {"core": core, "isa": core, "process": process,
             "voltages": tuple(voltages), "backend": backend,
             "max_instructions": max_instructions},
            seed=child,
            label=f"{core}:gate-wafer{index}",
        ))
        for index, child in enumerate(spawn_seeds(seed, wafers))
    ]
    eng.run_graph(stage=f"gate-yield:{core}")
    results = [node.result for node in nodes]
    summary = _merge_buckets(
        [result["buckets"] for result in results], tuple(voltages)
    )
    return {"summary": summary, "wafers": results}


def run_fault_coverage(cores=("flexicore4", "flexicore8"), *, seed,
                       faults=20, backend=None, max_instructions=300,
                       engine=None):
    """Measured stuck-at fault coverage per core, through the engine.

    The yield model assumes any structural defect makes a die
    non-functional; this runs the Section 4.1 fault-injection campaign
    (one engine job per core, batched into simulation lanes by the
    selected backend) to measure how often the probe vectors would
    actually observe a defect.  Returns ``{core: {"injected": n,
    "detected": n, "coverage": fraction, "details": [...]}}``.
    """
    backend = backend or default_backend()
    eng = engine_or_default(engine)
    nodes = [
        eng.submit(_fault_job(core, child, faults, max_instructions,
                              backend))
        for core, child in zip(cores, spawn_seeds(seed, len(cores)))
    ]
    eng.run_graph(stage="fault-coverage")
    return {core: node.result for core, node in zip(cores, nodes)}


def _fault_job(core, child, faults, max_instructions, backend):
    """The fault-injection campaign job for one core.

    Shared by :func:`run_fault_coverage` and the yield graph's fault
    branch so both address the same cache entries.
    """
    return Job(
        fault_study_job,
        {"core": core, "isa": core, "faults": faults,
         "max_instructions": max_instructions, "backend": backend},
        seed=child,
        label=f"faults:{core}:{backend}",
    )


def run_yield_study(netlist, process, rng=None, wafers=5,
                    voltages=(3.0, 4.5), *, seed=None, core=None,
                    engine=None, fault_check=0, backend=None):
    """Monte Carlo over several wafers: the Table 5 numbers.

    Returns {voltage: {"full": fraction, "inclusion": fraction,
    "mean_current_ma": .., "rsd": ..}} aggregated over wafers.
    With ``fault_check=N`` (engine-seeded mode only) the summary also
    carries a ``"fault_coverage"`` entry: an N-fault injection campaign
    on the core, run through the selected simulation ``backend``, that
    grounds the defect=non-functional assumption.

    Two seeding modes:

    - ``seed=`` (int or :class:`~repro.engine.ChildSeed`): each wafer
      draws from its own ``SeedSequence.spawn`` child, and the wafers
      run as engine jobs -- parallel over ``--jobs`` workers, cached on
      disk, and bit-for-bit identical to the serial run.  ``core`` names
      the registered core builder (defaults to ``netlist.name``).
    - ``rng=`` (legacy): a single generator threaded through the wafers
      sequentially; inherently serial and order-dependent, kept for
      callers that fabricate unregistered netlists.
    """
    if seed is not None:
        core = core or getattr(netlist, "name", None)
        from repro.netlist.cores import CORE_BUILDERS

        if core not in CORE_BUILDERS:
            raise ValueError(
                f"engine-backed yield study needs a registered core "
                f"name, got {core!r}; pass rng= for ad-hoc netlists"
            )
        # One child per wafer plus a spare for the optional fault
        # campaign, so the two studies never share a seed stream.
        # Everything goes into one dependency graph: the wafer jobs
        # and the fault campaign are independent branches that overlap
        # in the executor, and the merge node streams in as soon as
        # the last wafer lands (instead of barriering per stage).
        children = spawn_seeds(seed, wafers + 1)
        eng = engine_or_default(engine)
        # The fault campaign is the long pole, so it is submitted (and
        # therefore dispatched) first; the wafer jobs pack in around it
        # on the remaining workers.
        fault_node = None
        if fault_check:
            fault_node = eng.submit(_fault_job(
                core, children[wafers], fault_check, 300,
                backend or default_backend(),
            ))
        wafer_nodes = [
            eng.submit(Job(
                wafer_yield_job,
                {"core": core, "process": process,
                 "voltages": tuple(voltages)},
                seed=child,
                label=f"{core}:wafer{index}",
            ))
            for index, child in enumerate(children[:wafers])
        ]
        merge_node = eng.submit(
            Job(merge_yield_job, {"voltages": tuple(voltages)},
                label=f"{core}:merge", cached=False),
            deps={"per_wafer": wafer_nodes},
        )
        eng.run_graph(stage=f"yield:{core}")
        summary = merge_node.result
        if fault_node is not None:
            summary["fault_coverage"] = fault_node.result
        return summary

    if fault_check:
        raise TypeError(
            "fault_check= needs the engine-seeded mode (pass seed=)"
        )
    if rng is None:
        raise TypeError("run_yield_study requires either seed= or rng=")
    per_wafer = []
    for _ in range(wafers):
        fabricated = fabricate_wafer(netlist, process, rng)
        per_wafer.append({
            voltage: _probe_bucket(fabricated.probe(voltage, rng))
            for voltage in voltages
        })
    return _merge_buckets(per_wafer, voltages)
