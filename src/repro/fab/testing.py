"""Die test-vector methodology (Section 4.1).

The paper probes every die with >100,000 cycles of directed plus random
vectors derived from RTL simulation, requiring gates to toggle ("gates
toggling on average 24,060 times, and all gates toggle at least once")
and counting any output mismatch as a failure.

This module builds the same kind of vector suite as *programs* (the
natural stimulus for a processor with an off-chip instruction bus), and
validates the yield model's core assumption -- that structural defects
are observable at the outputs -- by injecting stuck-at faults into the
gate-level netlist and measuring the detection rate.
"""

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.asm import assemble
from repro.netlist.verify import run_cross_check


def directed_program(isa):
    """A short program touching every instruction class: ALU ops in both
    addressing modes, loads/stores over the whole memory, and both branch
    outcomes -- the "directed" half of the Section 4.1 vectors."""
    lines = ["start:"]
    words = isa.mem_words
    # Fill and read back every memory word through the output port, so
    # storage and addressing faults reach the pins.
    for addr in range(2, words):
        lines += [
            "    load 0",
            f"    addi {(5 * addr) % 16}",
            f"    store {addr}",
        ]
    for addr in range(2, words):
        lines += [f"    load {addr}", "    store 1"]
    # Exercise every ALU function in both addressing modes, observing
    # each result.
    for addr in range(2, words):
        for op in ("add", "nand", "xor"):
            lines += [f"    {op} {addr}", "    store 1"]
    for imm in (0, 1, 5, 8, 10, 15):
        lines += [f"    addi {imm}", "    store 1",
                  f"    nandi {imm}", "    store 1",
                  f"    xori {imm}", "    store 1"]
    # Both branch directions, from both accumulator sign states.
    lines += [
        "    load 0",
        "    store 1",
        "    nandi 0",         # acc = 0xF...: negative
        "    brn taken",
        "    store 1",         # (not reached when healthy)
        "taken:",
        "    xori 8",          # clear the MSB on a 4-bit machine
        "    brn start",       # must fall through when positive
        "    store 1",
        "    nandi 0",
        "    brn start",
    ]
    return assemble("\n".join(lines), isa, source_name="directed")


def random_program(isa, rng, length=96):
    """Random well-formed instructions (the "random" vector half).

    Branches target random earlier/later addresses within the page, so
    control flow wanders but never leaves the program.
    """
    choices = [m for m in isa.mnemonics() if m not in ("ldb",)]
    lines = []
    for index in range(length):
        mnemonic = choices[int(rng.integers(0, len(choices)))]
        spec = isa.spec(mnemonic)
        operands = []
        for operand in spec.operands:
            if operand.kind.name == "TARGET":
                operands.append(str(int(rng.integers(0, length))))
            else:
                lo = max(operand.lo, 0)
                operands.append(str(int(rng.integers(lo, operand.hi + 1))))
        lines.append(f"    {mnemonic} " + ", ".join(operands))
    return assemble("\n".join(lines), isa, source_name="random")


@dataclass
class FaultStudyResult:
    """Outcome of a stuck-at fault-injection campaign."""

    injected: int
    detected: int
    details: List[str]

    @property
    def coverage(self):
        return self.detected / self.injected if self.injected else 0.0


def fault_injection_study(netlist, isa, rng, faults=20,
                          max_instructions=300):
    """Inject random stuck-at faults and check the vectors catch them.

    This grounds the yield model: a die with any structural defect is
    assumed non-functional, which is only fair if the test vectors would
    actually observe the defect.
    """
    program = directed_program(isa)
    inputs = [int(rng.integers(0, 16)) for _ in range(64)]
    detected = 0
    details = []
    candidates = [g for g in netlist.gates if not g.sequential]
    with obs.span("fab.fault_injection", faults=faults):
        for _ in range(faults):
            gate = candidates[int(rng.integers(0, len(candidates)))]
            stuck = int(rng.integers(0, 2))
            result = run_cross_check(
                netlist, isa, program, inputs=inputs,
                max_instructions=max_instructions,
                fault=(gate.name, stuck),
            )
            caught = not result.passed
            detected += caught
            details.append(
                f"{gate.name} stuck-at-{stuck}: "
                f"{'DETECTED' if caught else 'missed'}"
            )
    if obs.active():
        registry = obs.registry()
        registry.counter(
            "fab_faults_injected_total", "Stuck-at faults injected",
        ).inc(faults)
        registry.counter(
            "fab_faults_detected_total",
            "Injected faults observed at the outputs",
        ).inc(detected)
    return FaultStudyResult(
        injected=faults, detected=detected, details=details
    )


def toggle_coverage_study(netlist, isa, rng, instructions=2000):
    """Run the directed program long enough to measure toggle coverage,
    the Section 4.1 metric."""
    program = directed_program(isa)
    inputs = [int(rng.integers(0, 16)) for _ in range(4096)]
    with obs.span("fab.toggle_coverage", instructions=instructions):
        result = run_cross_check(
            netlist, isa, program, inputs=inputs,
            max_instructions=instructions,
        )
    return result
