"""Die test-vector methodology (Section 4.1).

The paper probes every die with >100,000 cycles of directed plus random
vectors derived from RTL simulation, requiring gates to toggle ("gates
toggling on average 24,060 times, and all gates toggle at least once")
and counting any output mismatch as a failure.

This module builds the same kind of vector suite as *programs* (the
natural stimulus for a processor with an off-chip instruction bus), and
validates the yield model's core assumption -- that structural defects
are observable at the outputs -- by injecting stuck-at faults into the
gate-level netlist and measuring the detection rate.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

from repro import obs
from repro.asm import assemble
from repro.engine import job_function
from repro.netlist.backend import default_backend, resolve_backend
from repro.netlist.verify import run_cross_check, run_cross_check_batch


def fault_chunk_size(backend=None):
    """Fault-campaign chunk size for ``backend``: its lane capacity.

    Campaign drivers size their chunks from the *selected* backend's
    ``max_lanes`` (64 for compiled, wafer-scale for vector) rather than
    a hardcoded word width, so the final chunk carries exactly the
    leftover faults instead of padding idle lanes.
    """
    return max(1, resolve_backend(backend).max_lanes)


def directed_program(isa):
    """A short program touching every instruction class: ALU ops in both
    addressing modes, loads/stores over the whole memory, and both branch
    outcomes -- the "directed" half of the Section 4.1 vectors."""
    lines = ["start:"]
    words = isa.mem_words
    # Fill and read back every memory word through the output port, so
    # storage and addressing faults reach the pins.
    for addr in range(2, words):
        lines += [
            "    load 0",
            f"    addi {(5 * addr) % 16}",
            f"    store {addr}",
        ]
    for addr in range(2, words):
        lines += [f"    load {addr}", "    store 1"]
    # Exercise every ALU function in both addressing modes, observing
    # each result.
    for addr in range(2, words):
        for op in ("add", "nand", "xor"):
            lines += [f"    {op} {addr}", "    store 1"]
    for imm in (0, 1, 5, 8, 10, 15):
        lines += [f"    addi {imm}", "    store 1",
                  f"    nandi {imm}", "    store 1",
                  f"    xori {imm}", "    store 1"]
    # Both branch directions, from both accumulator sign states.
    lines += [
        "    load 0",
        "    store 1",
        "    nandi 0",         # acc = 0xF...: negative
        "    brn taken",
        "    store 1",         # (not reached when healthy)
        "taken:",
        "    xori 8",          # clear the MSB on a 4-bit machine
        "    brn start",       # must fall through when positive
        "    store 1",
        "    nandi 0",
        "    brn start",
    ]
    return assemble("\n".join(lines), isa, source_name="directed")


def random_program(isa, rng, length=96):
    """Random well-formed instructions (the "random" vector half).

    Branches target random earlier/later addresses within the page, so
    control flow wanders but never leaves the program.
    """
    choices = [m for m in isa.mnemonics() if m not in ("ldb",)]
    lines = []
    for index in range(length):
        mnemonic = choices[int(rng.integers(0, len(choices)))]
        spec = isa.spec(mnemonic)
        operands = []
        for operand in spec.operands:
            if operand.kind.name == "TARGET":
                operands.append(str(int(rng.integers(0, length))))
            else:
                lo = max(operand.lo, 0)
                operands.append(str(int(rng.integers(lo, operand.hi + 1))))
        lines.append(f"    {mnemonic} " + ", ".join(operands))
    return assemble("\n".join(lines), isa, source_name="random")


@dataclass
class FaultStudyResult:
    """Outcome of a stuck-at fault-injection campaign."""

    injected: int
    detected: int
    details: List[str]

    @property
    def coverage(self):
        return self.detected / self.injected if self.injected else 0.0


def sample_fault_sites(netlist, rng, count):
    """``count`` *distinct* stuck-at sites drawn over every gate.

    A site is a (gate name, stuck value) pair; both combinational gates
    and sequential DFFs are candidates (a stuck flop is just as much a
    structural defect as a stuck NAND).  Sampling without replacement
    keeps duplicate sites from inflating apparent coverage; the draw is
    clamped to the number of available sites.
    """
    sites = [(gate.name, stuck)
             for gate in netlist.gates for stuck in (0, 1)]
    count = min(count, len(sites))
    if count == 0:
        return []
    chosen = rng.choice(len(sites), size=count, replace=False)
    return [sites[int(index)] for index in chosen]


def fault_injection_study(netlist, isa, rng, faults=20,
                          max_instructions=300, backend=None,
                          fastpath=True):
    """Inject random stuck-at faults and check the vectors catch them.

    This grounds the yield model: a die with any structural defect is
    assumed non-functional, which is only fair if the test vectors would
    actually observe the defect.

    The fault list is packed into the lanes of the selected
    :mod:`repro.netlist.backend`, chunked by :func:`fault_chunk_size`:
    the compiled backend takes a 64-fault chunk per simulation run, the
    vector backend takes the whole campaign (every fault one lane of a
    wafer-scale array) in a single run.  ``fastpath`` selects the
    predecoded ISA replay (``False`` keeps the per-instruction decode
    reference).
    """
    program = directed_program(isa)
    inputs = [int(rng.integers(0, 16)) for _ in range(64)]
    sites = sample_fault_sites(netlist, rng, faults)
    chunk = fault_chunk_size(backend)
    detected = 0
    details = []
    with obs.span("fab.fault_injection", faults=len(sites),
                  chunks=-(-len(sites) // chunk) if sites else 0,
                  backend=backend or default_backend()):
        results = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=max_instructions,
            faults=sites, backend=backend, fastpath=fastpath,
        )
        for (gate_name, stuck), result in zip(sites, results):
            caught = not result.passed
            detected += caught
            details.append(
                f"{gate_name} stuck-at-{stuck}: "
                f"{'DETECTED' if caught else 'missed'}"
            )
    if obs.active():
        registry = obs.registry()
        registry.counter(
            "fab_faults_injected_total", "Stuck-at faults injected",
        ).inc(len(sites))
        registry.counter(
            "fab_faults_detected_total",
            "Injected faults observed at the outputs",
        ).inc(detected)
    return FaultStudyResult(
        injected=len(sites), detected=detected, details=details
    )


def toggle_coverage_study(netlist, isa, rng, instructions=2000,
                          backend=None, fastpath=True):
    """Run the directed program long enough to measure toggle coverage,
    the Section 4.1 metric."""
    program = directed_program(isa)
    inputs = [int(rng.integers(0, 16)) for _ in range(4096)]
    with obs.span("fab.toggle_coverage", instructions=instructions,
                  backend=backend or default_backend()):
        result = run_cross_check(
            netlist, isa, program, inputs=inputs,
            max_instructions=instructions, backend=backend,
            fastpath=fastpath,
        )
    return result


@lru_cache(maxsize=None)
def _core_for_testing(core):
    """Per-process memo of a named core's netlist (pool workers build
    each core at most once)."""
    from repro.netlist.cores import build_core

    return build_core(core)


@job_function("fab.fault_study", version="2")
def fault_study_job(params, seed):
    """Engine job: one fault-injection campaign on a registered core.

    The payload names the core, the ISA, the fault count *and the
    simulation backend*, so the campaign runs identically (and caches
    under a distinct key) whichever worker process picks it up.

    Version 2: campaign chunks are sized from the selected backend's
    lane capacity (see :func:`fault_chunk_size`) -- under the vector
    backend a whole campaign is one simulation run, and the per-chunk
    obs accounting differs from version 1's fixed 64-lane chunking.
    """
    from repro.isa import get_isa

    netlist = _core_for_testing(params["core"])
    study = fault_injection_study(
        netlist, get_isa(params["isa"]), seed.rng(),
        faults=params["faults"],
        max_instructions=params.get("max_instructions", 300),
        backend=params["backend"],
        fastpath=params.get("fastpath", True),
    )
    return {
        "injected": study.injected,
        "detected": study.detected,
        "coverage": study.coverage,
        "details": study.details,
    }
