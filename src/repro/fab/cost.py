"""Die-cost model: the paper's "sub-cent at volume" claim.

Section 1/4: "4-bit FlexiCores have 81% yield -- sufficient to enable
sub-cent cost if produced at volume."  The FlexLogIC 'fab-in-a-box' line
makes flexible wafers radically cheaper than silicon: published
PragmatIC figures put processed-wafer cost in the low tens of dollars at
volume (versus thousands for CMOS), which is the whole premise of
item-level tagging (Section 1).

The model is the standard one: cost per *good* die = wafer cost /
(dies per wafer x yield), plus a per-die test/singulation adder.
"""

from dataclasses import dataclass

from repro.fab.wafer import Wafer

#: Processed 200 mm flexible wafer cost at volume, USD.  PragmatIC's
#: public positioning for FlexLogIC is "well under a cent per FlexIC",
#: implying processed-wafer costs around the ten-dollar mark at volume.
FLEX_WAFER_COST_USD = 10.0
#: Per-die probe-test + singulation adder at volume, USD.
TEST_COST_USD = 0.0008
#: A 200 mm silicon wafer processed on a mature node, for contrast.
SILICON_WAFER_COST_USD = 1500.0

#: Scribe street between dies in a production (dense) layout, mm.  The
#: research wafers of Figure 4 place one die per ~15 mm reticle step;
#: volume production tiles the 3 mm die wall to wall.
PRODUCTION_STREET_MM = 0.15


def production_die_count(die_area_mm2=9.0, street_mm=PRODUCTION_STREET_MM,
                         wafer_diameter_mm=200.0, edge_exclusion_mm=16.0):
    """Dies per wafer in a dense production layout.

    The paper's sub-cent claim assumes volume production, not the sparse
    research layout (124 sites) used for the yield study.
    """
    import math

    side = math.sqrt(die_area_mm2)
    pitch = side + street_mm
    usable_radius = wafer_diameter_mm / 2 - edge_exclusion_mm
    usable_area = math.pi * usable_radius ** 2
    return int(usable_area * 0.95 / pitch ** 2)


@dataclass(frozen=True)
class CostEstimate:
    """Cost accounting for one design on one wafer recipe."""

    dies_per_wafer: int
    yield_fraction: float
    wafer_cost_usd: float
    test_cost_usd: float

    @property
    def good_dies_per_wafer(self):
        return self.dies_per_wafer * self.yield_fraction

    @property
    def cost_per_good_die_usd(self):
        if self.good_dies_per_wafer <= 0:
            return float("inf")
        return (self.wafer_cost_usd / self.good_dies_per_wafer
                + self.test_cost_usd)

    @property
    def sub_cent(self):
        return self.cost_per_good_die_usd < 0.01


def flexible_die_cost(yield_fraction, dies_per_wafer=None,
                      wafer_cost_usd=FLEX_WAFER_COST_USD,
                      test_cost_usd=TEST_COST_USD):
    """Cost of one good FlexiCore die in volume production."""
    if dies_per_wafer is None:
        dies_per_wafer = production_die_count()
    return CostEstimate(
        dies_per_wafer=dies_per_wafer,
        yield_fraction=yield_fraction,
        wafer_cost_usd=wafer_cost_usd,
        test_cost_usd=test_cost_usd,
    )


def research_die_cost(yield_fraction,
                      wafer_cost_usd=FLEX_WAFER_COST_USD,
                      test_cost_usd=TEST_COST_USD):
    """Same accounting on the sparse 124-site research layout of
    Figure 4 -- nowhere near sub-cent, which is why the claim is 'at
    volume'."""
    return CostEstimate(
        dies_per_wafer=len(Wafer.standard()),
        yield_fraction=yield_fraction,
        wafer_cost_usd=wafer_cost_usd,
        test_cost_usd=test_cost_usd,
    )


def yield_for_target_cost(target_usd, dies_per_wafer=None,
                          wafer_cost_usd=FLEX_WAFER_COST_USD,
                          test_cost_usd=TEST_COST_USD):
    """Minimum yield at which a good die costs at most ``target_usd``."""
    if dies_per_wafer is None:
        dies_per_wafer = production_die_count()
    if target_usd <= test_cost_usd:
        return float("inf")
    return wafer_cost_usd / (
        dies_per_wafer * (target_usd - test_cost_usd)
    )


def cost_sensitivity(yields, dies_per_wafer=None):
    """Cost-vs-yield curve (for the ablation bench)."""
    return {
        y: flexible_die_cost(y, dies_per_wafer).cost_per_good_die_usd
        for y in yields
    }
