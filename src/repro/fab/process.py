"""Per-wafer process descriptions.

FlexiCore4 and FlexiCore8 were fabricated on different wafers, with a
process refinement (50% higher pull-up resistance) in between (Table 4),
and their defect environments differ -- which is why FlexiCore8's yield
(57%) is far below what its mere 9% gate-count increase over FlexiCore4
(81%) would predict.  A :class:`WaferProcess` captures one wafer's
statistical personality; the two presets are calibrated to land on the
paper's Table 5 / Section 4.2 numbers when combined with the measured
netlist areas and timing.
"""

from dataclasses import dataclass

from repro.tech import tft


@dataclass(frozen=True)
class WaferProcess:
    """Statistical description of one wafer's process corner."""

    name: str
    #: Poisson defect density over placed logic area, inclusion zone.
    defect_density_per_mm2: float
    #: Defect-density multiplier in the 16 mm edge-exclusion ring.
    edge_defect_multiplier: float = 14.0
    #: Lognormal sigma of the per-die speed factor.
    speed_sigma: float = tft.SPEED_SIGMA
    #: Mean speed-factor penalty for edge dies (edge devices are slower).
    edge_speed_penalty: float = 1.35
    #: Lognormal sigma of per-die static current.
    current_sigma: float = tft.CURRENT_SIGMA
    #: Fractional current increase from wafer center to edge.
    radial_current_gradient: float = 0.06
    #: Post-refinement wafers have 50% higher pull-up resistance.
    refined_pullups: bool = False


#: The FlexiCore4 wafer: calibrated so a 3.5 mm^2 logic die yields ~81%
#: in the inclusion zone at 4.5 V (Table 5).
FC4_WAFER = WaferProcess(
    name="fc4-wafer",
    defect_density_per_mm2=0.0607,
    current_sigma=0.15,
    refined_pullups=False,
)

#: The FlexiCore8 wafer: a dirtier run (57% yield despite only ~20% more
#: logic area) with the refined pull-ups and wider current spread.
FC8_WAFER = WaferProcess(
    name="fc8-wafer",
    defect_density_per_mm2=0.131,
    current_sigma=0.21,
    refined_pullups=True,
)


def process_for(core_name):
    if "8" in core_name:
        return FC8_WAFER
    return FC4_WAFER
