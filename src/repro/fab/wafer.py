"""Wafer geometry: the 200 mm polyimide wafer of Figure 4.

The paper fabricates FlexiCores on 200 mm spin-coated polyimide wafers --
one wafer photo shows 123 FlexiCore4 die sites -- and excludes the outer
16 mm ring ("edge exclusion zone", marked red in Figure 4) from yield
accounting because edge effects degrade those dies.
"""

import math
from dataclasses import dataclass, field
from typing import List

#: Wafer diameter (Figure 1: 200 mm polyimide).
WAFER_DIAMETER_MM = 200.0
#: Width of the edge exclusion ring (Section 4.1).
EDGE_EXCLUSION_MM = 16.0
#: Die pitch chosen so a wafer carries ~123 sites, matching Figure 4a.
DEFAULT_DIE_PITCH_MM = 15.2
#: Physical die area including IO ring and pads (Section 4).
DIE_AREA_MM2 = 9.0


@dataclass(frozen=True)
class DieSite:
    """One die position on the wafer."""

    index: int
    row: int
    col: int
    x_mm: float   # center, wafer-centered coordinates
    y_mm: float

    @property
    def radius_mm(self):
        return math.hypot(self.x_mm, self.y_mm)

    @property
    def in_inclusion_zone(self):
        return self.radius_mm <= (WAFER_DIAMETER_MM / 2 - EDGE_EXCLUSION_MM)


@dataclass
class Wafer:
    """A wafer full of die sites."""

    pitch_mm: float
    sites: List[DieSite] = field(default_factory=list)

    @classmethod
    def standard(cls, pitch_mm=DEFAULT_DIE_PITCH_MM):
        """Rectangular-grid die map clipped to the wafer circle."""
        radius = WAFER_DIAMETER_MM / 2
        count = int(WAFER_DIAMETER_MM // pitch_mm) + 1
        offsets = [
            (i - (count - 1) / 2) * pitch_mm for i in range(count)
        ]
        die_half_mm = 1.7  # the 9 mm^2 die itself must fit, not the pitch cell
        sites = []
        index = 0
        for row, y in enumerate(offsets):
            for col, x in enumerate(offsets):
                if math.hypot(x, y) > radius - die_half_mm:
                    continue
                sites.append(DieSite(
                    index=index, row=row, col=col, x_mm=x, y_mm=y,
                ))
                index += 1
        return cls(pitch_mm=pitch_mm, sites=sites)

    def __len__(self):
        return len(self.sites)

    @property
    def inclusion_sites(self):
        return [site for site in self.sites if site.in_inclusion_zone]

    @property
    def edge_sites(self):
        return [site for site in self.sites if not site.in_inclusion_zone]

    def grid_shape(self):
        rows = max(site.row for site in self.sites) + 1
        cols = max(site.col for site in self.sites) + 1
        return rows, cols
