"""Process-variation consequences (Section 4.2).

Beyond reporting the current-draw spread, the paper observes: "The high
process variation can have significant impact on the number of usages of
a flexible microprocessor given an energy budget."  This module turns
that sentence into an analysis: given a probed wafer and a kernel's
per-transaction energy on the *typical* die, compute the distribution of
usable transaction counts per die on a fixed battery.
"""

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.tech.power import FMAX_HZ


@dataclass(frozen=True)
class UsageDistribution:
    """Per-die usable-transaction counts on a fixed energy budget."""

    budget_j: float
    energy_per_use_typical_j: float
    usages: np.ndarray  # one entry per functional die

    @property
    def mean(self):
        return float(np.mean(self.usages))

    @property
    def minimum(self):
        return int(np.min(self.usages))

    @property
    def maximum(self):
        return int(np.max(self.usages))

    @property
    def relative_spread(self):
        """(max - min) / mean: how unequal identical chips become."""
        if self.mean == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.mean

    @property
    def rsd(self):
        mean = self.mean
        return float(np.std(self.usages) / mean) if mean else 0.0


def usage_distribution(probe, instructions_per_use,
                       budget_j=54.0, frequency_hz=FMAX_HZ):
    """Usable-transaction distribution across a probed wafer.

    ``probe`` is a :class:`~repro.fab.yield_model.WaferProbeResult`;
    each functional die's per-use energy scales with its measured
    current draw (static-power-dominated technology, Section 3.1).
    ``budget_j`` defaults to a 3 V, 5 mAh battery (54 J).
    """
    time_per_use = instructions_per_use / frequency_hz
    currents = probe.functional_currents_ma()
    if len(currents) == 0:
        raise ValueError("no functional dies on this wafer")
    powers_w = currents * 1e-3 * probe.voltage
    energies = powers_w * time_per_use
    usages = np.floor(budget_j / energies).astype(int)
    typical = float(np.median(energies))
    return UsageDistribution(
        budget_j=budget_j,
        energy_per_use_typical_j=typical,
        usages=usages,
    )


def summarize(distribution):
    return (
        f"budget {distribution.budget_j:.0f} J: "
        f"{distribution.minimum}..{distribution.maximum} uses/die "
        f"(mean {distribution.mean:.0f}, "
        f"rsd {100 * distribution.rsd:.1f}%, "
        f"best die lasts "
        f"{distribution.maximum / max(1, distribution.minimum):.2f}x "
        f"longer than the worst)"
    )
