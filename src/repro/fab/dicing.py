"""Section 4.3: why a 5 nm CMOS FlexiCore makes no sense.

"Their implementation in 5 nm process technology would allow hundreds of
thousands of ~0.03 mm x 0.03 mm FlexiCores per 300 mm silicon wafer.
However, such small cores would be impractical to dice, with chips
requiring 50 um to 200 um spacing using conventional diamond blades,
wasting more than half to 90% of the wafer...  Additionally, such a
small die would be severely IO-limited, as each side will support 1-2
IOs at a 10 um pitch."

This module makes that argument computable.
"""

import math
from dataclasses import dataclass

#: A FlexiCore4 scaled to a leading-edge node (Section 4.3).
CMOS_DIE_SIDE_MM = 0.03
SILICON_WAFER_DIAMETER_MM = 300.0
#: Conventional diamond-blade kerf/spacing range (Section 4.3).
BLADE_SPACING_UM = (50.0, 200.0)
#: Plasma dicing spacing (expensive alternative).
PLASMA_SPACING_UM = 10.0
#: Achievable IO pad pitch on a tiny die edge.
IO_PITCH_UM = 10.0


@dataclass(frozen=True)
class DicingAnalysis:
    die_side_mm: float
    spacing_um: float

    @property
    def pitch_mm(self):
        return self.die_side_mm + self.spacing_um * 1e-3

    @property
    def area_utilization(self):
        """Fraction of wafer area that is die rather than kerf."""
        return (self.die_side_mm / self.pitch_mm) ** 2

    @property
    def waste_fraction(self):
        """Linear kerf waste (the paper's "more than half to 90%" is
        consistent with the one-dimensional accounting)."""
        return 1.0 - self.die_side_mm / self.pitch_mm

    @property
    def area_waste_fraction(self):
        return 1.0 - self.area_utilization

    @property
    def dies_per_300mm_wafer(self):
        wafer_area = math.pi * (SILICON_WAFER_DIAMETER_MM / 2) ** 2
        return int(wafer_area * 0.95 / self.pitch_mm ** 2)

    @property
    def ios_per_side(self):
        """Bondable pads per die edge: a 5 um corner margin each side
        leaves the paper's '1-2 IOs at a 10 um pitch'."""
        usable_um = self.die_side_mm * 1e3 - 2 * 5.0
        return max(0, int(usable_um // IO_PITCH_UM))


def blade_dicing(spacing_um=BLADE_SPACING_UM[0]):
    return DicingAnalysis(CMOS_DIE_SIDE_MM, spacing_um)


def plasma_dicing():
    return DicingAnalysis(CMOS_DIE_SIDE_MM, PLASMA_SPACING_UM)


def section43_summary():
    """The three quantitative claims of Section 4.3, computed."""
    gentle = blade_dicing(BLADE_SPACING_UM[0])
    harsh = blade_dicing(BLADE_SPACING_UM[1])
    return {
        "dies_per_wafer": gentle.dies_per_300mm_wafer,
        "blade_waste_range": (gentle.waste_fraction,
                              harsh.waste_fraction),
        "plasma_waste": plasma_dicing().waste_fraction,
        "ios_per_side": gentle.ios_per_side,
    }
