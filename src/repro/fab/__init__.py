"""Fabrication, probing, yield and process-variation models (Section 4)."""

from repro.fab.process import FC4_WAFER, FC8_WAFER, WaferProcess, process_for
from repro.fab.testing import (
    FaultStudyResult,
    directed_program,
    fault_chunk_size,
    fault_injection_study,
    fault_study_job,
    random_program,
    sample_fault_sites,
    toggle_coverage_study,
)
from repro.fab.wafer import (
    DEFAULT_DIE_PITCH_MM,
    DIE_AREA_MM2,
    EDGE_EXCLUSION_MM,
    WAFER_DIAMETER_MM,
    DieSite,
    Wafer,
)
from repro.fab.yield_model import (
    TEST_CYCLES,
    Die,
    FabricatedWafer,
    ProbeRecord,
    WaferProbeResult,
    fabricate_wafer,
    gate_probe_wafer,
    gate_wafer_yield_job,
    probed_wafer_job,
    run_fault_coverage,
    run_gate_yield_study,
    run_yield_study,
    wafer_yield_job,
)

__all__ = [
    "DEFAULT_DIE_PITCH_MM", "DIE_AREA_MM2", "Die", "DieSite",
    "EDGE_EXCLUSION_MM", "FC4_WAFER", "FC8_WAFER", "FabricatedWafer",
    "FaultStudyResult", "ProbeRecord", "TEST_CYCLES", "WAFER_DIAMETER_MM",
    "Wafer", "WaferProbeResult", "WaferProcess", "directed_program",
    "fabricate_wafer", "fault_chunk_size", "fault_injection_study",
    "fault_study_job", "gate_probe_wafer", "gate_wafer_yield_job",
    "probed_wafer_job", "process_for", "random_program",
    "run_fault_coverage", "run_gate_yield_study", "run_yield_study",
    "sample_fault_sites", "toggle_coverage_study", "wafer_yield_job",
]
