"""Structural Verilog export.

The paper's flow is "Verilog HDL ... synthesized to a 0.8 um IGZO cell
library" and on to GDSII (Figure 1); this module closes the loop in the
other direction, emitting our gate-level netlists as structural Verilog
that instantiates the thirteen library cells.  The output is what would
be handed to place & route -- and it doubles as human-readable
documentation of exactly what we built.

A behavioral model of each library cell is included (`cell_models()`),
so the exported netlist is simulable by any Verilog simulator.
"""

import re

from repro.tech.cells import LIBRARY

#: Verilog primitives implementing each cell function.
_CELL_BODIES = {
    "buf": "  assign y = a;",
    "inv": "  assign y = ~a;",
    "nand2": "  assign y = ~(a & b);",
    "nor2": "  assign y = ~(a | b);",
    "xor2": "  assign y = a ^ b;",
    "xnor2": "  assign y = ~(a ^ b);",
    "mux2": "  assign y = s ? b : a;",
    "dff": (
        "  always @(posedge clk) q <= d;"
    ),
}

_PORTS = {
    "buf": ("a",), "inv": ("a",),
    "nand2": ("a", "b"), "nor2": ("a", "b"),
    "xor2": ("a", "b"), "xnor2": ("a", "b"),
    "mux2": ("a", "b", "s"),
    "dff": ("d",),
}


def _sanitize(name):
    """Make a net/instance name Verilog-safe."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not re.match(r"^[A-Za-z_]", cleaned):
        cleaned = "n_" + cleaned
    return cleaned


def cell_models():
    """Behavioral Verilog for the thirteen library cells."""
    modules = []
    for cell in sorted(LIBRARY.values(), key=lambda c: c.name):
        ports = _PORTS[cell.function]
        if cell.sequential:
            header = (
                f"module {cell.name} (input clk, input d, "
                f"output reg q);"
            )
            body = _CELL_BODIES["dff"]
        else:
            port_list = ", ".join(f"input {p}" for p in ports)
            header = f"module {cell.name} ({port_list}, output y);"
            body = _CELL_BODIES[cell.function]
        modules.append(f"{header}\n{body}\nendmodule")
    return "\n\n".join(modules)


def to_verilog(netlist, include_models=False):
    """Emit a netlist as structural Verilog."""
    inputs = [_sanitize(net) for net in netlist.inputs]
    outputs = [_sanitize(net) for net in netlist.outputs]
    lines = []
    lines.append(f"// {netlist.name}: {netlist.gate_count} cells, "
                 f"{netlist.nand2_area:.0f} NAND2-equivalent units")
    port_decl = ["input clk"]
    port_decl += [f"input {name}" for name in inputs]
    port_decl += [f"output {name}" for name in outputs]
    lines.append(f"module {_sanitize(netlist.name)} (")
    lines.append("  " + ",\n  ".join(port_decl))
    lines.append(");")

    declared = set(inputs) | set(outputs)
    wires = []
    for gate in netlist.gates:
        name = _sanitize(gate.output)
        if name not in declared:
            wires.append(name)
            declared.add(name)
    for net, value in netlist.constants.items():
        lines.append(f"  wire {_sanitize(net)} = 1'b{value};")
    if wires:
        lines.append("  wire " + ", ".join(sorted(wires)) + ";")

    for gate in netlist.gates:
        ports = _PORTS[gate.cell.function]
        connections = [
            f".{port}({_sanitize(net)})"
            for port, net in zip(ports, gate.inputs)
        ]
        if gate.sequential:
            connections = [".clk(clk)"] + connections
            connections.append(f".q({_sanitize(gate.output)})")
        else:
            connections.append(f".y({_sanitize(gate.output)})")
        lines.append(
            f"  {gate.cell.name} {_sanitize(gate.name)} ("
            + ", ".join(connections) + f");  // {gate.module}"
        )
    lines.append("endmodule")
    text = "\n".join(lines)
    if include_models:
        text = cell_models() + "\n\n" + text
    return text
