"""Bit-parallel compiled backend: 64 simulation lanes per settle pass.

The netlist is *compiled* once: gates are levelized into flat index
arrays over a dense net numbering, and the levelized program is
specialized into a straight-line settle kernel where every gate is one
or two bitwise operations on 64-bit integer words.  Bit ``l`` of a
net's word is that net's value in lane ``l`` -- the classic
parallel-fault-simulation packing -- so a single pass through the
kernel advances up to 64 independent stuck-at faults (or Monte Carlo
dies) at once.

Stuck-at faults are burned into the kernel as per-gate lane masks
(``out = (f(out) & ~mask) | stuck``), which keeps the hot loop
branch-free; installing a new fault set just re-specializes the kernel
(a few milliseconds, once per 64-fault chunk).  Toggle counting stays
exact per lane: each counted pass records every gate's change word
(``old ^ new``) and accumulates the unpacked bits into a
``(gates, 64)`` counter matrix with numpy bitwise ops, so per-gate
per-lane toggle counts match the interpreted reference bit for bit.

Observability is lane-adjusted: a settle pass over ``lanes`` lanes is
charged as ``lanes`` passes (and ``lanes * gates`` evaluations), so
``gate_evaluations_total`` from a batched campaign equals the serial
total.
"""

import numpy as np

from repro import obs
from repro.netlist.backend.base import (
    SimBackend,
    lane_fault_list,
    register_backend,
)
from repro.netlist.levelize import levelize

#: Lanes packed into one machine word (one bit per lane).
WORD_LANES = 64
#: All-lanes-high word; doubles as the constant-1 net value.
FULL_MASK = (1 << WORD_LANES) - 1

#: Cell function -> bitwise expression template over input words
#: {a}, {b}, {c} and the all-ones mask M.
_EXPRESSIONS = {
    "buf": "{a}",
    "inv": "{a} ^ M",
    "nand2": "({a} & {b}) ^ M",
    "nor2": "({a} | {b}) ^ M",
    "xor2": "{a} ^ {b}",
    "xnor2": "({a} ^ {b}) ^ M",
    # (a, b, sel): b when sel else a, lane-wise.
    "mux2": "{a} ^ (({a} ^ {b}) & {c})",
}


@register_backend
class CompiledBackend(SimBackend):
    """Levelized, word-packed evaluation of up to 64 lanes."""

    name = "compiled"
    max_lanes = WORD_LANES

    def __init__(self, netlist, lanes=1):
        if not 1 <= lanes <= WORD_LANES:
            raise ValueError(
                f"compiled backend supports 1..{WORD_LANES} lanes, "
                f"got {lanes}"
            )
        netlist.validate()
        self.netlist = netlist
        self._lanes = lanes
        self._comb = levelize(netlist)
        self._flops = [g for g in netlist.gates if g.sequential]
        self._gate_names = {g.name for g in netlist.gates}

        # Dense net numbering: constants, primary inputs, gate outputs.
        ids = {}
        for net in netlist.constants:
            ids.setdefault(net, len(ids))
        for net in netlist.inputs:
            ids.setdefault(net, len(ids))
        for gate in netlist.gates:
            ids.setdefault(gate.output, len(ids))
        self._net_ids = ids

        # Flat levelized index arrays: the compiled program.  The
        # generated kernel is a specialization of exactly these arrays.
        self._comb_out = np.array(
            [ids[g.output] for g in self._comb], dtype=np.int32
        )
        self._comb_in = [
            np.array([ids[n] for n in g.inputs], dtype=np.int32)
            for g in self._comb
        ]
        self._flop_dq = [
            (ids[g.inputs[0]], ids[g.output]) for g in self._flops
        ]

        # Toggle counters: rows are comb gates (levelized order) then
        # flops; one column per lane.
        self._row_names = [g.name for g in self._comb] + [
            g.name for g in self._flops
        ]
        count = len(self._row_names)
        self._n_comb = len(self._comb)
        # Sized by the active lane count, not WORD_LANES: a 10-lane
        # final chunk should not pay for 54 idle padding columns.
        self._toggle_bits = np.zeros((count, lanes), dtype=np.uint64)
        self._shifts = np.arange(WORD_LANES, dtype=np.uint64)
        self._one = np.uint64(1)
        self._comb_changed = [0] * self._n_comb
        self._flop_changed = [0] * len(self._flops)

        #: Per-gate fault patches: {gate name: [lane mask, stuck word]}.
        self._comb_fault = {}
        self._flop_fault = {}

        self._cycles = 0
        self.gate_evaluations = 0
        self.settle_passes = 0

        # Net state: one 64-lane word per net.
        self._state = [0] * len(ids)
        for net, value in netlist.constants.items():
            self._state[ids[net]] = FULL_MASK if value else 0
        self._bus_cache = {}

        self._specialize()
        self._settle(count=False)

    # -- kernel specialization ----------------------------------------

    def _specialize(self):
        self._kernel_count = self._generate(count=True)
        self._kernel_nocount = self._generate(count=False)

    def _generate(self, count):
        """Emit and compile one straight-line settle kernel."""
        lines = ["def kernel(V, T):" if count else "def kernel(V):",
                 f"    M = {FULL_MASK}"]
        for position, gate in enumerate(self._comb):
            operands = {
                key: f"V[{net}]"
                for key, net in zip("abc", self._comb_in[position])
            }
            expr = _EXPRESSIONS[gate.cell.function].format(**operands)
            patch = self._comb_fault.get(gate.name)
            if patch is not None:
                mask, stuck = patch
                expr = f"(({expr}) & {FULL_MASK ^ mask}) | {stuck}"
            out = self._comb_out[position]
            if count:
                lines.append(f"    t = {expr}")
                lines.append(f"    T[{position}] = V[{out}] ^ t")
                lines.append(f"    V[{out}] = t")
            else:
                lines.append(f"    V[{out}] = {expr}")
        namespace = {}
        exec(compile("\n".join(lines),
                     f"<compiled:{self.netlist.name}>", "exec"), namespace)
        return namespace["kernel"]

    # -- SimBackend interface -----------------------------------------

    @property
    def lanes(self):
        return self._lanes

    @property
    def cycles(self):
        return self._cycles

    def set_inputs(self, assignments):
        state, ids = self._state, self._net_ids
        for name, value in assignments.items():
            index = ids.get(name)
            if index is not None:
                self._validate_scalar(name, value)
                state[index] = FULL_MASK if value else 0
                continue
            bus = self._bus_nets(name)
            if not bus:
                raise KeyError(f"no such input '{name}'")
            self._validate_bus(name, len(bus), value)
            for bit, net_index in enumerate(bus):
                state[net_index] = (
                    FULL_MASK if (value >> bit) & 1 else 0
                )

    def set_fault_lanes(self, faults):
        faults = list(faults)
        if len(faults) > self._lanes:
            raise ValueError(
                f"{len(faults)} fault lanes for a "
                f"{self._lanes}-lane backend"
            )
        self._comb_fault = {}
        self._flop_fault = {}
        flop_positions = {g.name: i for i, g in enumerate(self._flops)}
        injected = 0
        for lane, entry in enumerate(faults):
            for gate_name, stuck in lane_fault_list(entry):
                if gate_name not in self._gate_names:
                    raise KeyError(f"no gate named '{gate_name}'")
                injected += 1
                table = (self._flop_fault if gate_name in flop_positions
                         else self._comb_fault)
                key = (flop_positions[gate_name]
                       if gate_name in flop_positions else gate_name)
                mask, value = table.get(key, (0, 0))
                mask |= 1 << lane
                if stuck & 1:
                    value |= 1 << lane
                table[key] = (mask, value)
        self._specialize()
        if injected:
            # Mirror the interpreter's inject_fault(): propagate the
            # faults without counting toggles, charging one settle per
            # injected fault (the serial reference settles once per
            # injection).
            self._settle(count=False, charge_lanes=injected)

    def clear_faults(self):
        had_faults = bool(self._comb_fault or self._flop_fault)
        self._comb_fault = {}
        self._flop_fault = {}
        self._specialize()
        if had_faults:
            self._settle(count=False)

    def step(self):
        self._settle(count=True)
        self._edge()
        self._cycles += 1
        self._settle(count=True)

    def read_net(self, net, lane=0):
        self._check_lane(lane)
        return (self._state[self._net_ids[net]] >> lane) & 1

    def read_bus(self, stem, width=None, lane=0):
        self._check_lane(lane)
        value = 0
        for bit, index in enumerate(self._bus_ids(stem, width)):
            value |= ((self._state[index] >> lane) & 1) << bit
        return value

    def read_bus_lane_array(self, stem, width=None):
        indices = self._bus_ids(stem, width)
        words = np.array([self._state[i] for i in indices],
                         dtype=np.uint64)
        bits = (words[:, None] >> self._shifts) & self._one
        powers = np.left_shift(1, np.arange(len(indices)),
                               dtype=np.int64)
        values = bits.astype(np.int64).T @ powers
        return values[:self._lanes]

    def read_bus_lanes(self, stem, width=None):
        return self.read_bus_lane_array(stem, width).tolist()

    def toggles(self, lane=0):
        self._check_lane(lane)
        column = self._toggle_bits[:, lane]
        return {name: int(count)
                for name, count in zip(self._row_names, column)}

    def toggle_coverage_lanes(self):
        counts = self._toggle_bits
        total = len(self._row_names) or 1
        fractions = np.count_nonzero(counts, axis=0) / total
        means = counts.sum(axis=0, dtype=np.int64) / total
        return fractions, means

    def flush_obs(self):
        if not obs.active():
            return
        registry = obs.registry()
        registry.counter(
            "gate_evaluations_total",
            "Individual gate evaluations in the gate-level simulator",
        ).inc(self.gate_evaluations)
        registry.counter(
            "gate_settle_passes_total",
            "Combinational settle passes",
        ).inc(self.settle_passes)
        registry.counter(
            "gate_sim_cycles_total", "Gate-level clock cycles",
        ).inc(self._cycles * self._lanes)
        self.gate_evaluations = 0
        self.settle_passes = 0

    # -- evaluation ----------------------------------------------------

    def _settle(self, count=True, charge_lanes=None):
        charge = self._lanes if charge_lanes is None else charge_lanes
        self.settle_passes += charge
        self.gate_evaluations += self._n_comb * charge
        if count:
            changed = self._comb_changed
            self._kernel_count(self._state, changed)
            self._accumulate(changed, 0)
        else:
            self._kernel_nocount(self._state)

    def _edge(self):
        state = self._state
        new = [state[d] for d, _ in self._flop_dq]
        for position, (mask, stuck) in self._flop_fault.items():
            new[position] = (new[position] & (FULL_MASK ^ mask)) | stuck
        changed = self._flop_changed
        for position, (_, q) in enumerate(self._flop_dq):
            changed[position] = state[q] ^ new[position]
            state[q] = new[position]
        if changed:
            self._accumulate(changed, self._n_comb)

    def _accumulate(self, changed, row_offset):
        words = np.array(changed, dtype=np.uint64)
        rows = slice(row_offset, row_offset + len(changed))
        self._toggle_bits[rows] += (
            (words[:, None] >> self._shifts[:self._lanes]) & self._one
        )

    # Bus and lane helpers (`_bus_nets`, `_bus_ids`, `_check_lane`)
    # are shared with the vector backend and live on SimBackend.
