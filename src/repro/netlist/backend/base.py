"""The :class:`SimBackend` interface and backend registry.

A backend evaluates a gate-level netlist over one or more *lanes*.  A
lane is one independent simulation of the design: same stimulus, but
its own injected stuck-at faults and its own toggle counts.  The
interpreted backend runs one lane per instance (the bit-exact
reference); the compiled backend packs up to 64 lanes into the bits of
machine words, so one settle pass advances 64 fault candidates or
Monte Carlo dies at once; the vector backend generalizes the packing
to NumPy ``uint64`` lane arrays, lifting capacity to ``64 x words``
lanes so a single settle pass evaluates every die on a wafer.

Consumers address backends by name (``"interpreted"`` /
``"compiled"`` / ``"vector"``) through :func:`make_backend`; ``None``
resolves to the process-wide default installed by :func:`configure`
(the CLI's ``--backend`` flag lands there).
"""

from abc import ABC, abstractmethod

_DEFAULT_BACKEND = "compiled"
_default_name = _DEFAULT_BACKEND

#: name -> backend class; filled in by repro.netlist.backend.__init__.
BACKENDS = {}


def register_backend(cls):
    """Class decorator adding a backend implementation to the registry."""
    BACKENDS[cls.name] = cls
    return cls


def configure(default=None):
    """Install the process-wide default backend name (CLI ``--backend``).

    Returns the active default.  ``configure()`` with no argument resets
    to the library default ("compiled").
    """
    global _default_name
    name = default or _DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        )
    _default_name = name
    return _default_name


def default_backend():
    """Name of the process-wide default backend."""
    return _default_name


def resolve_backend(name):
    """Map a backend spec (name or None) to a registered class."""
    name = name or _default_name
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None


def make_backend(name, netlist, lanes=1):
    """Instantiate a backend over ``netlist`` with ``lanes`` fault lanes."""
    cls = resolve_backend(name)
    return cls(netlist, lanes=lanes)


def lane_fault_list(entry):
    """Normalize one lane's fault spec to a list of (gate, stuck) pairs.

    A lane entry is ``None`` (healthy lane), a single
    ``(gate_name, stuck_value)`` pair, or an iterable of such pairs --
    the multi-fault form encodes one die's whole defect draw in one
    lane.  All backends accept all three forms.
    """
    if entry is None:
        return []
    entry = list(entry)
    if entry and isinstance(entry[0], str):
        if len(entry) != 2:
            raise ValueError(f"malformed fault entry {entry!r}")
        return [(entry[0], entry[1])]
    return [(gate, stuck) for gate, stuck in entry]


class SimBackend(ABC):
    """Multi-lane gate-level evaluation of one netlist.

    Lane semantics: inputs and clock edges are shared by every lane;
    faults and observed state (net values, toggle counts, mismatches)
    are per-lane.  ``lanes`` is fixed at construction and bounded by
    ``max_lanes``; campaign drivers chunk their fault lists accordingly.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Largest lane count one instance supports.
    max_lanes = 1

    @property
    @abstractmethod
    def lanes(self):
        """Number of active lanes in this instance."""

    @property
    @abstractmethod
    def cycles(self):
        """Clock cycles stepped so far (identical across lanes)."""

    # -- stimulus ------------------------------------------------------

    @abstractmethod
    def set_inputs(self, assignments):
        """Assign primary inputs ({net: 0/1} or {bus_stem: int}),
        broadcast to every lane.  Rejects out-of-range values."""

    @abstractmethod
    def set_fault_lanes(self, faults):
        """Install per-lane stuck-at faults and re-settle.

        ``faults`` is a sequence of at most ``lanes`` entries, each
        ``None`` (healthy lane), a ``(gate_name, stuck_value)`` pair,
        or an iterable of such pairs (a multi-defect die occupies one
        lane).  Replaces any previously installed faults.
        """

    @abstractmethod
    def clear_faults(self):
        """Remove every fault and re-settle."""

    @abstractmethod
    def step(self):
        """One clock cycle: settle, clock the DFFs, settle."""

    # -- observation ---------------------------------------------------

    @abstractmethod
    def read_net(self, net, lane=0):
        """Value (0/1) of one net in one lane."""

    @abstractmethod
    def read_bus(self, stem, width=None, lane=0):
        """Little-endian integer value of bus ``stem0..N`` in one lane."""

    def read_bus_lanes(self, stem, width=None):
        """Bus value in every lane, as a list indexed by lane.

        Backends with a packed representation override this with a
        transposed extraction; the generic version just loops.
        """
        return [
            self.read_bus(stem, width=width, lane=lane)
            for lane in range(self.lanes)
        ]

    def read_bus_lane_array(self, stem, width=None):
        """Bus value in every lane, as a numpy int64 array.

        Campaign drivers compare thousands of lanes per instruction;
        an array return keeps that comparison vectorized.  Packed
        backends override this to skip the Python loop entirely.
        """
        import numpy as np

        return np.asarray(
            self.read_bus_lanes(stem, width=width), dtype=np.int64
        )

    @abstractmethod
    def toggles(self, lane=0):
        """{gate name: toggle count} for one lane."""

    def toggle_coverage(self, lane=0):
        """(fraction of gates that toggled, mean toggles per gate)."""
        counts = self.toggles(lane)
        total = len(counts) or 1
        toggled = sum(1 for count in counts.values() if count)
        mean = sum(counts.values()) / total
        return toggled / total, mean

    def toggle_coverage_lanes(self):
        """Toggle coverage of every lane, as (fractions, means) arrays.

        Result assembly over wafer-scale lane counts must not loop in
        Python; packed backends override this with matrix reductions.
        """
        import numpy as np

        pairs = [self.toggle_coverage(lane) for lane in range(self.lanes)]
        fractions = np.array([fraction for fraction, _ in pairs])
        means = np.array([mean for _, mean in pairs])
        return fractions, means

    @abstractmethod
    def flush_obs(self):
        """Fold lane-adjusted evaluation tallies into the obs registry.

        Lane adjustment keeps the ``gate_evaluations_total`` /
        ``gate_settle_passes_total`` counters comparable across
        backends: a 64-lane settle pass is charged as 64 passes, so a
        batched fault campaign reports the same totals as the
        equivalent serial one.
        """

    # -- shared helpers for packed backends ---------------------------
    # These assume the dense-net-numbering attributes (`_net_ids`,
    # `_bus_cache`, `_lanes`) that the compiled and vector backends
    # both maintain.

    def _bus_nets(self, stem):
        """Net indices of ``stem0..N`` (empty when no such bus)."""
        nets = []
        while True:
            index = self._net_ids.get(f"{stem}{len(nets)}")
            if index is None:
                return nets
            nets.append(index)

    def _bus_ids(self, stem, width):
        key = (stem, width)
        cached = self._bus_cache.get(key)
        if cached is not None:
            return cached
        nets = self._bus_nets(stem)
        if not nets:
            raise KeyError(f"no such bus '{stem}'")
        if width is not None:
            if len(nets) < width:
                raise KeyError(
                    f"bus '{stem}' is only {len(nets)} bits wide; "
                    f"cannot read {width} bits"
                )
            nets = nets[:width]
        self._bus_cache[key] = nets
        return nets

    def _check_lane(self, lane):
        if not 0 <= lane < self._lanes:
            raise IndexError(
                f"lane {lane} out of range for a {self._lanes}-lane "
                f"backend"
            )

    # -- shared input validation --------------------------------------

    def _validate_scalar(self, name, value):
        if value not in (0, 1):
            raise ValueError(
                f"input '{name}' is a single net; value must be 0 or 1, "
                f"got {value!r}"
            )

    def _validate_bus(self, stem, width, value):
        if not 0 <= value < (1 << width):
            raise ValueError(
                f"value {value!r} out of range for {width}-bit bus "
                f"'{stem}'"
            )
