"""Wafer-scale vector backend: NumPy lane arrays, ``64 x words`` lanes.

The compiled backend tops out at 64 lanes because a lane is one bit of
one machine word.  This backend re-specializes the same levelized
program over NumPy ``uint64`` arrays of shape ``(words,)`` per net --
lane ``l`` lives in bit ``l % 64`` of word ``l // 64`` -- so capacity
becomes ``64 x words`` lanes and one settle pass advances *every die
on a wafer* (or a whole multi-thousand-fault campaign) at once.

A straight port of the compiled kernel (one numpy op per gate) would
drown in per-call overhead: the cores here average under four gates
per (level, cell function) group, so the arrays are tiny and the ~1 us
fixed cost per numpy op dominates.  Three structural choices keep the
hot path wide instead:

- **Group-ordered net numbering.**  Comb outputs are numbered in
  evaluation-group order (then flop outputs), so every group writes a
  *contiguous slice* of the state matrix (``V[o0:o1] = ...``), the
  clock edge updates one flop slice, and the settle's old/new toggle
  diff is two slice ops instead of fancy gathers.
- **One gather per level, families not functions.**  Each level does a
  single fancy gather of every operand it needs (``S = V[L]``), then
  evaluates at most three *function families* on cheap basic slices of
  ``S``: the XOR family (buf / inv / xor2 / xnor2, unified as
  ``x ^ y ^ P`` with a virtual constant-zero operand), the AND family
  (nand2 / nor2, unified as ``((a ^ Pa) & (b ^ Pb)) ^ Po`` via De
  Morgan), and mux2.  Polarity masks ``P`` are per-gate ``(n, 1)``
  constants, elided when uniform.  A settle drops from ~330 numpy
  calls to well under half that.
- **Bit-plane toggle counters.**  Unpacking every change word into a
  ``(gates, lanes)`` counter matrix per pass is O(gates x lanes) with
  a dtype conversion.  Instead per-gate per-lane counts are kept as
  *bit-planes* -- plane ``p`` holds bit ``p`` of every counter, as a
  ``(gates, words)`` uint64 array -- and a settle's change matrix is
  added with a ripple-carry loop (``plane ^= carry; carry &= old``).
  Counts stay exact; they are re-assembled into integers only when
  read.

Per-gate stuck-at faults generalize to per-gate ``(words,)`` lane-mask
arrays applied after the gate's level (``V[R] = (V[R] & K) | S``), so
a lane can carry *several* faults -- the natural encoding of one die's
multi-defect draw from the yield model.  Everything else (inputs and
clock shared across lanes, lane-adjusted obs accounting, bit-exact
toggle counts) matches the compiled backend and therefore the
interpreted reference.
"""

from collections import defaultdict

import numpy as np

from repro import obs
from repro.netlist.backend.base import (
    SimBackend,
    lane_fault_list,
    register_backend,
)
from repro.netlist.backend.compiled import FULL_MASK, WORD_LANES
from repro.netlist.levelize import levelize

#: Lane capacity of one vector-backend instance.  Soft bound: memory is
#: ``nets x words`` state words plus ``gates x words`` words per toggle
#: bit-plane, so 64k lanes of a 256-gate core is a few megabytes.
VECTOR_MAX_LANES = 1 << 16

#: np.unpackbits(bitorder="little") over a uint8 view of uint64 words
#: yields lane l at column l only on little-endian hosts; big-endian
#: falls back to the (slower) shift-based unpack.
_LITTLE_ENDIAN = np.dtype(np.uint64).byteorder in ("<", "=") and (
    __import__("sys").byteorder == "little"
)

#: buf/inv/xor2/xnor2 as ``x ^ y ^ P`` (y is the virtual zero for the
#: one-input cells); nand2/nor2 as ``((a ^ Pa) & (b ^ Pb)) ^ Po``.
_XOR_FAMILY = {"buf": 0, "inv": 1, "xor2": 0, "xnor2": 1}
_AND_FAMILY = {"nand2": (0, 0, 1), "nor2": (1, 1, 0)}


@register_backend
class VectorBackend(SimBackend):
    """Levelized, array-packed evaluation of up to 64k lanes."""

    name = "vector"
    max_lanes = VECTOR_MAX_LANES

    def __init__(self, netlist, lanes=1):
        if not 1 <= lanes <= VECTOR_MAX_LANES:
            raise ValueError(
                f"vector backend supports 1..{VECTOR_MAX_LANES} lanes, "
                f"got {lanes}"
            )
        netlist.validate()
        self.netlist = netlist
        self._lanes = lanes
        self._words = -(-lanes // WORD_LANES)
        comb = levelize(netlist)
        self._flops = [g for g in netlist.gates if g.sequential]
        self._gate_names = {g.name for g in netlist.gates}
        self._outputs_by_gate = {g.name: g.output for g in netlist.gates}

        # ASAP levels over the levelized order.
        net_level = defaultdict(int)
        gate_level = {}
        for gate in comb:
            level = max((net_level[n] for n in gate.inputs), default=0)
            gate_level[gate.name] = level
            net_level[gate.output] = level + 1
        level_count = (max(gate_level.values(), default=-1)) + 1

        # Evaluation-group order: level, then family (xor / and / mux),
        # then levelized order within -- this IS the comb output net
        # numbering, so each group scatters to a contiguous slice.
        def family_of(gate):
            function = gate.cell.function
            if function in _XOR_FAMILY:
                return 0
            if function in _AND_FAMILY:
                return 1
            return 2  # mux2

        schedule = []  # [(level, [xor gates], [and gates], [mux gates])]
        for level in range(level_count):
            members = [g for g in comb if gate_level[g.name] == level]
            schedule.append((
                level,
                [g for g in members if family_of(g) == 0],
                [g for g in members if family_of(g) == 1],
                [g for g in members if family_of(g) == 2],
            ))
        self._comb = [
            gate
            for _, xor_gates, and_gates, mux_gates in schedule
            for gate in (*xor_gates, *and_gates, *mux_gates)
        ]
        self._gate_levels = [gate_level[g.name] for g in self._comb]

        # Dense net numbering: constants, primary inputs, comb outputs
        # in group order, flop outputs, one virtual constant-zero row.
        ids = {}
        for net in netlist.constants:
            ids.setdefault(net, len(ids))
        for net in netlist.inputs:
            ids.setdefault(net, len(ids))
        self._comb_lo = len(ids)
        for gate in self._comb:
            ids[gate.output] = len(ids)
        self._flop_lo = len(ids)
        for gate in self._flops:
            ids[gate.output] = len(ids)
        self._zero_row = len(ids)
        self._net_ids = ids
        self._bus_cache = {}
        self._schedule = schedule

        # Toggle rows: comb gates (group order) then flops.
        self._row_names = [g.name for g in self._comb] + [
            g.name for g in self._flops
        ]
        self._n_comb = len(self._comb)
        self._rows = len(self._row_names)
        self._flop_d = np.array(
            [ids[g.inputs[0]] for g in self._flops], dtype=np.intp
        )
        self._planes = []          # bit-plane toggle counters
        self._counts_cache = None  # lazily assembled (rows, lanes) ints
        self._shifts = np.arange(WORD_LANES, dtype=np.uint64)
        self._one = np.uint64(1)
        self._old_comb = np.empty((self._n_comb, self._words),
                                  dtype=np.uint64)

        #: {gate name: (lane mask int, stuck int)} over all lanes.
        self._comb_fault = {}
        #: {flop position: (lane mask int, stuck int)}.
        self._flop_fault = {}
        self._flop_patch = None  # (rows, keep, stuck) arrays at the edge

        self._cycles = 0
        self.gate_evaluations = 0
        self.settle_passes = 0

        # Net state: one (words,) lane array per net (plus the virtual
        # zero row, which is never written).
        self._state = np.zeros(
            (self._zero_row + 1, self._words), dtype=np.uint64
        )
        full = np.uint64(FULL_MASK)
        for net, value in netlist.constants.items():
            if value:
                self._state[ids[net], :] = full

        self._specialize()
        self._settle(count=False)

    # -- kernel specialization ----------------------------------------

    def _specialize(self):
        """Emit and compile the level-gather settle kernel.

        One fancy gather per level, then one expression per function
        family over basic slices of the gathered block, scattering to
        the level's contiguous output slices.  Per-level fault patches
        follow the level's writes so every downstream reader sees the
        forced value.  Index and polarity arrays are burned into the
        kernel's globals; the hot path is pure vector ops.
        """
        ids = self._net_ids
        namespace = {"M": np.uint64(FULL_MASK)}
        lines = ["def kernel(V):"]
        patches = self._level_patches()
        out_cursor = self._comb_lo

        def polarity(name, values):
            """Bind a polarity mask; '' when uniformly zero, ' ^ M'
            when uniformly one, else a per-gate (n, 1) column."""
            if not any(values):
                return ""
            if all(values):
                return " ^ M"
            namespace[name] = np.array(
                [FULL_MASK if v else 0 for v in values], dtype=np.uint64
            ).reshape(-1, 1)
            return f" ^ {name}"

        for level, xor_gates, and_gates, mux_gates in self._schedule:
            gather = []

            def operand(net):
                gather.append(ids[net])

            base = 0
            spans = {}
            for key, arity, gates in (
                ("x", 2, xor_gates), ("a", 2, and_gates),
                ("m", 3, mux_gates),
            ):
                for position in range(arity):
                    for gate in gates:
                        if key == "x" and position == 1:
                            if gate.cell.function in ("buf", "inv"):
                                gather.append(self._zero_row)
                            else:
                                operand(gate.inputs[1])
                        else:
                            operand(gate.inputs[position])
                    spans[(key, position)] = (base, base + len(gates))
                    base += len(gates)
            if not gather:
                continue
            namespace[f"L{level}"] = np.array(gather, dtype=np.intp)
            lines.append(f"    S = V[L{level}]")

            for key, gates, emit in (
                ("x", xor_gates, self._emit_xor),
                ("a", and_gates, self._emit_and),
                ("m", mux_gates, self._emit_mux),
            ):
                if not gates:
                    continue
                out = (out_cursor, out_cursor + len(gates))
                out_cursor = out[1]
                lines.append(emit(
                    level, gates, spans, out, polarity
                ))
            patch = patches.get(level)
            if patch is not None:
                rows, keep, stuck = patch
                namespace[f"P{level}r"] = rows
                namespace[f"P{level}k"] = keep
                namespace[f"P{level}s"] = stuck
                lines.append(
                    f"    V[P{level}r] = "
                    f"(V[P{level}r] & P{level}k) | P{level}s"
                )
        if len(lines) == 1:
            lines.append("    pass")
        exec(compile("\n".join(lines),
                     f"<vector:{self.netlist.name}>", "exec"), namespace)
        self._kernel = namespace["kernel"]
        self._flop_patch = self._edge_patch()

    @staticmethod
    def _emit_xor(level, gates, spans, out, polarity):
        x0, x1 = spans[("x", 0)]
        y0, y1 = spans[("x", 1)]
        suffix = polarity(
            f"X{level}",
            [_XOR_FAMILY[g.cell.function] for g in gates],
        )
        return (f"    V[{out[0]}:{out[1]}] = "
                f"S[{x0}:{x1}] ^ S[{y0}:{y1}]{suffix}")

    @staticmethod
    def _emit_and(level, gates, spans, out, polarity):
        a0, a1 = spans[("a", 0)]
        b0, b1 = spans[("a", 1)]
        pa = polarity(
            f"A{level}a", [_AND_FAMILY[g.cell.function][0] for g in gates]
        )
        pb = polarity(
            f"A{level}b", [_AND_FAMILY[g.cell.function][1] for g in gates]
        )
        po = polarity(
            f"A{level}o", [_AND_FAMILY[g.cell.function][2] for g in gates]
        )
        left = f"S[{a0}:{a1}]{pa}" if pa else f"S[{a0}:{a1}]"
        right = f"S[{b0}:{b1}]{pb}" if pb else f"S[{b0}:{b1}]"
        if pa:
            left = f"({left})"
        if pb:
            right = f"({right})"
        body = f"{left} & {right}"
        if po:
            body = f"({body}){po}"
        return f"    V[{out[0]}:{out[1]}] = {body}"

    @staticmethod
    def _emit_mux(level, gates, spans, out, polarity):
        a0, a1 = spans[("m", 0)]
        b0, b1 = spans[("m", 1)]
        c0, c1 = spans[("m", 2)]
        # (a, b, sel): b when sel else a, lane-wise.
        return (f"    V[{out[0]}:{out[1]}] = "
                f"S[{a0}:{a1}] ^ ((S[{a0}:{a1}] ^ S[{b0}:{b1}]) "
                f"& S[{c0}:{c1}])")

    def _mask_words(self, mask):
        """Split a python-int lane mask into a ``(words,)`` uint64 array."""
        full = FULL_MASK
        return np.array(
            [(mask >> (WORD_LANES * w)) & full for w in range(self._words)],
            dtype=np.uint64,
        )

    def _all_lanes_mask(self):
        """All-ones python-int mask over every word (not just 64 lanes)."""
        return (1 << (WORD_LANES * self._words)) - 1

    def _level_patches(self):
        """{level: (net rows, keep, stuck)} for the faulted comb gates."""
        if not self._comb_fault:
            return {}
        gate_level = {
            gate.name: level
            for gate, level in zip(self._comb, self._gate_levels)
        }
        per_level = defaultdict(list)
        for name, (mask, stuck) in self._comb_fault.items():
            per_level[gate_level[name]].append((name, mask, stuck))
        patches = {}
        all_lanes = self._all_lanes_mask()
        for level, entries in per_level.items():
            rows = np.array(
                [self._net_ids[self._outputs_by_gate[name]]
                 for name, _, _ in entries],
                dtype=np.intp,
            )
            keep = np.stack([
                self._mask_words(all_lanes ^ mask) for _, mask, _ in entries
            ])
            stuck = np.stack([
                self._mask_words(stuck) for _, _, stuck in entries
            ])
            patches[level] = (rows, keep, stuck)
        return patches

    def _edge_patch(self):
        """(flop positions, keep, stuck) arrays applied at the clock edge."""
        if not self._flop_fault:
            return None
        positions = sorted(self._flop_fault)
        rows = np.array(positions, dtype=np.intp)
        all_lanes = self._all_lanes_mask()
        keep = np.stack([
            self._mask_words(all_lanes ^ self._flop_fault[p][0])
            for p in positions
        ])
        stuck = np.stack([
            self._mask_words(self._flop_fault[p][1]) for p in positions
        ])
        return rows, keep, stuck

    # -- SimBackend interface -----------------------------------------

    @property
    def lanes(self):
        return self._lanes

    @property
    def cycles(self):
        return self._cycles

    def set_inputs(self, assignments):
        state, ids = self._state, self._net_ids
        full = np.uint64(FULL_MASK)
        zero = np.uint64(0)
        for name, value in assignments.items():
            index = ids.get(name)
            if index is not None:
                self._validate_scalar(name, value)
                state[index, :] = full if value else zero
                continue
            rows, bits = self._input_bus(name)
            self._validate_bus(name, len(rows), value)
            # One fancy scatter per bus: broadcast each bit of `value`
            # as an all-lanes word.
            state[rows] = np.where(
                (value >> bits) & 1, full, zero
            )[:, None]

    def set_input_lanes(self, assignments):
        """Per-lane stimulus: one value per lane for each named input.

        Where :meth:`set_inputs` broadcasts a single value to every
        lane, this folds per-die variation into the lane arrays --
        each lane (die) sees its own input value.  ``assignments``
        maps a scalar net to a length-``lanes`` sequence of 0/1, or a
        bus stem to a length-``lanes`` sequence of bus values.
        """
        state, ids = self._state, self._net_ids
        for name, values in assignments.items():
            values = np.asarray(values, dtype=np.int64)
            if values.shape != (self._lanes,):
                raise ValueError(
                    f"input '{name}' needs one value per lane "
                    f"({self._lanes}), got shape {values.shape}"
                )
            index = ids.get(name)
            if index is not None:
                if values.min() < 0 or values.max() > 1:
                    raise ValueError(
                        f"input '{name}' is a single net; values "
                        f"must be 0 or 1"
                    )
                state[index] = self._pack_lanes(
                    values.astype(np.uint8)[None, :]
                )[0]
                continue
            rows, bits = self._input_bus(name)
            if values.min() < 0 or values.max() >= (1 << len(rows)):
                raise ValueError(
                    f"value out of range for {len(rows)}-bit bus "
                    f"'{name}'"
                )
            planes = ((values[None, :] >> bits[:, None]) & 1)
            state[rows] = self._pack_lanes(planes.astype(np.uint8))

    def _input_bus(self, stem):
        """(net row array, bit position array) for input bus ``stem``."""
        key = ("input-bus", stem)
        cached = self._bus_cache.get(key)
        if cached is None:
            nets = self._bus_nets(stem)
            if not nets:
                raise KeyError(f"no such input '{stem}'")
            cached = (
                np.array(nets, dtype=np.intp),
                np.arange(len(nets)),
            )
            self._bus_cache[key] = cached
        return cached

    def set_fault_lanes(self, faults):
        faults = list(faults)
        if len(faults) > self._lanes:
            raise ValueError(
                f"{len(faults)} fault lanes for a "
                f"{self._lanes}-lane backend"
            )
        self._comb_fault = {}
        self._flop_fault = {}
        flop_positions = {g.name: i for i, g in enumerate(self._flops)}
        injected = 0
        for lane, entry in enumerate(faults):
            for gate_name, stuck in lane_fault_list(entry):
                if gate_name not in self._gate_names:
                    raise KeyError(f"no gate named '{gate_name}'")
                injected += 1
                table = (self._flop_fault if gate_name in flop_positions
                         else self._comb_fault)
                key = (flop_positions[gate_name]
                       if gate_name in flop_positions else gate_name)
                mask, value = table.get(key, (0, 0))
                mask |= 1 << lane
                if stuck & 1:
                    value |= 1 << lane
                table[key] = (mask, value)
        self._specialize()
        if injected:
            # Mirror the interpreter's inject_fault(): propagate without
            # counting toggles, charging one settle per injected fault
            # (the serial reference settles once per injection).
            self._settle(count=False, charge_lanes=injected)

    def clear_faults(self):
        had_faults = bool(self._comb_fault or self._flop_fault)
        self._comb_fault = {}
        self._flop_fault = {}
        self._specialize()
        if had_faults:
            self._settle(count=False)

    def step(self):
        self._settle(count=True)
        self._edge()
        self._cycles += 1
        self._settle(count=True)

    def read_net(self, net, lane=0):
        self._check_lane(lane)
        word = self._state[self._net_ids[net], lane // WORD_LANES]
        return int(word >> np.uint64(lane % WORD_LANES)) & 1

    def read_bus(self, stem, width=None, lane=0):
        self._check_lane(lane)
        word, bit = lane // WORD_LANES, np.uint64(lane % WORD_LANES)
        value = 0
        for position, index in enumerate(self._bus_ids(stem, width)):
            value |= (int(self._state[index, word] >> bit) & 1) << position
        return value

    def read_bus_lane_array(self, stem, width=None):
        indices = self._bus_ids(stem, width)
        words = self._state[indices]                       # (bits, words)
        lanes = self._unpack_lanes(words)                  # (bits, lanes)
        powers = np.left_shift(
            1, np.arange(len(indices)), dtype=np.int64
        )
        return powers @ lanes.astype(np.int64)

    def read_bus_lanes(self, stem, width=None):
        return self.read_bus_lane_array(stem, width).tolist()

    def toggles(self, lane=0):
        self._check_lane(lane)
        column = self._toggle_counts()[:, lane]
        return {name: int(count)
                for name, count in zip(self._row_names, column)}

    def toggle_coverage(self, lane=0):
        self._check_lane(lane)
        column = self._toggle_counts()[:, lane]
        total = self._rows or 1
        toggled = int(np.count_nonzero(column))
        mean = int(column.sum()) / total
        return toggled / total, mean

    def toggle_coverage_lanes(self):
        counts = self._toggle_counts()
        total = self._rows or 1
        fractions = np.count_nonzero(counts, axis=0) / total
        means = counts.sum(axis=0) / total
        return fractions, means

    def flush_obs(self):
        if not obs.active():
            return
        registry = obs.registry()
        registry.counter(
            "gate_evaluations_total",
            "Individual gate evaluations in the gate-level simulator",
        ).inc(self.gate_evaluations)
        registry.counter(
            "gate_settle_passes_total",
            "Combinational settle passes",
        ).inc(self.settle_passes)
        registry.counter(
            "gate_sim_cycles_total", "Gate-level clock cycles",
        ).inc(self._cycles * self._lanes)
        self.gate_evaluations = 0
        self.settle_passes = 0

    # -- evaluation ----------------------------------------------------

    def _settle(self, count=True, charge_lanes=None):
        charge = self._lanes if charge_lanes is None else charge_lanes
        self.settle_passes += charge
        self.gate_evaluations += self._n_comb * charge
        if count and self._n_comb:
            comb = self._state[self._comb_lo:self._flop_lo]
            old = self._old_comb
            np.copyto(old, comb)
            self._kernel(self._state)
            np.bitwise_xor(comb, old, out=old)
            self._accumulate(slice(0, self._n_comb), old)
        else:
            self._kernel(self._state)

    def _edge(self):
        if not len(self._flop_d):
            return
        state = self._state
        new = state[self._flop_d]  # gather copies: read all D before Q
        if self._flop_patch is not None:
            rows, keep, stuck = self._flop_patch
            new[rows] = (new[rows] & keep) | stuck
        q = state[self._flop_lo:self._zero_row]
        changed = q ^ new
        q[:] = new
        self._accumulate(slice(self._n_comb, self._rows), changed)

    def _accumulate(self, rows, changed):
        """Add a change matrix into the bit-plane toggle counters.

        Ripple-carry add of one everywhere a change bit is set: plane
        ``p`` absorbs the carry (``^=``) and forwards it where the bit
        was already set (``&``).  The carry's population decays
        geometrically per plane; planes grow on demand as counts cross
        powers of two.
        """
        self._counts_cache = None
        carry = changed
        plane_index = 0
        while carry.any():
            if plane_index == len(self._planes):
                self._planes.append(np.zeros(
                    (self._rows, self._words), dtype=np.uint64
                ))
            plane = self._planes[plane_index]
            forwarded = plane[rows] & carry
            plane[rows] ^= carry
            carry = forwarded
            plane_index += 1

    def _unpack_lanes(self, words):
        """Unpack a ``(rows, words)`` uint64 block into per-lane bits,
        shape ``(rows, lanes)`` uint8, lane ``l`` at column ``l``."""
        if _LITTLE_ENDIAN:
            bits = np.unpackbits(
                np.ascontiguousarray(words).view(np.uint8),
                axis=1, bitorder="little",
            )
        else:
            bits = (
                (words[:, :, None] >> self._shifts) & self._one
            ).reshape(words.shape[0], -1).astype(np.uint8)
        return bits[:, :self._lanes]

    def _pack_lanes(self, bits):
        """Pack a ``(rows, lanes)`` 0/1 matrix into ``(rows, words)``
        uint64 lane arrays (the inverse of :meth:`_unpack_lanes`)."""
        rows = bits.shape[0]
        padded = np.zeros(
            (rows, self._words * WORD_LANES), dtype=np.uint8
        )
        padded[:, :self._lanes] = bits
        if _LITTLE_ENDIAN:
            return np.packbits(
                padded, axis=1, bitorder="little"
            ).view(np.uint64)
        words = padded.reshape(
            rows, self._words, WORD_LANES
        ).astype(np.uint64)
        return np.bitwise_or.reduce(words << self._shifts, axis=2)

    def _toggle_counts(self):
        """The (rows, lanes) integer counter matrix, assembled lazily
        from the bit-planes and cached until the next settle."""
        if self._counts_cache is None:
            counts = np.zeros((self._rows, self._lanes), dtype=np.int64)
            for position, plane in enumerate(self._planes):
                counts += (
                    self._unpack_lanes(plane).astype(np.int64) << position
                )
            self._counts_cache = counts
        return self._counts_cache
