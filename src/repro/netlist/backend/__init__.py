"""Gate-level simulation backends behind one interface.

Three implementations of :class:`SimBackend`:

- ``"interpreted"`` -- the per-gate dict interpreter
  (:class:`InterpretedBackend`), one lane per instance, kept as the
  bit-exact reference;
- ``"compiled"`` -- the levelized bit-parallel evaluator
  (:class:`CompiledBackend`), packing up to 64 independent fault lanes
  into the bits of 64-bit words, so one settle pass simulates a whole
  fault campaign chunk;
- ``"vector"`` -- the wafer-scale evaluator (:class:`VectorBackend`),
  generalizing the packing to NumPy ``uint64`` lane arrays of shape
  ``(words,)`` per net, so capacity is ``64 x words`` lanes and one
  settle pass advances every die on a wafer.

Consumers (cross-checks, fault campaigns, toggle studies, the CLI)
select a backend by name; ``None`` means the process-wide default set
by :func:`configure` (see the ``--backend`` CLI flag).  See
``docs/GATESIM.md`` for lane packing, levelization, and guidance on
choosing a backend.
"""

from repro.netlist.backend.base import (
    BACKENDS,
    SimBackend,
    configure,
    default_backend,
    lane_fault_list,
    make_backend,
    resolve_backend,
)
from repro.netlist.backend.compiled import (
    FULL_MASK,
    WORD_LANES,
    CompiledBackend,
)
from repro.netlist.backend.interpreted import InterpretedBackend
from repro.netlist.backend.vector import VECTOR_MAX_LANES, VectorBackend
from repro.netlist.levelize import CombinationalLoopError, levelize

__all__ = [
    "BACKENDS",
    "CombinationalLoopError",
    "CompiledBackend",
    "FULL_MASK",
    "InterpretedBackend",
    "SimBackend",
    "VECTOR_MAX_LANES",
    "VectorBackend",
    "WORD_LANES",
    "configure",
    "default_backend",
    "lane_fault_list",
    "levelize",
    "make_backend",
    "resolve_backend",
]
