"""The reference backend: one lane over the per-gate interpreter.

A thin adapter putting :class:`~repro.netlist.sim.GateLevelSimulator`
behind the :class:`~repro.netlist.backend.base.SimBackend` interface.
Every behavioral question -- settle semantics, toggle attribution,
fault propagation -- is answered by the interpreter; the compiled
backend is validated bit-for-bit against this one.
"""

from repro.netlist.backend.base import (
    SimBackend,
    lane_fault_list,
    register_backend,
)
from repro.netlist.sim import GateLevelSimulator


@register_backend
class InterpretedBackend(SimBackend):
    """Single-lane dict interpreter (the bit-exact reference)."""

    name = "interpreted"
    max_lanes = 1

    def __init__(self, netlist, lanes=1):
        if lanes != 1:
            raise ValueError(
                f"the interpreted backend is single-lane, got lanes={lanes}"
            )
        self.sim = GateLevelSimulator(netlist)

    @property
    def lanes(self):
        return 1

    @property
    def cycles(self):
        return self.sim.cycles

    def set_inputs(self, assignments):
        self.sim.set_inputs(assignments)

    def set_fault_lanes(self, faults):
        faults = list(faults)
        if len(faults) > 1:
            raise ValueError(
                f"the interpreted backend holds one fault lane, "
                f"got {len(faults)}"
            )
        self.sim.faults.clear()
        if faults:
            for gate_name, stuck in lane_fault_list(faults[0]):
                self.sim.inject_fault(gate_name, stuck)

    def clear_faults(self):
        self.sim.clear_faults()

    def step(self):
        self.sim.step()

    def read_net(self, net, lane=0):
        self._check_lane(lane)
        return self.sim.read_net(net)

    def read_bus(self, stem, width=None, lane=0):
        self._check_lane(lane)
        return self.sim.read_bus(stem, width)

    def toggles(self, lane=0):
        self._check_lane(lane)
        return dict(self.sim.toggles)

    def toggle_coverage(self, lane=0):
        self._check_lane(lane)
        return self.sim.toggle_coverage()

    def flush_obs(self):
        self.sim.flush_obs()

    def _check_lane(self, lane):
        if lane != 0:
            raise IndexError(f"interpreted backend has 1 lane, got {lane}")
