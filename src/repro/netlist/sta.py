"""Static timing analysis over the gate-level netlist.

Computes the longest register-to-register (or port-to-register)
combinational path by summing normalized cell delays in topological
order, then converts it to an achievable clock frequency at a supply
voltage using the technology delay model.  This is what makes the
FlexiCore8-at-3V yield collapse of Section 4.1 emerge from the model:
its 8-bit ripple-carry chain is twice FlexiCore4's, and the 3 V delay
factor pushes it past the 12.5 kHz budget for most process corners.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.levelize import levelize
from repro.tech import tft
from repro.tech.cells import SECONDS_PER_DELAY_UNIT


#: Delay of one external program-memory fetch, in normalized units.
#: FlexiCores fetch every instruction off-chip (Section 3.5), so a
#: single-cycle machine's period is fetch + core critical path; splitting
#: the two is exactly what the Section 6.2 two-stage pipeline buys.
FETCH_DELAY_UNITS = 12.0


@dataclass(frozen=True)
class TimingReport:
    """Critical-path summary of a netlist."""

    netlist_name: str
    critical_delay_units: float
    critical_path: Tuple[str, ...]  # gate names along the worst path
    levels: int

    def period_s(self, vdd=tft.VDD_NOMINAL, speed_factor=1.0,
                 include_fetch=True):
        """Single-cycle clock period at ``vdd`` for a die with the given
        per-die process speed factor (>1 = slow die)."""
        units = self.critical_delay_units
        if include_fetch:
            units += FETCH_DELAY_UNITS
        return (
            units
            * SECONDS_PER_DELAY_UNIT
            * tft.delay_factor(vdd)
            * speed_factor
        )

    def fmax_hz(self, vdd=tft.VDD_NOMINAL, speed_factor=1.0):
        return 1.0 / self.period_s(vdd, speed_factor)

    def meets(self, frequency_hz, vdd=tft.VDD_NOMINAL, speed_factor=1.0):
        """Would a die with this corner pass at ``frequency_hz``?"""
        return self.fmax_hz(vdd, speed_factor) >= frequency_hz


def analyze(netlist):
    """Longest-path analysis.  Endpoints are DFF D-inputs and primary
    outputs; start points are DFF Q-outputs and primary inputs (all at
    arrival time 0, plus the DFF clock-to-q delay)."""
    # The shared levelization (and its loop check) -- no simulator
    # state is built just to order the gates.
    order = levelize(netlist)

    arrival = {net: 0.0 for net in netlist.inputs}
    arrival.update({net: 0.0 for net in netlist.constants})
    from_gate = {}
    clk_to_q = 0.0
    for gate in netlist.gates:
        if gate.sequential:
            arrival[gate.output] = gate.cell.delay  # clock-to-q
            from_gate[gate.output] = None

    for gate in order:
        at = max(arrival.get(net, 0.0) for net in gate.inputs)
        arrival[gate.output] = at + gate.cell.delay
        worst = max(
            (net for net in gate.inputs),
            key=lambda net: arrival.get(net, 0.0),
        )
        from_gate[gate.output] = (gate, worst)

    # Endpoints: D pins of flops (+ setup ~ one mux delay) and outputs.
    best_net, best_delay = None, 0.0
    for gate in netlist.gates:
        if gate.sequential:
            delay = arrival.get(gate.inputs[0], 0.0)
            if delay > best_delay:
                best_delay, best_net = delay, gate.inputs[0]
    for net in netlist.outputs:
        delay = arrival.get(net, 0.0)
        if delay > best_delay:
            best_delay, best_net = delay, net

    # Walk the worst path back for the report.
    path: List[str] = []
    levels = 0
    net = best_net
    while net is not None and net in from_gate:
        entry = from_gate[net]
        if entry is None:
            break
        gate, previous = entry
        path.append(gate.name)
        levels += 1
        net = previous
    path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        critical_delay_units=best_delay,
        critical_path=tuple(path),
        levels=levels,
    )
