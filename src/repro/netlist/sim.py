"""Cycle-based gate-level simulator with toggle counting.

Evaluates a :class:`~repro.netlist.core.Netlist` one clock cycle at a
time: combinational gates are levelized once, then each cycle evaluates
them in topological order and updates every DFF on the clock edge.
Toggle counts per gate output support the Section 4.1 test-coverage
claim ("gates toggling on average 24,060 times, and all gates toggle at
least once").
"""

from repro import obs
from repro.netlist.core import Netlist
from repro.netlist.levelize import CombinationalLoopError, levelize

__all__ = ["CombinationalLoopError", "GateLevelSimulator"]


def _evaluate(function, values):
    if function == "buf":
        return values[0]
    if function == "inv":
        return 1 - values[0]
    if function == "nand2":
        return 1 - (values[0] & values[1])
    if function == "nor2":
        return 1 - (values[0] | values[1])
    if function == "xor2":
        return values[0] ^ values[1]
    if function == "xnor2":
        return 1 - (values[0] ^ values[1])
    if function == "mux2":
        a, b, sel = values
        return b if sel else a
    raise ValueError(f"cannot evaluate cell function '{function}'")


class GateLevelSimulator:
    """Synchronous two-phase simulation of a netlist."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self.values = {net: value for net, value in netlist.constants.items()}
        for net in netlist.inputs:
            self.values[net] = 0
        self._flops = [g for g in netlist.gates if g.sequential]
        for flop in self._flops:
            self.values[flop.output] = 0
        self._order = self._levelize()
        self.toggles = {gate.name: 0 for gate in netlist.gates}
        self.cycles = 0
        #: Local observability tallies (two integer adds per settle
        #: pass -- cheap enough to keep unconditionally).  Folded into
        #: the process-wide registry by :meth:`flush_obs`.
        self.gate_evaluations = 0
        self.settle_passes = 0
        #: Stuck-at faults: {gate name: forced output value}.  Applied
        #: during evaluation so the fault propagates downstream -- the
        #: basis of the Section 4.1 fault-detection validation.
        self.faults = {}
        # Settle combinational logic against the all-zero state.
        self._settle(count_toggles=False)

    def _levelize(self):
        """Topological order of combinational gates (shared with the
        backend layer and STA via :mod:`repro.netlist.levelize`)."""
        return levelize(self.netlist)

    # ------------------------------------------------------------------

    def set_inputs(self, assignments):
        """Assign primary inputs ({name: 0/1} or {bus_stem: int}).

        Values are range-checked: a single net takes exactly 0 or 1,
        and a bus value must fit in the bus width -- silently masking
        an oversized value would hide driver bugs from the cross-check.
        """
        for name, value in assignments.items():
            if name in self.values or name in self.netlist.inputs:
                if value not in (0, 1):
                    raise ValueError(
                        f"input '{name}' is a single net; value must "
                        f"be 0 or 1, got {value!r}"
                    )
                self.values[name] = int(value)
            else:
                # Bus assignment: stem + bit index.
                width = 0
                while f"{name}{width}" in self.values:
                    width += 1
                if width == 0:
                    raise KeyError(f"no such input '{name}'")
                if not 0 <= value < (1 << width):
                    raise ValueError(
                        f"value {value!r} out of range for {width}-bit "
                        f"bus '{name}'"
                    )
                for bit in range(width):
                    self.values[f"{name}{bit}"] = (value >> bit) & 1

    def inject_fault(self, gate_name, stuck_value):
        """Force a gate output to a stuck-at value (persists until
        :meth:`clear_faults`)."""
        if not any(g.name == gate_name for g in self.netlist.gates):
            raise KeyError(f"no gate named '{gate_name}'")
        self.faults[gate_name] = stuck_value & 1
        self._settle(count_toggles=False)

    def clear_faults(self):
        self.faults.clear()
        self._settle(count_toggles=False)

    def _settle(self, count_toggles=True):
        faults = self.faults
        self.settle_passes += 1
        self.gate_evaluations += len(self._order)
        for gate in self._order:
            inputs = [self.values[net] for net in gate.inputs]
            new = _evaluate(gate.cell.function, inputs)
            if faults and gate.name in faults:
                new = faults[gate.name]
            if count_toggles and self.values.get(gate.output) != new:
                self.toggles[gate.name] += 1
            self.values[gate.output] = new

    def step(self):
        """One clock cycle: settle combinational logic, clock the DFFs."""
        self._settle()
        updates = []
        for flop in self._flops:
            new = self.values[flop.inputs[0]]
            if self.faults and flop.name in self.faults:
                new = self.faults[flop.name]
            if new != self.values[flop.output]:
                self.toggles[flop.name] += 1
            updates.append((flop.output, new))
        for net, value in updates:
            self.values[net] = value
        self.cycles += 1
        # Propagate the new state so outputs are coherent after the edge;
        # state-driven transitions count toward toggle coverage too.
        self._settle(count_toggles=True)

    # ------------------------------------------------------------------

    def read_bus(self, stem, width=None):
        value, bit = 0, 0
        while True:
            net = f"{stem}{bit}"
            if net not in self.values:
                if bit == 0:
                    raise KeyError(f"no such bus '{stem}'")
                if width is not None and bit < width:
                    raise KeyError(
                        f"bus '{stem}' is only {bit} bits wide; "
                        f"cannot read {width} bits"
                    )
                break
            if width is not None and bit >= width:
                break
            value |= self.values[net] << bit
            bit += 1
        return value

    def read_net(self, net):
        return self.values[net]

    def toggle_coverage(self):
        """(fraction of gates that toggled, mean toggles per gate)."""
        total = len(self.toggles) or 1
        toggled = sum(1 for count in self.toggles.values() if count)
        mean = sum(self.toggles.values()) / total
        return toggled / total, mean

    def flush_obs(self):
        """Fold (and reset) the local tallies into the metrics registry.

        Called by completion points (e.g. the cross-check runner); safe
        to call repeatedly, and a no-op when collection is off.
        """
        if not obs.active():
            return
        registry = obs.registry()
        registry.counter(
            "gate_evaluations_total",
            "Individual gate evaluations in the gate-level simulator",
        ).inc(self.gate_evaluations)
        registry.counter(
            "gate_settle_passes_total",
            "Combinational settle passes",
        ).inc(self.settle_passes)
        registry.counter(
            "gate_sim_cycles_total", "Gate-level clock cycles",
        ).inc(self.cycles)
        self.gate_evaluations = 0
        self.settle_passes = 0
