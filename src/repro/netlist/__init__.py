"""Gate-level models: netlists, simulation, timing, cross-verification."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import GateInst, Netlist
from repro.netlist.cores import build_flexicore4, build_flexicore8
from repro.netlist.dse_cores import (
    build_extended_core,
    build_loadstore_core,
)
from repro.netlist.export import to_verilog
from repro.netlist.floorplan import render as render_floorplan
from repro.netlist.sim import CombinationalLoopError, GateLevelSimulator
from repro.netlist.sta import FETCH_DELAY_UNITS, TimingReport, analyze
from repro.netlist.verify import CrossCheckResult, run_cross_check

__all__ = [
    "CombinationalLoopError",
    "CrossCheckResult",
    "FETCH_DELAY_UNITS",
    "GateInst",
    "GateLevelSimulator",
    "Netlist",
    "NetlistBuilder",
    "TimingReport",
    "analyze",
    "build_extended_core",
    "build_flexicore4",
    "build_flexicore8",
    "build_loadstore_core",
    "render_floorplan",
    "run_cross_check",
    "to_verilog",
]
