"""Gate-level models: netlists, simulation, timing, cross-verification."""

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import GateInst, Netlist
from repro.netlist.cores import build_flexicore4, build_flexicore8
from repro.netlist.dse_cores import (
    build_extended_core,
    build_loadstore_core,
)
from repro.netlist.backend import (
    CompiledBackend,
    InterpretedBackend,
    SimBackend,
    VectorBackend,
    configure,
    default_backend,
    make_backend,
)
from repro.netlist.export import to_verilog
from repro.netlist.floorplan import render as render_floorplan
from repro.netlist.levelize import levelize
from repro.netlist.sim import CombinationalLoopError, GateLevelSimulator
from repro.netlist.sta import FETCH_DELAY_UNITS, TimingReport, analyze
from repro.netlist.verify import (
    CrossCheckResult,
    run_cross_check,
    run_cross_check_batch,
)

__all__ = [
    "CombinationalLoopError",
    "CompiledBackend",
    "CrossCheckResult",
    "FETCH_DELAY_UNITS",
    "GateInst",
    "GateLevelSimulator",
    "InterpretedBackend",
    "Netlist",
    "NetlistBuilder",
    "SimBackend",
    "TimingReport",
    "VectorBackend",
    "analyze",
    "build_extended_core",
    "build_flexicore4",
    "build_flexicore8",
    "build_loadstore_core",
    "configure",
    "default_backend",
    "levelize",
    "make_backend",
    "render_floorplan",
    "run_cross_check",
    "run_cross_check_batch",
    "to_verilog",
]
