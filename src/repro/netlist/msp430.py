"""The Section 3.5 reference point: openMSP430 in 0.8 um IGZO.

The paper synthesizes the openMSP430 RTL into the same cell library to
show what a conventional "small" microcontroller costs in this
technology: 170 mm^2 (30x FlexiCore4) and 41.2 mW static (23x).  We
cannot re-synthesize Verilog here, so the core is modeled from its
published synthesized composition: roughly 1.6k flip-flops (register
file, 27 x 16-bit special-function/peripheral registers, pipeline state)
plus ~6.5k combinational cells (16-bit ALU with barrel shifter, 16x16
multiplier support logic, address generation, and a large multi-cycle
control unit) -- numbers consistent with openMSP430 synthesis reports on
small standard-cell libraries.  Mapped through our Figure 1 library this
lands within ~10% of both paper ratios, which is all Section 3.5 uses it
for.
"""

from dataclasses import dataclass

from repro.tech.cells import MM2_PER_NAND2, get_cell
from repro.tech.power import OperatingPoint, static_power_w

#: Approximate synthesized cell composition of the openMSP430 core.
MSP430_CELL_MIX = {
    "DFF_X1": 1280,    # 16 x 16b regfile + SFRs + pipeline/state
    "MUX2_X1": 1950,   # operand routing, shifter, address muxing
    "NAND2_X1": 1850,
    "NOR2_X1": 780,
    "INV_X1": 1150,
    "XOR2_X1": 600,    # ALU, condition codes
    "BUF_X1": 330,
}


@dataclass(frozen=True)
class SynthesisEstimate:
    name: str
    gate_count: int
    nand2_area: float
    area_mm2: float
    pullups: int
    static_power_mw: float


def estimate_msp430(vdd=4.5):
    """Area/power of openMSP430 mapped through the IGZO cell library."""
    gates = 0
    area = 0.0
    pullups = 0
    for cell_name, count in MSP430_CELL_MIX.items():
        cell = get_cell(cell_name)
        gates += count
        area += cell.area * count
        pullups += cell.pullups * count
    power_w = static_power_w(pullups, OperatingPoint(vdd=vdd))
    return SynthesisEstimate(
        name="openMSP430 (0.8um IGZO)",
        gate_count=gates,
        nand2_area=area,
        area_mm2=area * MM2_PER_NAND2,
        pullups=pullups,
        static_power_mw=power_w * 1e3,
    )


def section35_comparison():
    """The Section 3.5 ratios: MSP430 vs FlexiCore4 in the same process."""
    from repro.netlist.cores import build_flexicore4

    fc4 = build_flexicore4()
    msp = estimate_msp430()
    fc4_power_mw = static_power_w(
        fc4.pullups, OperatingPoint(vdd=4.5)
    ) * 1e3
    return {
        "msp430": msp,
        "fc4_area_mm2": fc4.area_mm2,
        "fc4_static_mw": fc4_power_mw,
        "area_ratio": msp.area_mm2 / fc4.area_mm2,
        "power_ratio": msp.static_power_mw / fc4_power_mw,
    }
