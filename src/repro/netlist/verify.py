"""Gate-level vs ISA-level cross-verification (the Section 4.1 test flow).

The paper derives chip test vectors from RTL simulation and counts a die
functional only when every output of every cycle matches.  We do the
same in software: drive the gate-level netlist and the ISA simulator
with the same program and inputs, and compare the PC and OPORT pins at
every instruction boundary.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.netlist.sim import GateLevelSimulator
from repro.sim.memory import ProgramMemory


@dataclass
class CrossCheckResult:
    cycles: int
    mismatches: int
    first_mismatch: Optional[str]
    toggle_fraction: float
    mean_toggles: float

    @property
    def passed(self):
        return self.mismatches == 0


def run_cross_check(netlist, isa, program, inputs=None, max_instructions=500,
                    fault=None):
    """Run ``program`` on both models, comparing PC and OPORT.

    ``inputs`` is a list of IPORT samples presented as a held level and
    advanced once per architectural read (matching the functional
    model's pop semantics).  ``fault`` optionally injects a stuck-at
    fault: a ``(gate_name, value)`` pair forcing that gate's output --
    used by the yield model's fault-detection tests.

    Only single-page programs can be cross-checked (the gate-level core
    is the bare die; the MMU is a separate component).
    """
    from repro.isa.state import IPORT_ADDR

    image = program.image() if hasattr(program, "image") else bytes(program)
    if len(image) > 128:
        raise ValueError("cross-check supports single-page programs only")

    gate_sim = GateLevelSimulator(netlist)
    if fault is not None:
        gate_name, stuck = fault
        gate_sim.inject_fault(gate_name, stuck)

    state = isa.new_state()
    input_values = list(inputs or [])
    cursor = {"gate": 0, "isa": 0}

    def isa_input():
        if cursor["isa"] < len(input_values):
            value = input_values[cursor["isa"]]
            cursor["isa"] += 1
            return value
        return 0

    state.input_fn = isa_input

    mismatches = 0
    first = None
    width = isa.word_bits

    for instruction_index in range(max_instructions):
        # ---- compare architectural state at the boundary ----
        gate_pc = gate_sim.read_bus("pc")
        gate_oport = gate_sim.read_bus("oport", width)
        isa_oport = state.mem[1]
        if gate_pc != state.pc or gate_oport != isa_oport:
            mismatches += 1
            if first is None:
                first = (
                    f"instruction {instruction_index}: "
                    f"pc gate={gate_pc} isa={state.pc}, "
                    f"oport gate={gate_oport} isa={isa_oport}"
                )
        # ---- step the ISA model ----
        decoded = isa.decode(
            image + bytes(4), state.pc  # wrap margin
        )
        # Present the IPORT value this instruction would read, if any.
        gate_input = 0
        will_read_input = decoded.mnemonic != "store" and any(
            spec.kind.name == "MEMADDR" and operand == IPORT_ADDR
            for spec, operand in zip(decoded.spec.operands, decoded.operands)
        )
        if will_read_input and cursor["gate"] < len(input_values):
            gate_input = input_values[cursor["gate"]]
            cursor["gate"] += 1
        isa.execute(state, decoded)
        # ---- step the gate-level core, one cycle per fetched byte ----
        for byte_offset in range(decoded.size):
            address = (decoded.address + byte_offset) % 128
            gate_sim.set_inputs({
                "instr": image[address] if address < len(image) else 0,
                "iport": gate_input,
            })
            gate_sim.step()
        if state.halted:
            break

    gate_sim.flush_obs()
    toggled, mean = gate_sim.toggle_coverage()
    return CrossCheckResult(
        cycles=gate_sim.cycles,
        mismatches=mismatches,
        first_mismatch=first,
        toggle_fraction=toggled,
        mean_toggles=mean,
    )
