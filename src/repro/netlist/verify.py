"""Gate-level vs ISA-level cross-verification (the Section 4.1 test flow).

The paper derives chip test vectors from RTL simulation and counts a die
functional only when every output of every cycle matches.  We do the
same in software: drive the gate-level netlist and the ISA simulator
with the same program and inputs, and compare the PC and OPORT pins at
every instruction boundary.

The gate side runs on a pluggable :mod:`repro.netlist.backend`.  Because
the stimulus (instruction bytes and IPORT samples) is derived entirely
from the ISA model, it is identical for every injected fault -- so
:func:`run_cross_check_batch` packs many faults into the lanes of one
backend instance and checks them all in a single run, the classic
parallel fault simulation strategy.
"""

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.netlist.backend.base import resolve_backend
from repro.sim.memory import ProgramMemory  # noqa: F401  (re-export)


@dataclass
class CrossCheckResult:
    cycles: int
    mismatches: int
    first_mismatch: Optional[str]
    toggle_fraction: float
    mean_toggles: float

    @property
    def passed(self):
        return self.mismatches == 0


def run_cross_check(netlist, isa, program, inputs=None, max_instructions=500,
                    fault=None, backend=None, fastpath=True):
    """Run ``program`` on both models, comparing PC and OPORT.

    ``inputs`` is a list of IPORT samples presented as a held level and
    advanced once per architectural read (matching the functional
    model's pop semantics).  ``fault`` optionally injects a stuck-at
    fault: a ``(gate_name, value)`` pair forcing that gate's output --
    used by the yield model's fault-detection tests.  ``backend`` names
    the gate-level simulation backend (``"interpreted"`` /
    ``"compiled"`` / ``"vector"``; ``None`` uses the process default).
    ``fastpath``
    replays the ISA side through the predecoded page table (decode once
    per program instead of once per instruction); ``False`` keeps the
    per-instruction ``isa.decode`` reference replay.

    Only single-page programs can be cross-checked (the gate-level core
    is the bare die; the MMU is a separate component).
    """
    return run_cross_check_batch(
        netlist, isa, program, inputs=inputs,
        max_instructions=max_instructions, faults=[fault],
        backend=backend, fastpath=fastpath,
    )[0]


def run_cross_check_batch(netlist, isa, program, inputs=None,
                          max_instructions=500, faults=None, backend=None,
                          fastpath=True):
    """Cross-check one die per lane, all in as few runs as possible.

    ``faults`` is a sequence whose entries are ``None`` (healthy lane),
    ``(gate_name, stuck_value)`` pairs, or lists of such pairs (one
    multi-defect die per lane); the result list lines up with it.
    Fault lists longer than the backend's lane capacity are chunked
    (the interpreted reference is single-lane, so it degrades to the
    per-fault loop; the compiled backend takes 64 per run; the vector
    backend takes a whole wafer-scale campaign in one run).  Each
    lane's result -- mismatch count, first-mismatch message, and
    toggle statistics -- is bit-identical to a dedicated serial run,
    because every lane sees exactly the same ISA-derived stimulus.
    """
    image = program.image() if hasattr(program, "image") else bytes(program)
    if len(image) > 128:
        raise ValueError("cross-check supports single-page programs only")

    fault_list = list(faults) if faults is not None else [None]
    backend_cls = resolve_backend(backend)
    chunk = max(1, backend_cls.max_lanes)
    input_values = list(inputs or [])
    results = []
    for start in range(0, len(fault_list), chunk):
        results.extend(_drive_chunk(
            backend_cls, netlist, isa, image, input_values,
            max_instructions, fault_list[start:start + chunk],
            fastpath,
        ))
    return results


def _drive_chunk(backend_cls, netlist, isa, image, input_values,
                 max_instructions, faults, fastpath=True):
    """One backend run: ``len(faults)`` lanes against one ISA replay.

    With ``fastpath`` the replay pulls each instruction (semantics,
    size, input-port read flag) from the page-0 predecode table, so the
    whole fault campaign decodes the program once; the ``fastpath=False``
    reference re-runs ``isa.decode`` every instruction.
    """
    from repro.isa.state import IPORT_ADDR

    table = None
    if fastpath:
        from repro.sim.predecode import predecode_image

        table = predecode_image(isa, image).page(0)

    lanes = len(faults)
    gate_sim = backend_cls(netlist, lanes=lanes)
    if any(fault is not None for fault in faults):
        gate_sim.set_fault_lanes(faults)

    state = isa.new_state()
    cursor = {"gate": 0, "isa": 0}

    def isa_input():
        if cursor["isa"] < len(input_values):
            value = input_values[cursor["isa"]]
            cursor["isa"] += 1
            return value
        return 0

    state.input_fn = isa_input

    mismatches = np.zeros(lanes, dtype=np.int64)
    firsts: List[Optional[str]] = [None] * lanes
    # Lanes still waiting for their first-mismatch message; keeping it
    # as a mask means a wafer of persistently-bad lanes costs one
    # vector op per boundary, not a Python loop per instruction.
    need_first = np.ones(lanes, dtype=bool)
    width = isa.word_bits

    for instruction_index in range(max_instructions):
        # ---- compare architectural state at the boundary, per lane ----
        pc_lanes = gate_sim.read_bus_lane_array("pc")
        oport_lanes = gate_sim.read_bus_lane_array("oport", width)
        isa_oport = state.mem[1]
        bad = (pc_lanes != state.pc) | (oport_lanes != isa_oport)
        if bad.any():
            mismatches += bad
            for lane in np.nonzero(bad & need_first)[0]:
                firsts[lane] = (
                    f"instruction {instruction_index}: "
                    f"pc gate={int(pc_lanes[lane])} isa={state.pc}, "
                    f"oport gate={int(oport_lanes[lane])} isa={isa_oport}"
                )
            need_first &= ~bad
        # ---- step the ISA model ----
        if table is not None:
            decoded = table.decoded[state.pc]
            if decoded is None:
                isa.decode(image + bytes(4), state.pc)  # raise faithfully
            will_read_input = table.reads_iport[state.pc]
        else:
            decoded = isa.decode(
                image + bytes(4), state.pc  # wrap margin
            )
            will_read_input = decoded.mnemonic != "store" and any(
                spec.kind.name == "MEMADDR" and operand == IPORT_ADDR
                for spec, operand in zip(
                    decoded.spec.operands, decoded.operands
                )
            )
        # Present the IPORT value this instruction would read, if any.
        gate_input = 0
        if will_read_input and cursor["gate"] < len(input_values):
            gate_input = input_values[cursor["gate"]]
            cursor["gate"] += 1
        isa.execute(state, decoded)
        # ---- step the gate-level core, one cycle per fetched byte ----
        for byte_offset in range(decoded.size):
            address = (decoded.address + byte_offset) % 128
            gate_sim.set_inputs({
                "instr": image[address] if address < len(image) else 0,
                "iport": gate_input,
            })
            gate_sim.step()
        if state.halted:
            break

    gate_sim.flush_obs()
    fractions, means = gate_sim.toggle_coverage_lanes()
    results = []
    for lane in range(lanes):
        results.append(CrossCheckResult(
            cycles=gate_sim.cycles,
            mismatches=int(mismatches[lane]),
            first_mismatch=firsts[lane],
            toggle_fraction=float(fractions[lane]),
            mean_toggles=float(means[lane]),
        ))
    return results
