"""Gate-level FlexiCore cores (Figure 3), built from the 13-cell library.

:func:`build_flexicore4` and :func:`build_flexicore8` produce *functional*
netlists: the gate-level simulator executes programs on them, and the test
suite cross-checks them instruction-by-instruction against the ISA
simulator -- the software analogue of the paper's chip-vs-RTL test flow
(Section 4.1).

Interface of the accumulator cores:

- inputs: ``instr0..7`` (the byte at the current PC, supplied by the
  external program memory each cycle) and ``iport0..w``;
- outputs: ``pc0..6`` and ``oport0..w``.

Microarchitectural decisions follow Section 3.4: a single ripple-carry
adder produces ADD, and its internal XOR (propagate) and NAND terms
provide the other two ALU functions nearly for free; data memory word 0
is the input port (reads bypass to the pins) and word 1 drives the output
port; the PC increments through a dedicated +1 chain and a branch simply
muxes the instruction's low seven bits in when ``instr7 & acc_msb``.

FlexiCore8 adds the single controller flip-flop of Section 3.4: the LOAD
BYTE opcode sets a flag marking the next fetched byte as data.
"""

from repro.netlist.builder import NetlistBuilder


def _decode_equals(b, bits, pattern):
    """AND-tree matching ``bits`` against a constant ``pattern``."""
    terms = []
    for index, bit in enumerate(bits):
        if (pattern >> index) & 1:
            terms.append(bit)
        else:
            terms.append(b.inv(bit))
    return b.and_tree(terms)


def _build_accumulator_base(name, width, mem_words, load_byte):
    """Shared structure of FlexiCore4 (load_byte=False) and FlexiCore8."""
    b = NetlistBuilder(name)
    addr_bits = max(1, (mem_words - 1).bit_length())

    b.set_module("io")
    instr = b.input_bus("instr", 8)
    iport = b.input_bus("iport", width)

    # ------------------------------------------------------------------
    # Decoder.
    # ------------------------------------------------------------------
    b.set_module("decoder")
    i7, i6, i5, i4, i3 = instr[7], instr[6], instr[5], instr[4], instr[3]
    not_branch = b.inv(i7)
    op11 = b.and_(i5, i4)
    is_ttype = b.and_tree([not_branch, i6, op11])
    is_store = b.and_(is_ttype, i3)
    is_load = b.and_(is_ttype, b.inv(i3))

    if load_byte:
        # FlexiCore8's one flip-flop of controller state (Section 3.4).
        is_ldb_opcode = _decode_equals(b, instr, 0b0000_1000)
        ldb_flag = b.net("ldb_flag")
        not_flag = b.inv(ldb_flag)
        flag_next = b.and_(is_ldb_opcode, not_flag)
        b.dff(flag_next, out=ldb_flag)
        # While the flag is set, the fetched byte is data: suppress every
        # control signal and steer the raw byte into the accumulator.
        is_store = b.and_(is_store, not_flag)
        is_load = b.and_(is_load, not_flag)
        branch_gate = not_flag
        acc_we = b.or_(
            b.and_(not_branch, b.inv(is_store)),
            ldb_flag,
        )
    else:
        ldb_flag = None
        branch_gate = b.const1
        acc_we = b.and_(not_branch, b.inv(is_store))

    # Operand select: immediate when bit 6, except T-type reads memory.
    sel_imm = b.and_(i6, b.inv(is_ttype))
    mem_we = is_store

    # ------------------------------------------------------------------
    # Data memory (module 'memory'): word 0 = IPORT, word 1 drives OPORT.
    # ------------------------------------------------------------------
    b.set_module("memory")
    addr = instr[:addr_bits]
    word_select = b.decoder(addr, size=mem_words)
    acc_q = [b.net(f"acc_q{i}") for i in range(width)]  # defined below
    stored = {}
    for word in range(1, mem_words):
        enable = b.and_(word_select[word], mem_we)
        stored[word] = b.register(acc_q, enable=enable)
    # Read mux tree over [IPORT, word1, ..., wordN], selected by the
    # address bits level by level.
    lanes = [iport] + [stored[w] for w in range(1, mem_words)]
    mem_rdata = []
    for bit in range(width):
        nets = [lane[bit] for lane in lanes]
        level = 0
        while len(nets) > 1:
            sel = addr[level]
            nxt = []
            for i in range(0, len(nets), 2):
                if i + 1 < len(nets):
                    nxt.append(b.mux(nets[i], nets[i + 1], sel))
                else:
                    nxt.append(nets[i])
            nets = nxt
            level += 1
        mem_rdata.append(nets[0])

    oport = stored[1]

    # ------------------------------------------------------------------
    # ALU (module 'alu'): Figure 3b.
    # ------------------------------------------------------------------
    b.set_module("alu")
    imm = instr[:width] if width <= 4 else [
        # FlexiCore8 sign-extends the 4-bit immediate across the byte.
        instr[i] if i < 4 else instr[3] for i in range(width)
    ]
    if load_byte:
        # In the data cycle the raw fetched byte must reach the
        # accumulator: override the B operand with the instruction byte.
        operand = [
            b.mux(
                b.mux(mem_rdata[i], imm[i], sel_imm),
                instr[i] if i < 8 else b.const0,
                ldb_flag,
            )
            for i in range(width)
        ]
    else:
        operand = [
            b.mux(mem_rdata[i], imm[i], sel_imm) for i in range(width)
        ]
    sums, _cout, props, nands = b.ripple_adder(acc_q, operand)
    alu_out = b.mux4_word([sums, nands, props, operand], i4, i5)
    if load_byte:
        # Data cycle: pass the operand (the raw byte) straight through.
        alu_out = b.mux_word(alu_out, operand, ldb_flag)

    # ------------------------------------------------------------------
    # Accumulator (module 'acc').
    # ------------------------------------------------------------------
    b.set_module("acc")
    for bit in range(width):
        d = b.mux(acc_q[bit], alu_out[bit], acc_we)
        b.dff(d, out=acc_q[bit])

    # ------------------------------------------------------------------
    # PC and branch logic (module 'pc').
    # ------------------------------------------------------------------
    b.set_module("pc")
    pc_q = [b.net(f"pc_q{i}") for i in range(7)]
    inc, _ = b.incrementer(pc_q)
    taken = b.and_tree([i7, acc_q[width - 1], branch_gate])
    next_pc = b.mux_word(inc, instr[:7], taken)
    for bit in range(7):
        b.dff(next_pc[bit], out=pc_q[bit])

    # ------------------------------------------------------------------
    # IO ring buffers.
    # ------------------------------------------------------------------
    b.set_module("io")
    for bit in range(7):
        b.output(b.buf(pc_q[bit], drive=2), name=f"pc{bit}")
    for bit in range(width):
        b.output(b.buf(oport[bit], drive=2), name=f"oport{bit}")

    return b.build()


def build_flexicore4():
    """The fabricated 4-bit FlexiCore (Figure 4a die)."""
    return _build_accumulator_base(
        "flexicore4", width=4, mem_words=8, load_byte=False
    )


def build_flexicore8():
    """The fabricated 8-bit FlexiCore (Figure 4b die)."""
    return _build_accumulator_base(
        "flexicore8", width=8, mem_words=4, load_byte=True
    )


def build_flexicore4plus():
    """FlexiCore4+ (the shift+flags extended accumulator, Section 6)."""
    # Imported lazily: dse_cores depends on this module's builder base.
    from repro.netlist.dse_cores import build_extended_core

    return build_extended_core(
        frozenset({"shift", "flags"}), name="flexicore4plus"
    )


#: Named core builders, so a worker process (or a cache key) can refer
#: to a fabricated core by its stable name instead of a netlist object.
CORE_BUILDERS = {
    "flexicore4": build_flexicore4,
    "flexicore8": build_flexicore8,
    "flexicore4plus": build_flexicore4plus,
}


def build_core(name):
    """Build a registered core netlist by name."""
    try:
        return CORE_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown core {name!r}; choose from {sorted(CORE_BUILDERS)}"
        ) from None
