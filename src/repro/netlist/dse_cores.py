"""Parametric gate-level cores for the Section 6 design-space exploration.

:func:`build_extended_core` grows the base FlexiCore4 datapath with any
subset of the Section 6.1 features, and :func:`build_loadstore_core`
builds the two-operand machine of Section 6.2; both accept the three
microarchitectures of the operand study (single-cycle, two-stage
pipeline, multicycle).  The netlists are structurally complete -- every
net driven, every module tagged -- so the area / static-power / STA
rollups that drive Figures 9, 12 and 13 are measured on real gate
structures rather than guessed constants.  (Functional verification at
the gate level is done on the fabricated base cores; the DSE cores are
sized, not booted.)
"""

from repro.netlist.builder import NetlistBuilder

#: Figure 9's sweep order.
DSE_FEATURES = (
    "adc", "shift", "flags", "mult", "xchg", "subr", "fullalu", "mem2x",
)


def _memory(b, width, words, read_ports, write_enable, write_data,
            addr_bits_nets, iport=None, second_addr_nets=None):
    """Data memory / register file.

    ``read_ports`` extra read muxes model the paper's second-port cost
    ("we estimated that adding a second port would have increased the
    data memory area by 39% and 25%" -- Section 3.5).  Word 0 reads the
    input port when ``iport`` is given (the accumulator machines).
    """
    b.set_module("memory")
    select = b.decoder(addr_bits_nets, size=words)
    stored = {}
    first_stored = 0 if iport is None else 1
    for word in range(first_stored, words):
        enable = b.and_(select[word], write_enable)
        stored[word] = b.register(write_data, enable=enable)
    lanes = []
    for word in range(words):
        if word == 0 and iport is not None:
            lanes.append(iport)
        else:
            lanes.append(stored[word])

    def read_port(addr_nets, extra_port=False):
        data = []
        for bit in range(width):
            nets = [lane[bit] for lane in lanes]
            if extra_port:
                # A second port loads every storage cell's output twice:
                # the cells need output buffering on the extra port, which
                # is the bulk of the paper's "+39% memory area" estimate.
                nets = [b.buf(b.buf(net)) for net in nets]
            level = 0
            while len(nets) > 1:
                sel = addr_nets[level]
                nxt = []
                for i in range(0, len(nets), 2):
                    if i + 1 < len(nets):
                        nxt.append(b.mux(nets[i], nets[i + 1], sel))
                    else:
                        nxt.append(nets[i])
                nets = nxt
                level += 1
            data.append(nets[0])
        return data

    ports = [read_port(addr_bits_nets)]
    for _ in range(read_ports - 1):
        ports.append(
            read_port(second_addr_nets or addr_bits_nets, extra_port=True)
        )
    return stored, ports


def _pc_block(b, instr, taken, extra_source=None, extra_sel=None):
    b.set_module("pc")
    pc_q = [b.net(f"pc_q{i}") for i in range(7)]
    inc, _ = b.incrementer(pc_q)
    next_pc = b.mux_word(inc, instr[:7], taken)
    if extra_source is not None:
        next_pc = b.mux_word(next_pc, extra_source, extra_sel)
    for bit in range(7):
        b.dff(next_pc[bit], out=pc_q[bit])
    return pc_q


def _microarch_overhead(b, microarch, instr_bits):
    """Pipeline / multicycle control state (Section 6.2).

    - two-stage pipeline: an instruction register plus valid/flush flag;
    - multicycle: a state counter plus per-cycle control-word muxing
      ("generation of multiple sets of control words" -- Section 6.2).
    """
    b.set_module("control")
    if microarch == "P":
        fetched = [b.input(f"pipe_in{i}") for i in range(instr_bits)]
        latched = b.register(fetched)
        valid = b.dff(b.inv(latched[0]))
        b.output(b.buf(valid), name="pipe_valid")
        for i, net in enumerate(latched):
            b.output(net, name=None)
    elif microarch == "MC":
        state0 = b.net("mc_state0")
        state1 = b.net("mc_state1")
        nxt0 = b.inv(state0)
        b.dff(nxt0, out=state0)
        b.dff(b.xor(state0, state1), out=state1)
        # One control-word mux per datapath control line, per cycle state
        # ("generation of multiple sets of control words -- one for each
        # cycle of instruction execution", Section 6.2).
        controls = []
        for i in range(16):
            controls.append(b.mux(state0, state1, b.xor(state0, state1)))
        b.output(b.or_tree(controls), name="mc_ctrl")


def build_extended_core(features=(), microarch="SC", name=None):
    """Extended accumulator core: base FlexiCore4 + feature hardware."""
    features = frozenset(features)
    unknown = features - set(DSE_FEATURES)
    if unknown:
        raise ValueError(f"unknown DSE features {sorted(unknown)}")
    width = 4
    words = 16 if "mem2x" in features else 8
    addr_bits = (words - 1).bit_length()
    if name is None:
        tag = "+".join(sorted(features)) if features else "base"
        name = f"extacc[{tag}]-{microarch.lower()}"
    b = NetlistBuilder(name)

    b.set_module("io")
    instr = b.input_bus("instr", 8)
    iport = b.input_bus("iport", width)

    # -- decoder --------------------------------------------------------
    b.set_module("decoder")
    i7, i6, i5, i4, i3 = instr[7], instr[6], instr[5], instr[4], instr[3]
    not_branch = b.inv(i7)
    op11 = b.and_(i5, i4)
    is_ttype = b.and_tree([not_branch, i6, op11])
    is_store = b.and_(is_ttype, i3)
    acc_we = b.and_(not_branch, b.inv(is_store))
    sel_imm = b.and_(i6, b.inv(is_ttype))
    mem_we = is_store
    # Two-byte instructions (EXT prefix, br/call) need a fetch-state flag.
    multi_byte = bool(features & {"adc", "shift", "flags", "mult",
                                  "xchg", "subr", "fullalu"})
    if multi_byte:
        ext_opcode = b.and_tree([b.inv(instr[k]) for k in (7, 6, 5, 4, 3,
                                                           1, 0)]
                                + [instr[2]])
        ext_flag = b.net("ext_flag")
        b.dff(b.and_(ext_opcode, b.inv(ext_flag)), out=ext_flag)
        # Sub-op strobes in the data byte: one AND per extension op
        # (the high nibble is close to one-hot by construction).
        ops = 2 * len(features & {"adc", "shift", "mult"}) \
            + len(features & {"xchg", "fullalu"})
        for index in range(ops):
            b.and_(instr[4 + (index % 4)], ext_flag)

    # -- memory ----------------------------------------------------------
    acc_q = [b.net(f"acc_q{i}") for i in range(width)]
    addr = instr[:addr_bits]
    mem_wdata = acc_q
    stored, (mem_rdata,) = _memory(
        b, width, words, read_ports=1,
        write_enable=mem_we, write_data=mem_wdata,
        addr_bits_nets=addr, iport=iport,
    )
    if "xchg" in features:
        # Exchange needs no new port (acc->mem and mem->acc in one cycle)
        # but does need write-path control.
        b.set_module("memory")
        b.and_(b.const1, instr[2])

    # -- ALU --------------------------------------------------------------
    b.set_module("alu")
    imm = instr[:width]
    operand = [b.mux(mem_rdata[i], imm[i], sel_imm) for i in range(width)]
    if "fullalu" in features:
        # Subtraction: invert B and inject carry-in.
        sub_sel = b.net("sub_sel")
        b.set_module("decoder")
        b.dff(b.and_(i5, i4), out=sub_sel)  # registered decode strobe
        b.set_module("alu")
        operand_adder = [b.xor(bit, sub_sel) for bit in operand]
        cin = sub_sel
    else:
        operand_adder = operand
        cin = b.const0
    if "adc" in features:
        b.set_module("acc")
        carry_q = b.net("carry_q")
        b.set_module("alu")
        cin = b.mux(cin, carry_q, b.and_(i5, b.inv(i4)))
    sums, cout, props, nands = b.ripple_adder(acc_q, operand_adder, cin)
    if "adc" in features:
        b.set_module("acc")
        b.dff(b.mux(carry_q, cout, acc_we), out=carry_q)
        b.set_module("alu")
    lanes = [sums, nands, props, operand]
    alu_out = b.mux4_word(lanes, i4, i5)
    if "fullalu" in features:
        ors = [b.or_(acc_q[i], operand[i]) for i in range(width)]
        ands = [b.inv(nands[i]) for i in range(width)]
        extra = b.mux4_word([ors, ands, ors, ands], i4, i5)
        alu_out = b.mux_word(alu_out, extra, b.and_(i6, i5))
    if "shift" in features:
        b.set_module("shifter")
        arith = b.and_(i4, i3)
        shifted = b.barrel_shifter_right(acc_q, [instr[0], instr[1]],
                                         arithmetic_sel=arith)
        b.set_module("alu")
        alu_out = b.mux_word(alu_out, shifted, b.and_(i5, i3))
    if "mult" in features:
        b.set_module("multiplier")
        product = b.array_multiplier(acc_q, operand)
        high_sel = instr[2]
        mul_out = b.mux_word(product[:width], product[width:], high_sel)
        b.set_module("alu")
        alu_out = b.mux_word(alu_out, mul_out, b.and_(i6, i3))

    # -- accumulator ------------------------------------------------------
    b.set_module("acc")
    for bit in range(width):
        b.dff(b.mux(acc_q[bit], alu_out[bit], acc_we), out=acc_q[bit])

    # -- branch condition -------------------------------------------------
    b.set_module("decoder")
    if "flags" in features:
        zero = b.nor_tree_is_zero(acc_q)
        negative = acc_q[width - 1]
        positive = b.and_(b.inv(negative), b.inv(zero))
        taken = b.or_tree([
            b.and_(instr[2], negative),
            b.and_(instr[1], zero),
            b.and_(instr[0], positive),
        ])
        taken = b.mux(b.and_(i7, negative), taken, b.inv(i7))
    else:
        taken = b.and_(i7, acc_q[width - 1])

    # -- subroutine return register -----------------------------------------
    retaddr = None
    ret_sel = None
    if "subr" in features:
        b.set_module("retaddr")
        call_strobe = b.and_(b.inv(i7), b.inv(i6))
        pc_plus = [b.net(f"ra_in{i}") for i in range(7)]
        retaddr = []
        for i in range(7):
            b.buf(instr[i], out=pc_plus[i])
            retaddr.append(b.dff(b.mux(pc_plus[i], instr[i], call_strobe)))
        ret_sel = b.and_(call_strobe, instr[0])

    # -- PC -----------------------------------------------------------------
    pc_q = _pc_block(b, instr, taken, extra_source=retaddr,
                     extra_sel=ret_sel)

    # -- microarchitecture overhead ------------------------------------------
    _microarch_overhead(b, microarch, instr_bits=8)

    # -- IO ring ---------------------------------------------------------------
    b.set_module("io")
    for bit in range(7):
        b.output(b.buf(pc_q[bit], drive=2), name=f"pc{bit}")
    oport = stored[1]
    for bit in range(width):
        b.output(b.buf(oport[bit], drive=2), name=f"oport{bit}")
    return b.build()


def build_loadstore_core(microarch="SC", name=None, width=4):
    """Two-operand load-store core (Section 6.2) with the revised ops.

    Single-cycle and pipelined variants need a second register-file read
    port; the multicycle variant reads operands over two cycles through
    one port plus an operand holding register -- the paper's explanation
    for why load-store + multicycle is the *small* load-store design.
    """
    name = name or f"loadstore-{microarch.lower()}"
    b = NetlistBuilder(name)
    words = 8

    b.set_module("io")
    instr = b.input_bus("instr", 16)
    iport = b.input_bus("iport", width)

    b.set_module("decoder")
    # R/I/branch format decode plus minor-opcode one-hots.
    top0, top1 = instr[15], instr[14]
    is_r = b.and_(b.inv(top0), b.inv(top1))
    is_i = b.and_(b.inv(top0), top1)
    minor = instr[8:12]
    for index in range(12):
        b.and_tree([
            minor[bit] if (index >> bit) & 1 else b.inv(minor[bit])
            for bit in range(4)
        ])
    reg_we = b.or_(is_r, is_i)

    rd_addr = instr[4:7]
    rs_addr = instr[0:3]
    result = [b.net(f"res{i}") for i in range(width)]

    second_port = microarch in ("SC", "P")
    if not second_port:
        b.set_module("control")
        # Operand holding register for the serialized second read.
        hold_inputs = [
            b.buf(iport[i % len(iport)]) for i in range(width)
        ]
        held = b.register(hold_inputs)

    stored, ports = _memory(
        b, width, words,
        read_ports=2 if second_port else 1,
        write_enable=reg_we, write_data=result,
        addr_bits_nets=rd_addr, iport=None,
        second_addr_nets=rs_addr,
    )
    a_operand = ports[0]
    b_operand = ports[1] if second_port else held

    # -- ALU: the full revised operation set ---------------------------------
    b.set_module("alu")
    imm = instr[:width]
    operand = [b.mux(b_operand[i], imm[i], is_i) for i in range(width)]
    sub_sel = b.and_(minor[1], b.inv(minor[2]))
    operand_adder = [b.xor(bit, sub_sel) for bit in operand]
    carry_q = b.net("ls_carry")
    cin = b.mux(sub_sel, carry_q, minor[0])
    sums, cout, props, nands = b.ripple_adder(a_operand, operand_adder, cin)
    b.dff(b.mux(carry_q, cout, reg_we), out=carry_q)
    ors = [b.or_(a_operand[i], operand[i]) for i in range(width)]
    ands = [b.inv(nands[i]) for i in range(width)]
    stage1 = b.mux4_word([sums, nands, props, operand], minor[0], minor[1])
    stage2 = b.mux4_word([ors, ands, ors, operand], minor[0], minor[1])
    alu_out = b.mux_word(stage1, stage2, minor[2])
    b.set_module("shifter")
    arith = b.and_(minor[0], minor[3])
    shifted = b.barrel_shifter_right(a_operand, [instr[0], instr[1]],
                                     arithmetic_sel=arith)
    b.set_module("alu")
    alu_out = b.mux_word(alu_out, shifted, b.and_(minor[3], minor[2]))
    for i in range(width):
        b.buf(alu_out[i], out=result[i])

    # -- branch / call / ret ---------------------------------------------------
    b.set_module("decoder")
    test = a_operand
    zero = b.nor_tree_is_zero(test)
    negative = test[width - 1]
    positive = b.and_(b.inv(negative), b.inv(zero))
    nzp = instr[10:13]
    is_branch = b.and_tree([b.inv(top0), b.inv(top1), instr[13]])
    taken = b.and_(is_branch, b.or_tree([
        b.and_(nzp[2], negative),
        b.and_(nzp[1], zero),
        b.and_(nzp[0], positive),
    ]))
    b.set_module("retaddr")
    call_strobe = b.and_(top0, b.inv(instr[8]))
    retaddr = [b.dff(b.mux(instr[i], instr[i], call_strobe))
               for i in range(7)]
    ret_sel = b.and_(top0, instr[8])

    pc_q = _pc_block(b, instr, taken, extra_source=retaddr,
                     extra_sel=ret_sel)

    # -- output port register ----------------------------------------------
    b.set_module("io")
    out_we = b.and_(is_r, b.and_(minor[3], minor[2]))
    oport = b.register(a_operand, enable=out_we)

    _microarch_overhead(b, microarch, instr_bits=16)

    b.set_module("io")
    for bit in range(7):
        b.output(b.buf(pc_q[bit], drive=2), name=f"pc{bit}")
    for bit in range(width):
        b.output(b.buf(oport[bit], drive=2), name=f"oport{bit}")
    return b.build()
