"""Topological ordering of combinational gates, shared by every
gate-level evaluator.

Both simulation backends (:mod:`repro.netlist.backend`) and static
timing analysis (:mod:`repro.netlist.sta`) need the same thing from a
netlist: its combinational gates sorted so every gate appears after the
gates driving its inputs, with a loop diagnostic when that is
impossible.  Keeping the Kahn traversal here means the order -- and
therefore per-pass evaluation semantics and toggle attribution -- is
identical everywhere by construction.
"""

from collections import deque


class CombinationalLoopError(Exception):
    pass


def levelize(netlist):
    """Topological order of ``netlist``'s combinational gates.

    Sequential cells (DFFs) break timing loops: their outputs are
    treated as primary sources, their inputs as sinks.  Raises
    :class:`CombinationalLoopError` naming gates on a cycle when the
    combinational subgraph is not a DAG.
    """
    comb = [g for g in netlist.gates if not g.sequential]
    producers = {g.output: g for g in comb}
    consumers = {}
    indegree = {}
    for gate in comb:
        count = 0
        for net in gate.inputs:
            if net in producers:
                consumers.setdefault(net, []).append(gate)
                count += 1
        indegree[gate.name] = count
    ready = deque(g for g in comb if indegree[g.name] == 0)
    order = []
    while ready:
        gate = ready.popleft()
        order.append(gate)
        for consumer in consumers.get(gate.output, ()):
            indegree[consumer.name] -= 1
            if indegree[consumer.name] == 0:
                ready.append(consumer)
    if len(order) != len(comb):
        stuck = [g.name for g in comb if indegree[g.name] > 0][:5]
        raise CombinationalLoopError(
            f"combinational loop involving {stuck}"
        )
    return order
