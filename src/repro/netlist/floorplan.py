"""Text floorplans: the die overlays of Figure 4, in ASCII.

The paper's die photos carry module-area overlays ("each chip has a
different ratio of areas allocated to its components").  This renderer
draws a proportional block diagram of a netlist's module areas, plus the
area/power legend -- a quick visual answer to "where did the silicon
go?" for any core, fabricated or explored.
"""

from repro.netlist.core import Netlist

#: Render order: big datapath blocks first, glue last.
_PREFERRED_ORDER = (
    "memory", "alu", "pc", "acc", "decoder", "shifter", "multiplier",
    "retaddr", "control", "io", "core",
)


def _ordered_modules(breakdown):
    known = [m for m in _PREFERRED_ORDER if m in breakdown]
    extra = sorted(set(breakdown) - set(known))
    return known + extra


def render(netlist: Netlist, width=60, height=14):
    """Proportional ASCII floorplan of the netlist's modules.

    Modules are stacked as horizontal slabs whose heights track their
    area fractions (minimum one row each), each labeled with its name
    and area share.
    """
    breakdown = netlist.module_breakdown()
    modules = _ordered_modules(breakdown)
    total_rows = max(height, len(modules))
    # Largest-remainder allocation of rows to modules.
    fractions = [breakdown[m]["area_fraction"] for m in modules]
    exact = [f * total_rows for f in fractions]
    rows = [max(1, int(e)) for e in exact]
    while sum(rows) > total_rows and max(rows) > 1:
        rows[rows.index(max(rows))] -= 1
    while sum(rows) < total_rows:
        remainders = [e - r for e, r in zip(exact, rows)]
        rows[remainders.index(max(remainders))] += 1

    horizontal = "+" + "-" * (width - 2) + "+"
    lines = [f"{netlist.name}: {netlist.nand2_area:.0f} NAND2-eq, "
             f"{netlist.area_mm2:.2f} mm^2",
             horizontal]
    for module, row_count in zip(modules, rows):
        entry = breakdown[module]
        label = (f" {module}  {100 * entry['area_fraction']:.1f}% area, "
                 f"{entry['gates']} cells")
        for index in range(row_count):
            body = label if index == (row_count - 1) // 2 else ""
            lines.append("|" + body.ljust(width - 2) + "|")
        lines.append(horizontal)
    return "\n".join(lines)


def compare(netlists, width=60):
    """Side-by-side module-share table for several cores (the Figure 4
    observation that each chip allocates area differently)."""
    breakdowns = {nl.name: nl.module_breakdown() for nl in netlists}
    modules = []
    for breakdown in breakdowns.values():
        for module in _ordered_modules(breakdown):
            if module not in modules:
                modules.append(module)
    header = f"{'module':<12}" + "".join(
        f"{name[:14]:>16}" for name in breakdowns
    )
    lines = [header]
    for module in modules:
        cells = []
        for breakdown in breakdowns.values():
            entry = breakdown.get(module)
            cells.append(
                f"{100 * entry['area_fraction']:>15.1f}%" if entry
                else f"{'-':>16}"
            )
        lines.append(f"{module:<12}" + "".join(cells))
    return "\n".join(lines)
