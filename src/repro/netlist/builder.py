"""Structural netlist builder: the thirteen cells, composed.

Only the Figure 1 library is available -- no AND/OR cells exist in the
process, so ``and_``/``or_`` compose NAND/NOR with inverters, exactly as
synthesis would map them.  Word-level helpers build the datapath idioms
the FlexiCores are made of: enable-muxed DFF registers, mux trees,
decoders, and the ripple-carry adder whose XOR/NAND side effects are the
whole ALU (Figure 3b).
"""

from typing import List, Optional, Sequence, Tuple

from repro.netlist.core import GateInst, Netlist
from repro.tech.cells import cells_by_function, default_cell


class NetlistBuilder:
    """Accumulates gates into a :class:`Netlist`."""

    def __init__(self, name):
        self.netlist = Netlist(name=name)
        self.netlist.constants["const0"] = 0
        self.netlist.constants["const1"] = 1
        self._net_counter = 0
        self._gate_counter = 0
        self.module = "core"

    # -- plumbing ----------------------------------------------------------

    def set_module(self, module):
        """Set the architectural module tag for subsequently added gates."""
        self.module = module
        return self

    def net(self, stem="n"):
        self._net_counter += 1
        return f"{stem}_{self._net_counter}"

    def input(self, name):
        self.netlist.inputs.append(name)
        return name

    def input_bus(self, stem, width):
        return [self.input(f"{stem}{i}") for i in range(width)]

    def output(self, net, name=None):
        """Mark ``net`` as a primary output (optionally aliased via BUF)."""
        if name is not None and name != net:
            net = self.buf(net, out=name)
        self.netlist.outputs.append(net)
        return net

    @property
    def const0(self):
        return "const0"

    @property
    def const1(self):
        return "const1"

    def _add(self, function, inputs, out=None, drive=1):
        variants = cells_by_function(function)
        cell = variants[min(drive, len(variants)) - 1]
        out = out or self.net(function)
        self._gate_counter += 1
        self.netlist.gates.append(GateInst(
            name=f"{function}_{self._gate_counter}",
            cell=cell,
            inputs=tuple(inputs),
            output=out,
            module=self.module,
        ))
        return out

    # -- the thirteen cells -------------------------------------------------

    def buf(self, a, out=None, drive=1):
        return self._add("buf", [a], out, drive)

    def inv(self, a, out=None, drive=1):
        return self._add("inv", [a], out, drive)

    def nand(self, a, b, out=None, drive=1):
        return self._add("nand2", [a, b], out, drive)

    def nor(self, a, b, out=None, drive=1):
        return self._add("nor2", [a, b], out, drive)

    def xor(self, a, b, out=None):
        return self._add("xor2", [a, b], out)

    def xnor(self, a, b, out=None):
        return self._add("xnor2", [a, b], out)

    def mux(self, a, b, sel, out=None):
        """2:1 mux: ``sel == 0`` selects ``a``."""
        return self._add("mux2", [a, b, sel], out)

    def dff(self, d, out=None, drive=1):
        return self._add("dff", [d], out, drive)

    # -- composed logic ------------------------------------------------------

    def and_(self, a, b, out=None):
        return self.inv(self.nand(a, b), out)

    def or_(self, a, b, out=None):
        return self.inv(self.nor(a, b), out)

    def and_tree(self, nets):
        nets = list(nets)
        if not nets:
            return self.const1
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.and_(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def or_tree(self, nets):
        nets = list(nets)
        if not nets:
            return self.const0
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.or_(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def nor_tree_is_zero(self, nets):
        """1 when every net is 0 (zero detect for branch flags)."""
        return self.inv(self.or_tree(nets))

    # -- word-level helpers ----------------------------------------------------

    def mux_word(self, a_bits, b_bits, sel):
        return [self.mux(a, b, sel) for a, b in zip(a_bits, b_bits)]

    def mux4_word(self, words, sel0, sel1):
        """4:1 word mux from three 2:1 stages per bit."""
        assert len(words) == 4
        result = []
        for lane in zip(*words):
            low = self.mux(lane[0], lane[1], sel0)
            high = self.mux(lane[2], lane[3], sel0)
            result.append(self.mux(low, high, sel1))
        return result

    def register(self, d_bits, enable=None):
        """Word register; with ``enable`` each bit recirculates via a mux
        (the idiomatic n-type enable flop)."""
        q_bits = [self.net("q") for _ in d_bits]
        for i, d in enumerate(d_bits):
            if enable is not None:
                d = self.mux(q_bits[i], d, enable)
            self.dff(d, out=q_bits[i])
        return q_bits

    def decoder(self, sel_bits, size=None):
        """One-hot decoder: ``size`` outputs from ``len(sel_bits)`` selects."""
        size = size if size is not None else (1 << len(sel_bits))
        inverted = [self.inv(s) for s in sel_bits]
        outputs = []
        for index in range(size):
            terms = [
                sel_bits[bit] if (index >> bit) & 1 else inverted[bit]
                for bit in range(len(sel_bits))
            ]
            outputs.append(self.and_tree(terms))
        return outputs

    def half_adder(self, a, b):
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a, b, c):
        """Full adder exposing the Figure 3b side effects.

        Returns (sum, carry, propagate=a^b, nand_ab).  The XOR function of
        the FlexiCore ALU is the propagate term; the NAND function is the
        ``nand_ab`` node -- both fall out of the adder for free.
        """
        p = self.xor(a, b)
        s = self.xor(p, c)
        nand_ab = self.nand(a, b)
        nand_pc = self.nand(p, c)
        carry = self.nand(nand_ab, nand_pc)
        return s, carry, p, nand_ab

    def ripple_adder(self, a_bits, b_bits, cin=None):
        """Ripple-carry adder.  Returns (sums, cout, propagates, nands)."""
        carry = cin if cin is not None else self.const0
        sums, props, nands = [], [], []
        for a, b in zip(a_bits, b_bits):
            s, carry, p, nand_ab = self.full_adder(a, b, carry)
            sums.append(s)
            props.append(p)
            nands.append(nand_ab)
        return sums, carry, props, nands

    def incrementer(self, bits):
        """+1 chain (the PC incrementer): per bit XOR + AND carry."""
        carry = self.const1
        sums = []
        for bit in bits:
            sums.append(self.xor(bit, carry))
            carry = self.and_(bit, carry)
        return sums, carry

    def barrel_shifter_right(self, bits, shamt_bits, arithmetic_sel=None):
        """Logarithmic right shifter; fill is 0 or the sign when
        ``arithmetic_sel`` (a net) is high."""
        width = len(bits)
        sign = bits[-1]
        fill = self.const0
        if arithmetic_sel is not None:
            fill = self.and_(sign, arithmetic_sel)
        current = list(bits)
        for stage, sel in enumerate(shamt_bits):
            amount = 1 << stage
            shifted = [
                current[i + amount] if i + amount < width else fill
                for i in range(width)
            ]
            current = self.mux_word(current, shifted, sel)
        return current

    def array_multiplier(self, a_bits, b_bits):
        """Unsigned array multiplier returning 2*width product bits --
        the expensive extension Figure 9 prices (and Section 6.1 rejects).
        """
        width = len(a_bits)
        partials = [
            [self.and_(a, b) for a in a_bits] for b in b_bits
        ]
        total = partials[0] + [self.const0] * width
        for row, partial in enumerate(partials[1:], start=1):
            addend = [self.const0] * row + partial + \
                [self.const0] * (width - row)
            sums, cout, _, _ = self.ripple_adder(
                total, addend[:len(total)]
            )
            total = sums
        return total[:2 * width]

    def build(self):
        self.netlist.validate()
        return self.netlist
