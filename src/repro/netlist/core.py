"""Gate-level netlist data structures.

A :class:`Netlist` is a flat list of standard-cell instances connected by
named nets, with each instance tagged by the architectural module it
belongs to (``alu``, ``decoder``, ``memory``, ``pc``, ``acc``, ...) so the
Table 2/3 per-module breakdowns fall out of a rollup.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tech.cells import MM2_PER_NAND2, Cell


@dataclass(frozen=True)
class GateInst:
    """One placed standard cell."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str
    module: str

    @property
    def sequential(self):
        return self.cell.sequential


@dataclass
class Netlist:
    """A gate-level design."""

    name: str
    gates: List[GateInst] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)    # primary inputs
    outputs: List[str] = field(default_factory=list)   # primary outputs
    #: Net names tied to constants.
    constants: Dict[str, int] = field(default_factory=dict)

    # -- structural metrics ---------------------------------------------

    @property
    def gate_count(self):
        return len(self.gates)

    @property
    def device_count(self):
        return sum(gate.cell.devices for gate in self.gates)

    @property
    def flop_count(self):
        return sum(1 for gate in self.gates if gate.sequential)

    @property
    def nand2_area(self):
        return sum(gate.cell.area for gate in self.gates)

    @property
    def area_mm2(self):
        return self.nand2_area * MM2_PER_NAND2

    @property
    def pullups(self):
        return sum(gate.cell.pullups for gate in self.gates)

    def modules(self):
        return sorted({gate.module for gate in self.gates})

    def module_breakdown(self):
        """Per-module structural summary, the basis of Tables 2 and 3.

        Returns {module: {gates, devices, area, pullups, seq_area,
        comb_area, area_fraction, pullup_fraction}}.
        """
        totals: Dict[str, Dict[str, float]] = {}
        for gate in self.gates:
            entry = totals.setdefault(gate.module, {
                "gates": 0, "devices": 0, "area": 0.0, "pullups": 0,
                "seq_area": 0.0, "comb_area": 0.0,
            })
            entry["gates"] += 1
            entry["devices"] += gate.cell.devices
            entry["area"] += gate.cell.area
            entry["pullups"] += gate.cell.pullups
            if gate.sequential:
                entry["seq_area"] += gate.cell.area
            else:
                entry["comb_area"] += gate.cell.area
        total_area = self.nand2_area or 1.0
        total_pullups = self.pullups or 1
        for entry in totals.values():
            entry["area_fraction"] = entry["area"] / total_area
            entry["pullup_fraction"] = entry["pullups"] / total_pullups
            entry["noncomb_fraction"] = (
                entry["seq_area"] / entry["area"] if entry["area"] else 0.0
            )
        return totals

    def cell_histogram(self):
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell.name] = histogram.get(gate.cell.name, 0) + 1
        return histogram

    def function_histogram(self):
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            key = gate.cell.function
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    # -- structural checks -------------------------------------------------

    def drivers(self):
        """Map net -> driving gate; constants and primary inputs have
        no driver."""
        table = {}
        for gate in self.gates:
            if gate.output in table:
                raise ValueError(
                    f"net '{gate.output}' driven by both "
                    f"'{table[gate.output].name}' and '{gate.name}'"
                )
            table[gate.output] = gate
        return table

    def validate(self):
        """Check single-driver nets and that every input is driven."""
        driven = set(self.drivers())
        available = driven | set(self.inputs) | set(self.constants)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in available:
                    raise ValueError(
                        f"gate '{gate.name}' input '{net}' is undriven"
                    )
        for net in self.outputs:
            if net not in available:
                raise ValueError(f"primary output '{net}' is undriven")
        return True
