"""One entry point per paper table and figure (see DESIGN.md's index)."""

from repro.experiments import figures, paper_data, tables

table2 = tables.table2
table3 = tables.table3
table4 = tables.table4
table5 = tables.table5
table6 = tables.table6
table7 = tables.table7
figure6 = figures.figure6
figure7 = figures.figure7
figure8 = figures.figure8
figure9 = figures.figure9
figure10 = figures.figure10
figure11 = figures.figure11
figure12 = figures.figure12
figure13 = figures.figure13

__all__ = [
    "figures", "paper_data", "tables",
    "table2", "table3", "table4", "table5", "table6", "table7",
    "figure6", "figure7", "figure8", "figure9", "figure10",
    "figure11", "figure12", "figure13",
]
