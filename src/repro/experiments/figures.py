"""Regeneration of the paper's figures (series/rows, terminal-rendered).

Each ``figureN()`` returns the data series behind the paper's plot; each
``format_figureN()`` renders them as text (wafer maps as character grids,
bar charts as value tables).
"""

from functools import lru_cache

import numpy as np

from repro.dse.designs import ALL_DESIGNS, BASELINE, DSE_DESIGNS
from repro.dse.evaluate import evaluate_all
from repro.dse.features import feature_sweep, revised_isa_report
from repro.engine import Job, engine_or_default, spawn_seeds
from repro.experiments import paper_data
from repro.fab.process import FC4_WAFER, FC8_WAFER
from repro.fab.yield_model import probed_wafer_job
from repro.kernels import calculator
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE, get_kernel
from repro.netlist.cores import build_flexicore4, build_flexicore8
from repro.tech.power import FMAX_HZ, OperatingPoint, static_power_w


# ----------------------------------------------------------------------
# Figures 6 and 7: wafer maps.
# ----------------------------------------------------------------------

#: (display name, registered core name, wafer process) of the Figure
#: 6/7 wafer maps.
_WAFER_CORES = (
    ("FlexiCore4", "flexicore4", FC4_WAFER),
    ("FlexiCore8", "flexicore8", FC8_WAFER),
)


def engine_wafer_provider(seed, engine=None, voltages=(3.0, 4.5)):
    """Default wafer provider: one engine job per core, each fabricated
    and probed under its own ``SeedSequence.spawn`` child seed, so the
    result is identical whether the jobs run serially, in parallel, or
    straight out of the result cache."""
    jobs = [
        Job(
            probed_wafer_job,
            {"core": core, "process": process,
             "voltages": tuple(voltages)},
            seed=child,
            label=f"probe:{core}",
        )
        for (_, core, process), child in zip(
            _WAFER_CORES, spawn_seeds(seed, len(_WAFER_CORES))
        )
    ]
    results = engine_or_default(engine).run(jobs, stage="wafers")
    wafers = {}
    for (name, _, _), result in zip(_WAFER_CORES, results):
        entry = {"fabricated": result["fabricated"]}
        entry.update(result["probes"])
        wafers[name] = entry
    return wafers


@lru_cache(maxsize=None)
def _probed_wafers(seed=2022, provider=None):
    """One fabricated wafer per core, probed at both voltages.

    ``provider`` is injectable (``provider(seed) -> {core: {"fabricated":
    wafer, voltage: probe, ...}}``) so cached/parallel engine results --
    or synthetic wafers in tests -- flow through every Figure 6/7 helper
    instead of runs constructed inline."""
    provider = provider or engine_wafer_provider
    return provider(seed)


def figure6(seed=2022):
    """Output-error wafer maps at 3 V and 4.5 V for both cores."""
    wafers = _probed_wafers(seed)
    return {
        (core, voltage): wafers[core][voltage].error_map()
        for core in wafers
        for voltage in (3.0, 4.5)
    }


def figure7(seed=2022):
    """Current-draw wafer maps at 3 V and 4.5 V for both cores."""
    wafers = _probed_wafers(seed)
    result = {}
    for core in wafers:
        for voltage in (3.0, 4.5):
            probe = wafers[core][voltage]
            mean, std, rsd = probe.current_statistics()
            result[(core, voltage)] = {
                "map": probe.current_map(),
                "mean_ma": mean,
                "std_ma": std,
                "rsd": rsd,
                "yield_incl": probe.yield_fraction(True),
            }
    return result


def _render_grid(cells, render_cell):
    if not cells:
        return "(empty wafer)"
    rows = max(r for r, _ in cells) + 1
    cols = max(c for _, c in cells) + 1
    lines = []
    for r in range(rows):
        line = []
        for c in range(cols):
            line.append(render_cell(cells.get((r, c))))
        lines.append("".join(line))
    return "\n".join(lines)


def format_figure6(seed=2022):
    maps = figure6(seed)
    parts = ["Figure 6: output errors per die "
             "(. = no die, O = 0 errors, 1-9 = log10-ish error count)"]
    for (core, voltage), cells in maps.items():
        def render(errors):
            if errors is None:
                return " ."
            if errors == 0:
                return " O"
            magnitude = min(9, max(1, int(np.log10(errors)) + 1))
            return f" {magnitude}"
        parts.append(f"\n-- {core} at {voltage} V --")
        parts.append(_render_grid(cells, render))
    return "\n".join(parts)


def format_figure7(seed=2022):
    data = figure7(seed)
    parts = ["Figure 7: current draw per die (mA, 'x.x'; . = no die)"]
    for (core, voltage), entry in data.items():
        def render(current):
            if current is None:
                return "   ."
            return f" {current:3.1f}"
        parts.append(
            f"\n-- {core} at {voltage} V: mean "
            f"{entry['mean_ma']:.2f} mA, rsd {100 * entry['rsd']:.1f}% --"
        )
        parts.append(_render_grid(entry["map"], render))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Figure 8: kernel latency and energy on FlexiCore4.
# ----------------------------------------------------------------------

def _steady_state_cost(kernel, target, gen_fn, warm=6, measure=24,
                       seed=8):
    """Mean dynamic instructions per transaction, warmup excluded.

    Runs the kernel twice with a common input prefix (same seed) and
    differences the instruction counts, which removes one-time setup cost
    -- matching the paper's per-input reporting for streaming kernels.
    """
    short_inputs = gen_fn(np.random.default_rng(seed), warm)
    long_inputs = gen_fn(np.random.default_rng(seed), warm + measure)
    assert long_inputs[:len(short_inputs)] == short_inputs
    short = kernel.check(target, short_inputs)
    long = kernel.check(target, long_inputs)
    return (long.stats.instructions - short.stats.instructions) / measure


@lru_cache(maxsize=None)
def figure8(seed=8):
    """Latency (ms) and energy (uJ) per kernel transaction on FlexiCore4.

    Like the paper, the Calculator is reported through its multiplication
    and division subroutines (add/sub are natively supported).
    """
    target = Target.named("flexicore4")
    power = static_power_w(build_flexicore4().pullups,
                           OperatingPoint(vdd=4.5))
    nj_per_instruction = power / FMAX_HZ * 1e9
    rows = {}

    def add_row(name, kernel, gen_fn):
        instructions = _steady_state_cost(kernel, target, gen_fn,
                                          seed=seed)
        time_ms = instructions / FMAX_HZ * 1e3
        energy_uj = instructions * nj_per_instruction * 1e-3
        rows[name] = {
            "instructions": instructions,
            "time_ms": time_ms,
            "energy_uj": energy_uj,
        }

    calc = get_kernel("calculator")
    add_row("Calculator (mul)", calc,
            lambda rng, n: calculator.gen_inputs_op(
                calculator.OP_MUL, rng, n))
    add_row("Calculator (div)", calc,
            lambda rng, n: calculator.gen_inputs_op(
                calculator.OP_DIV, rng, n))
    for kernel in SUITE:
        if kernel.name == "Calculator":
            continue
        add_row(kernel.name, kernel, kernel.generate_inputs)
    return {"rows": rows, "nj_per_instruction": nj_per_instruction}


def format_figure8():
    data = figure8()
    lines = [
        "Figure 8: FlexiCore4 kernel latency and energy "
        f"(at {data['nj_per_instruction']:.0f} nJ/instruction; "
        f"paper: {paper_data.NJ_PER_INSTRUCTION:.0f})",
        f"{'Kernel':<20} {'dyn instr':>10} {'time (ms)':>10} "
        f"{'energy (uJ)':>12}",
    ]
    for name, row in sorted(data["rows"].items(),
                            key=lambda item: item[1]["time_ms"]):
        lines.append(
            f"{name:<20} {row['instructions']:10.1f} "
            f"{row['time_ms']:10.2f} {row['energy_uj']:12.2f}"
        )
    lo, hi = paper_data.FIG8_LATENCY_RANGE_MS
    elo, ehi = paper_data.FIG8_ENERGY_RANGE_UJ
    lines.append(f"(paper ranges: {lo}-{hi} ms, {elo}-{ehi} uJ)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 9 and 10: ISA-extension sweep.
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _sweep():
    return feature_sweep()


def figure9():
    """Core area / cell count / suite code size per extension."""
    base, reports = _sweep()
    revised = revised_isa_report()
    return {
        "features": [
            {
                "feature": report.feature,
                "label": report.label,
                "area": report.area_ratio,
                "cells": report.cell_ratio,
                "code_size": report.code_ratio,
            }
            for report in reports
        ],
        "revised": revised,
    }


def format_figure9():
    data = figure9()
    lines = [
        "Figure 9: relative area / cells / code size per ISA extension",
        f"{'Extension':<32} {'area':>6} {'cells':>6} {'code':>6}",
        f"{'base':<32} {1.0:6.2f} {1.0:6.2f} {1.0:6.2f}",
    ]
    for row in data["features"]:
        lines.append(
            f"{row['label']:<32} {row['area']:6.2f} "
            f"{row['cells']:6.2f} {row['code_size']:6.2f}"
        )
    revised = data["revised"]
    lines.append(
        f"{'revised ISA (Section 6.1)':<32} "
        f"{revised['area_ratio']:6.2f} {'':>6} "
        f"{revised['code_ratio']:6.2f}"
    )
    return "\n".join(lines)


def figure10():
    """Per-benchmark code size under each extension, vs the base ISA."""
    _, reports = _sweep()
    revised = revised_isa_report()
    return {
        "by_feature": {
            report.feature: report.code_ratio_by_kernel
            for report in reports
        },
        "revised": revised["code_ratio_by_kernel"],
    }


def format_figure10():
    data = figure10()
    features = list(data["by_feature"])
    kernel_names = list(next(iter(data["by_feature"].values())))
    header = f"{'Kernel':<16}" + "".join(
        f"{feature:>9}" for feature in features
    ) + f"{'revised':>9}"
    lines = ["Figure 10: code size vs base FlexiCore4 ISA", header]
    for name in kernel_names:
        cells = "".join(
            f"{data['by_feature'][feature][name]:9.2f}"
            for feature in features
        )
        lines.append(f"{name:<16}{cells}{data['revised'][name]:9.2f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 11, 12, 13: the operand/microarchitecture study.
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _dse_wide():
    return evaluate_all()


@lru_cache(maxsize=None)
def _dse_bus():
    return evaluate_all(bus_bits=8)


def figure11():
    """Per-kernel performance and energy of the DSE cores vs FlexiCore4."""
    results = _dse_wide()
    base = results["FlexiCore4"]
    perf = {}
    energy = {}
    for design in DSE_DESIGNS:
        metrics = results[design.name]
        perf[design.name] = {
            name: base.kernels[name].time_s / k.time_s
            for name, k in metrics.kernels.items()
        }
        energy[design.name] = {
            name: k.energy_j / base.kernels[name].energy_j
            for name, k in metrics.kernels.items()
        }
        perf[design.name]["Avg"] = float(np.exp(np.mean(
            np.log(list(perf[design.name].values()))
        )))
        energy[design.name]["Avg"] = float(np.exp(np.mean(
            np.log(list(energy[design.name].values()))
        )))
    return {"performance": perf, "energy": energy}


def _format_design_kernel_table(table, title):
    designs = list(table)
    kernel_names = list(next(iter(table.values())))
    lines = [title,
             f"{'Kernel':<16}" + "".join(f"{d:>8}" for d in designs)]
    for name in kernel_names:
        cells = "".join(f"{table[d][name]:8.2f}" for d in designs)
        lines.append(f"{name[:15]:<16}{cells}")
    return "\n".join(lines)


def format_figure11():
    data = figure11()
    return (
        _format_design_kernel_table(
            data["performance"],
            "Figure 11a: performance vs FlexiCore4 (higher = faster)",
        )
        + "\n\n"
        + _format_design_kernel_table(
            data["energy"],
            "Figure 11b: energy vs FlexiCore4 (lower = better)",
        )
    )


def figure12():
    """Normalized core area vs code size for the six DSE designs."""
    results = _dse_wide()
    anchor = results["Acc SC"]
    rows = {}
    for design in DSE_DESIGNS:
        metrics = results[design.name]
        rows[design.name] = {
            "area": metrics.nand2_area / anchor.nand2_area,
            "code_size": (
                metrics.total_code_bits() / anchor.total_code_bits()
            ),
        }
    return rows


def format_figure12():
    rows = figure12()
    lines = ["Figure 12: normalized area vs code size (Acc SC = 1.0)",
             f"{'Design':<10} {'area':>7} {'code':>7}"]
    for name, row in rows.items():
        lines.append(f"{name:<10} {row['area']:7.3f} {row['code_size']:7.3f}")
    return "\n".join(lines)


def figure13():
    """Relative energy of the DSE cores, wide bus and 8-bit bus."""
    wide = _dse_wide()
    bus = _dse_bus()
    anchor = wide["Acc SC"]
    rows = {}
    for design in DSE_DESIGNS:
        wide_metrics = wide[design.name]
        bus_metrics = bus[design.name]
        feasible = all(k.feasible for k in bus_metrics.kernels.values())
        rows[design.name] = {
            "wide": wide_metrics.mean_relative(anchor, "energy_j"),
            "bus": (bus_metrics.mean_relative(anchor, "energy_j")
                    if feasible else None),
        }
    return rows


def format_figure13():
    rows = figure13()
    lines = [
        "Figure 13: relative energy (Acc SC = 1.0); "
        "'n/a' = infeasible with an 8-bit program bus",
        f"{'Design':<10} {'wide bus':>9} {'8b bus':>9}",
    ]
    for name, row in rows.items():
        bus_text = "n/a" if row["bus"] is None else f"{row['bus']:.2f}"
        lines.append(f"{name:<10} {row['wide']:9.2f} {bus_text:>9}")
    return "\n".join(lines)
