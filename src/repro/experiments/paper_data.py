"""Published values from the paper, for paper-vs-measured reporting.

Everything here is a number printed in the paper (tables, figures, or
prose); EXPERIMENTS.md compares them against this reproduction's
measured outputs.
"""

#: Table 2 -- FlexiCore4 module breakdown (% of core area / static power).
TABLE2_AREA_PCT = {
    "alu": 9.0, "decoder": 1.0, "memory": 58.3, "pc": 23.4, "acc": 5.4,
}
TABLE2_POWER_PCT = {
    "alu": 7.9, "decoder": 0.8, "memory": 57.5, "pc": 20.9, "acc": 5.8,
}

#: Table 3 -- FlexiCore8 module breakdown.
TABLE3_AREA_PCT = {
    "alu": 15.5, "decoder": 2.9, "memory": 40.9, "pc": 17.9, "acc": 10.8,
}
TABLE3_POWER_PCT = {
    "alu": 14.9, "decoder": 2.7, "memory": 36.7, "pc": 17.4, "acc": 11.6,
}

#: Table 4 -- FlexiCore comparison.
TABLE4 = {
    "FlexiCore4": {
        "area_mm2": 5.56, "mean_power_mw": 4.9, "yield": 0.81,
        "pins": 25, "devices": 2104, "clock_khz": 12.5, "width": 4,
    },
    "FlexiCore8": {
        "area_mm2": 6.05, "mean_power_mw": 3.9, "yield": 0.57,
        "pins": 31, "devices": 2335, "clock_khz": 12.5, "width": 8,
    },
    "FlexiCore4+": {
        "area_mm2": 6.4, "mean_power_mw": 3.4, "yield": None,
        "pins": 24, "devices": 2420, "clock_khz": 12.5, "width": 4,
    },
}

#: Table 5 -- yield (%) full wafer / inclusion zone at 3 V and 4.5 V.
TABLE5 = {
    "FlexiCore4": {"full": {3.0: 44, 4.5: 63}, "incl": {3.0: 55, 4.5: 81}},
    "FlexiCore8": {"full": {3.0: 5, 4.5: 42}, "incl": {3.0: 6, 4.5: 57}},
}

#: Table 6 -- static instruction counts of the benchmark suite.
TABLE6 = {
    "Calculator": 352,
    "Four-tap FIR": 177,
    "Decision Tree": 210,
    "IntAvg": 132,
    "Thresholding": 102,
    "Parity Check": 105,
    "XorShift8": 186,
}

#: Table 7 -- comparison to other flexible ICs (literature constants).
TABLE7_OTHERS = [
    # name, devices, area mm2, pins, V, power mW, clock kHz, technology,
    # logic family, nand2 area, flexible, programmability, width
    ("PlasticARM", 56340, 59.2, 28, 3.0, 21.0, 29.0,
     "0.8um IGZO-TFT", "NMOS", 18334, True, "mask ROM", 32),
    ("Sharp Z80", 13000, 169.0, 40, 5.0, 15.0, 3000.0,
     "3um CG-Si TFT", "CMOS", None, False, "field", 8),
    ("UHF RFCPU", 133000, 93.45, None, 1.8, 0.81, 1120.0,
     "0.8um poly-Si TFT", "CMOS", None, True, "mask ROM", 8),
    ("8bit ALU", 3504, 225.6, 30, 6.5, None, 2.1,
     "5um organic+m-ox TFT", "CMOS", 876, True, "printed PROM", 8),
    ("MLIC", 3132, 5.6, 23, 4.5, 7.2, 104.0,
     "0.8um IGZO-TFT", "NMOS", 1024, True, "none", 5),
    ("Intel 4004", 2250, 12.0, 16, 15.0, 1000.0, 1000.0,
     "10um Si", "PMOS", None, False, "field", 4),
]
TABLE7_THIS_WORK = {
    "devices": 2104, "area_mm2": 5.6, "pins": 28, "voltage": 4.5,
    "power_mw": 4.05, "clock_khz": 12.5, "nand2": 801,
    "power_density_mw_mm2": 0.723, "yield": 0.81, "width": 4,
}

#: Section 5.2 / Figure 8 headline numbers.
FIG8_LATENCY_RANGE_MS = (4.28, 12.9)
FIG8_ENERGY_RANGE_UJ = (21.0, 61.4)
NJ_PER_INSTRUCTION = 360.0

#: Section 4.2 -- current-draw statistics of functional dies.
SECTION42 = {
    "FlexiCore4": {
        "mean_ma": {4.5: 1.1, 3.0: 0.73},
        "range_ma": {4.5: (0.8, 1.4), 3.0: (0.53, 0.89)},
        "rsd": 0.153,
    },
    "FlexiCore8": {
        "mean_ma": {4.5: 0.75, 3.0: 0.65},
        "range_ma": {4.5: (0.60, 1.4), 3.0: (0.36, 0.42)},
        "rsd": 0.215,
    },
}

#: Section 6 headline DSE outcomes.
DSE_HEADLINES = {
    "energy_ratio_range": (0.45, 0.56),       # new cores vs FlexiCore4
    "perf_gain_range": (1.53, 2.15),          # SC and pipelined cores
    "code_size_ratio_max": 0.30,              # revised ISA vs base
    "area_overhead_range": (1.09, 1.37),
    "second_port_memory_cost": {"flexicore4": 0.39, "flexicore8": 0.25},
}

#: Section 3.5 -- synthesis comparisons.
SECTION35 = {
    "fc4_area_mm2": 5.56,
    "fc8_area_mm2": 6.06,
    "fc4_static_mw": 1.8,
    "fc8_static_mw": 2.4,
    "msp430_area_mm2": 170.0,
    "msp430_static_mw": 41.2,
    "msp430_area_ratio": 30.0,
    "msp430_power_ratio": 23.0,
}
