"""Regeneration of the paper's tables (see DESIGN.md for the index).

Each ``tableN()`` returns structured data; each ``format_tableN()``
renders the same rows the paper prints.
"""

from functools import lru_cache

from repro.experiments import paper_data
from repro.fab.process import FC4_WAFER, FC8_WAFER
from repro.fab.yield_model import run_yield_study
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE
from repro.netlist.cores import build_flexicore4, build_flexicore8
from repro.netlist.dse_cores import build_extended_core
from repro.tech.power import OperatingPoint, static_power_w

def table1():
    """Table 1 application requirements, checked against measured kernel
    costs (Sections 3.2 and 5.2): sample-rate feasibility, precision fit
    and battery life under power gating."""
    from repro.experiments.figures import figure8
    from repro.tech.applications import assess_all
    from repro.tech.power import OperatingPoint, static_power_w

    rows = figure8()["rows"]
    kernel_costs = {
        "Calculator": rows["Calculator (mul)"]["instructions"],
        "Four-tap FIR": rows["Four-tap FIR"]["instructions"],
        "Decision Tree": rows["Decision Tree"]["instructions"],
        "IntAvg": rows["IntAvg"]["instructions"],
        "Thresholding": rows["Thresholding"]["instructions"],
        "Parity Check": rows["Parity Check"]["instructions"],
        "XorShift8": rows["XorShift8"]["instructions"],
    }
    power = static_power_w(
        _netlists()["flexicore4"].pullups, OperatingPoint(vdd=4.5)
    )
    return assess_all(kernel_costs, power)


def format_table1():
    reports = table1()
    lines = [
        "Table 1: application feasibility on FlexiCore4 "
        "(measured kernel costs, 5 mAh battery, power gating)",
        f"{'Application':<26} {'rate Hz':>8} {'ok?':>4} {'bits':>5} "
        f"{'4b':>3} {'8b':>3} {'battery':>10}",
    ]
    for report in reports:
        app = report.application
        battery = ("inf" if report.battery_days > 3650
                   else f"{report.battery_days:.0f} d")
        lines.append(
            f"{app.name:<26} {app.sample_rate_hz:>8.2f} "
            f"{'yes' if report.rate_ok else 'NO':>4} "
            f"{app.precision_bits:>5} "
            f"{'y' if report.precision_ok_4bit else '-':>3} "
            f"{'y' if report.precision_ok_8bit else '-':>3} "
            f"{battery:>10}"
        )
    return "\n".join(lines)


#: Module display order of Tables 2 and 3.
_MODULE_ORDER = ("alu", "decoder", "memory", "pc", "acc")
_MODULE_NAMES = {
    "alu": "ALU", "decoder": "Decoder", "memory": "Regfile/Memory",
    "pc": "PC", "acc": "Acc.",
}


@lru_cache(maxsize=None)
def _netlists():
    return {"flexicore4": build_flexicore4(),
            "flexicore8": build_flexicore8()}


def _module_table(netlist):
    """Rows of Table 2/3 for one core."""
    breakdown = netlist.module_breakdown()
    total_area = netlist.nand2_area
    total_pullups = netlist.pullups
    seq_total = sum(e["seq_area"] for e in breakdown.values())
    rows = {}
    for module in _MODULE_ORDER:
        entry = breakdown.get(module)
        if entry is None:
            continue
        rows[module] = {
            "noncomb_pct": 100.0 * entry["noncomb_fraction"],
            "comb_pct": 100.0 * (1.0 - entry["noncomb_fraction"]),
            "area_pct": 100.0 * entry["area"] / total_area,
            "power_pct": 100.0 * entry["pullups"] / total_pullups,
        }
    rows["total"] = {
        "noncomb_pct": 100.0 * seq_total / total_area,
        "comb_pct": 100.0 * (1.0 - seq_total / total_area),
        "area_pct": 100.0,
        "power_pct": 100.0,
    }
    return rows


def table2():
    """FlexiCore4 module area/power breakdown."""
    return _module_table(_netlists()["flexicore4"])


def table3():
    """FlexiCore8 module area/power breakdown."""
    return _module_table(_netlists()["flexicore8"])


def _format_module_table(rows, paper_area, paper_power, title):
    lines = [title, f"{'Module':<16} {'%NonComb':>9} {'%Comb':>7} "
                    f"{'%Area':>7} {'%Power':>7} {'paper%A':>8} {'paper%P':>8}"]
    for module in _MODULE_ORDER + ("total",):
        if module not in rows:
            continue
        row = rows[module]
        name = _MODULE_NAMES.get(module, "Total Core")
        pa = paper_area.get(module, float("nan"))
        pp = paper_power.get(module, float("nan"))
        lines.append(
            f"{name:<16} {row['noncomb_pct']:9.1f} {row['comb_pct']:7.1f} "
            f"{row['area_pct']:7.1f} {row['power_pct']:7.1f} "
            f"{pa:8.1f} {pp:8.1f}"
        )
    return "\n".join(lines)


def format_table2():
    return _format_module_table(
        table2(), paper_data.TABLE2_AREA_PCT, paper_data.TABLE2_POWER_PCT,
        "Table 2: FlexiCore4 module contribution (measured vs paper)",
    )


def format_table3():
    return _format_module_table(
        table3(), paper_data.TABLE3_AREA_PCT, paper_data.TABLE3_POWER_PCT,
        "Table 3: FlexiCore8 module contribution (measured vs paper)",
    )


# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _yield_summaries(wafers=6, seed=2022):
    """Engine-backed multi-wafer Monte Carlo: each core gets its own
    ``SeedSequence.spawn`` child, each wafer its own grandchild, so the
    summaries are identical at any worker count."""
    from repro.engine import spawn_seeds

    fc4_seed, fc8_seed = spawn_seeds(seed, 2)
    return {
        "FlexiCore4": run_yield_study(
            _netlists()["flexicore4"], FC4_WAFER, wafers=wafers,
            seed=fc4_seed, core="flexicore4",
        ),
        "FlexiCore8": run_yield_study(
            _netlists()["flexicore8"], FC8_WAFER, wafers=wafers,
            seed=fc8_seed, core="flexicore8",
        ),
    }


def table4():
    """Comparison of the FlexiCores (Table 4)."""
    nl4 = _netlists()["flexicore4"]
    nl8 = _netlists()["flexicore8"]
    nl4p = build_extended_core(frozenset({"shift", "flags"}),
                               name="flexicore4plus")
    summaries = _yield_summaries()
    # Measured mean power = mean functional current x supply.
    p4 = summaries["FlexiCore4"][4.5]["mean_current_ma"] * 4.5
    p8 = summaries["FlexiCore8"][4.5]["mean_current_ma"] * 4.5
    # FlexiCore4+ was made on the refined process (Table 4).
    p4p = static_power_w(
        nl4p.pullups, OperatingPoint(vdd=4.5, refined_pullups=True)
    ) * 1e3
    return {
        "FlexiCore4": {
            "area_mm2": nl4.area_mm2, "voltage": 4.5, "mean_power_mw": p4,
            "yield": summaries["FlexiCore4"][4.5]["inclusion"],
            "pins": 25, "devices": nl4.device_count,
            "clock_khz": 12.5, "width": 4, "flexible": True,
        },
        "FlexiCore8": {
            "area_mm2": nl8.area_mm2, "voltage": 4.5, "mean_power_mw": p8,
            "yield": summaries["FlexiCore8"][4.5]["inclusion"],
            "pins": 31, "devices": nl8.device_count,
            "clock_khz": 12.5, "width": 8, "flexible": True,
        },
        "FlexiCore4+": {
            "area_mm2": nl4p.area_mm2, "voltage": 4.5,
            "mean_power_mw": p4p, "yield": None,
            "pins": 24, "devices": nl4p.device_count,
            "clock_khz": 12.5, "width": 4, "flexible": True,
        },
    }


def format_table4():
    rows = table4()
    lines = ["Table 4: FlexiCore comparison (measured | paper)"]
    fields = ("area_mm2", "mean_power_mw", "yield", "devices", "pins",
              "width")
    header = f"{'':<16}" + "".join(f"{name:>22}" for name in rows)
    lines.append(header)
    for field in fields:
        cells = []
        for name, row in rows.items():
            paper_value = paper_data.TABLE4[name].get(
                field if field != "mean_power_mw" else "mean_power_mw"
            )
            value = row[field]
            if field == "yield":
                text = "n/a" if value is None else f"{100 * value:.0f}%"
                paper_text = ("n/a" if paper_value is None
                              else f"{100 * paper_value:.0f}%")
            elif isinstance(value, float):
                text, paper_text = f"{value:.2f}", f"{paper_value:.2f}"
            else:
                text, paper_text = str(value), str(paper_value)
            cells.append(f"{text + ' | ' + paper_text:>22}")
        lines.append(f"{field:<16}" + "".join(cells))
    return "\n".join(lines)


def table5(wafers=6, seed=2022):
    """Yield at 3 V / 4.5 V, full wafer vs inclusion zone (Table 5)."""
    summaries = _yield_summaries(wafers=wafers, seed=seed)
    result = {}
    for core, summary in summaries.items():
        result[core] = {
            "full": {v: 100.0 * summary[v]["full"] for v in (3.0, 4.5)},
            "incl": {v: 100.0 * summary[v]["inclusion"]
                     for v in (3.0, 4.5)},
        }
    return result


def format_table5(wafers=6, seed=2022):
    rows = table5(wafers=wafers, seed=seed)
    lines = [
        "Table 5: yield, measured (paper)",
        f"{'':<12} {'Full 3V':>12} {'Full 4.5V':>12} "
        f"{'Incl 3V':>12} {'Incl 4.5V':>12}",
    ]
    for core, row in rows.items():
        paper = paper_data.TABLE5[core]
        lines.append(
            f"{core:<12} "
            f"{row['full'][3.0]:4.0f}% ({paper['full'][3.0]}%)   "
            f"{row['full'][4.5]:4.0f}% ({paper['full'][4.5]}%)   "
            f"{row['incl'][3.0]:4.0f}% ({paper['incl'][3.0]}%)   "
            f"{row['incl'][4.5]:4.0f}% ({paper['incl'][4.5]}%)"
        )
    return "\n".join(lines)


def table6():
    """Benchmark static instruction counts on FlexiCore4 (Table 6)."""
    target = Target.named("flexicore4")
    rows = {}
    for kernel in SUITE:
        program = kernel.program(target)
        rows[kernel.name] = {
            "static_instructions": program.static_instructions,
            "app_type": kernel.app_type,
            "paper": paper_data.TABLE6[kernel.name],
        }
    return rows


def format_table6():
    rows = table6()
    lines = [
        "Table 6: benchmark kernels on FlexiCore4",
        f"{'Kernel':<16} {'Static':>7} {'Paper':>7}  Type",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<16} {row['static_instructions']:7d} "
            f"{row['paper']:7d}  {row['app_type']}"
        )
    return "\n".join(lines)


def table7():
    """Comparison to other flexible ICs (Table 7): our measured row plus
    the literature rows the paper quotes."""
    nl4 = _netlists()["flexicore4"]
    summaries = _yield_summaries()
    power_mw = summaries["FlexiCore4"][4.5]["mean_current_ma"] * 4.5
    this_work = {
        "name": "This Work (FlexiCore4)",
        "devices": nl4.device_count,
        "area_mm2": round(nl4.area_mm2, 1),
        "pins": 28,
        "voltage": 4.5,
        "power_mw": round(power_mw, 2),
        "clock_khz": 12.5,
        "nand2": round(nl4.nand2_area),
        "power_density_mw_mm2": round(power_mw / nl4.area_mm2, 3),
        "yield": summaries["FlexiCore4"][4.5]["inclusion"],
        "width": 4,
    }
    others = [
        {
            "name": name, "devices": devices, "area_mm2": area,
            "pins": pins, "voltage": volt, "power_mw": power,
            "clock_khz": clock, "technology": tech, "family": family,
            "nand2": nand2, "flexible": flexible, "prog": prog,
            "width": width,
        }
        for (name, devices, area, pins, volt, power, clock, tech,
             family, nand2, flexible, prog, width)
        in paper_data.TABLE7_OTHERS
    ]
    return {"this_work": this_work, "others": others,
            "paper_this_work": paper_data.TABLE7_THIS_WORK}


def format_table7():
    data = table7()
    lines = ["Table 7: comparison to other flexible ICs",
             f"{'Design':<24} {'Devices':>8} {'mm^2':>7} {'V':>5} "
             f"{'mW':>7} {'kHz':>7} {'width':>6}"]
    tw = data["this_work"]
    lines.append(
        f"{tw['name']:<24} {tw['devices']:>8} {tw['area_mm2']:>7} "
        f"{tw['voltage']:>5} {tw['power_mw']:>7} {tw['clock_khz']:>7} "
        f"{tw['width']:>6}"
    )
    for row in data["others"]:
        power = row["power_mw"] if row["power_mw"] is not None else "-"
        pins = row["pins"] if row["pins"] is not None else "-"
        lines.append(
            f"{row['name']:<24} {row['devices']:>8} {row['area_mm2']:>7} "
            f"{row['voltage']:>5} {power:>7} {row['clock_khz']:>7} "
            f"{row['width']:>6}"
        )
    return "\n".join(lines)
