"""EXPERIMENTS.md generation: every table and figure, paper vs measured."""

import io
from contextlib import redirect_stdout

from repro.experiments import figures, paper_data, tables


def _section(title, body):
    return f"## {title}\n\n```\n{body}\n```\n"


def headline_summary():
    """The paper's headline claims vs this reproduction's measurements."""
    from repro.dse.evaluate import evaluate_all

    lines = []
    t5 = tables.table5()
    lines.append(
        f"- FlexiCore4 inclusion-zone yield at 4.5 V: "
        f"measured {t5['FlexiCore4']['incl'][4.5]:.0f}% (paper 81%)"
    )
    lines.append(
        f"- FlexiCore8 inclusion-zone yield at 4.5 V: "
        f"measured {t5['FlexiCore8']['incl'][4.5]:.0f}% (paper 57%)"
    )
    f7 = figures.figure7()
    lines.append(
        f"- Current-draw RSD: FlexiCore4 "
        f"{100 * f7[('FlexiCore4', 4.5)]['rsd']:.1f}% (paper 15.3%), "
        f"FlexiCore8 {100 * f7[('FlexiCore8', 4.5)]['rsd']:.1f}% "
        f"(paper 21.5%)"
    )
    f8 = figures.figure8()
    times = [row["time_ms"] for row in f8["rows"].values()]
    energies = [row["energy_uj"] for row in f8["rows"].values()]
    lines.append(
        f"- Kernel latency range: measured {min(times):.2f}-"
        f"{max(times):.1f} ms (paper 4.28-12.9 ms); energy "
        f"{min(energies):.1f}-{max(energies):.1f} uJ (paper 21.0-61.4 uJ) "
        f"at {f8['nj_per_instruction']:.0f} nJ/instruction (paper 360)"
    )
    revised = figures.figure9()["revised"]
    lines.append(
        f"- Revised-ISA code size: measured "
        f"{100 * revised['code_ratio']:.0f}% of base "
        f"(paper: < 30%); area x{revised['area_ratio']:.2f} "
        f"(paper: x1.09-1.37)"
    )
    f13 = figures.figure13()
    best = min(
        (row["wide"] for row in f13.values()), default=float("nan")
    )
    lines.append(
        f"- Best DSE design energy vs Acc SC: x{best:.2f} "
        f"(paper: the 2-stage load-store machine at < 0.5x the base)"
    )
    return "\n".join(lines)


def format_section35():
    from repro.netlist.msp430 import section35_comparison

    comparison = section35_comparison()
    msp = comparison["msp430"]
    return (
        "Section 3.5: openMSP430 synthesized into the IGZO library\n"
        f"MSP430: {msp.area_mm2:.0f} mm^2, "
        f"{msp.static_power_mw:.1f} mW static "
        f"(paper: 170 mm^2, 41.2 mW)\n"
        f"area ratio vs FlexiCore4:  {comparison['area_ratio']:.1f}x "
        f"(paper 30x)\n"
        f"power ratio vs FlexiCore4: {comparison['power_ratio']:.1f}x "
        f"(paper 23x)"
    )


def format_usage_variation():
    """Section 4.2's closing observation, quantified: how the measured
    current spread translates into unequal battery lifetimes.

    Reuses the Figure 6/7 wafer from the engine-backed provider, so the
    analysis shares its cache entry instead of re-rolling a wafer."""
    from repro.fab.variation import summarize, usage_distribution

    probe = figures._probed_wafers()["FlexiCore4"][4.5]
    # One IntAvg+Thresholding inference (the Section 5.2 pipeline).
    dist = usage_distribution(probe, instructions_per_use=110)
    return (
        "Section 4.2: usages per die on a 3 V, 5 mAh battery "
        "(IIR+threshold inference, functional dies of one wafer)\n"
        + summarize(dist)
        + "\n'The high process variation can have significant impact on "
        "the number of usages of a flexible microprocessor given an "
        "energy budget.'"
    )


def format_pareto():
    from repro.dse.explorer import explore, format_frontier

    metrics = ("area", "energy")
    wide_frontier, wide_points = explore(metrics=metrics)
    bus_frontier, bus_points = explore(metrics=metrics, bus_bits=8)
    return (
        "Pareto frontier, wide program bus:\n"
        + format_frontier(wide_frontier, wide_points, metrics)
        + "\n\nPareto frontier, 8-bit program bus "
        "(LS SC/P infeasible):\n"
        + format_frontier(bus_frontier, bus_points, metrics)
    )


DEVIATIONS = """\
Known deviations from the paper (and why):

- Static instruction counts (Table 6) undershoot for Thresholding,
  Parity Check and the Calculator: our macro-assembly kernels are
  tighter than whatever the authors hand-wrote, and their exact sources
  were never published.  The cross-kernel ordering is preserved.
- Revised-ISA code size lands at ~75% of base rather than the paper's
  <30%: the paper published no encodings for the Section 6.1 extension
  instructions, and our chosen byte-serial encodings (two-byte branches
  and EXT-prefixed operations, DESIGN.md) keep the 8-bit instruction
  bus honest at the cost of code-size headroom.
- For the same reason the DSE energy wins (Figures 11/13) are ~0.57-
  0.73x rather than 0.45-0.56x; every ordering conclusion (pipelined
  load-store best with integrated program memory, pipelined accumulator
  best over the 8-bit bus, multicycle worst) matches the paper.
- Gate/device counts run ~25% below the fabricated chips (structural
  netlists lack the clock tree and synthesis overhead of a real flow);
  device counts are within 5% because the cell device weights are
  calibrated to the Figure 1 library.
- Section 3.5's power ratio tracks the area ratio (~30x vs the paper's
  23x) because static power in our model is strictly proportional to
  pull-up count."""


def generate(path=None):
    """Render the full EXPERIMENTS.md document; optionally write it."""
    parts = [
        "# EXPERIMENTS -- paper vs measured",
        "",
        "Regenerate any entry with its `benchmarks/` target or via "
        "`python -m repro.cli experiments <name>`.",
        "",
        "## Headlines",
        "",
        headline_summary(),
        "",
        "## Deviations",
        "",
        DEVIATIONS,
        "",
        _section("Table 1", tables.format_table1()),
        _section("Table 2", tables.format_table2()),
        _section("Table 3", tables.format_table3()),
        _section("Table 4", tables.format_table4()),
        _section("Table 5", tables.format_table5()),
        _section("Table 6", tables.format_table6()),
        _section("Table 7", tables.format_table7()),
        _section("Figure 6", figures.format_figure6()),
        _section("Figure 7", figures.format_figure7()),
        _section("Figure 8", figures.format_figure8()),
        _section("Figure 9", figures.format_figure9()),
        _section("Figure 10", figures.format_figure10()),
        _section("Figure 11", figures.format_figure11()),
        _section("Figure 12", figures.format_figure12()),
        _section("Figure 13", figures.format_figure13()),
        _section("Section 3.5 (openMSP430)", format_section35()),
        _section("Section 4.2 (usage variation)",
                 format_usage_variation()),
        _section("Design-space Pareto analysis", format_pareto()),
    ]
    document = "\n".join(parts)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(document)
    return document


ALL_EXPERIMENTS = {
    "table1": tables.format_table1,
    "table2": tables.format_table2,
    "table3": tables.format_table3,
    "table4": tables.format_table4,
    "table5": tables.format_table5,
    "table6": tables.format_table6,
    "table7": tables.format_table7,
    "figure6": figures.format_figure6,
    "figure7": figures.format_figure7,
    "figure8": figures.format_figure8,
    "figure9": figures.format_figure9,
    "figure10": figures.format_figure10,
    "figure11": figures.format_figure11,
    "figure12": figures.format_figure12,
    "figure13": figures.format_figure13,
    "section35": format_section35,
    "usage_variation": format_usage_variation,
    "pareto": format_pareto,
}
