"""Two-pass macro assembler for the FlexiCore ISAs.

Mirrors the paper's "custom assembler written in Python" (Section 5.1),
with one addition: programs larger than the 128-byte page a 7-bit PC can
address are split across pages with the ``.page`` directive, and page
changes at run time go through the off-chip MMU escape sequence
(``%farjump`` in the kernel macro libraries).

Usage::

    from repro.asm import Assembler
    from repro.isa import get_isa

    program = Assembler(get_isa("flexicore4")).assemble(source_text)
    image = program.image()          # bytes for the program memory
    program.static_instructions      # Table 6 metric
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.errors import LayoutError, ParseError, SymbolError
from repro.asm.macro import ExpansionContext, expand
from repro.asm.parser import (
    parse_integer,
    parse_mask,
    parse_register,
    parse_source,
)
from repro.isa.model import OperandKind

#: Bytes addressable by the 7-bit program counter.
PAGE_SIZE = 128
#: Pages supported by the 4-bit MMU page register (Section 5.1).
MAX_PAGES = 16


@dataclass(frozen=True)
class AssembledInstruction:
    """One instruction placed in the program image (the listing entry)."""

    page: int
    offset: int
    mnemonic: str
    operands: Tuple[int, ...]
    encoding: bytes
    location: object

    @property
    def address(self):
        return self.page * PAGE_SIZE + self.offset


@dataclass
class Program:
    """An assembled program: the image plus its symbol table and listing."""

    isa: object
    pages: Dict[int, bytes]
    labels: Dict[str, Tuple[int, int]]
    constants: Dict[str, int]
    listing: List[AssembledInstruction]
    source_name: str = "<source>"

    @property
    def static_instructions(self):
        """Static instruction count -- the Table 6 metric."""
        return len(self.listing)

    @property
    def size_bytes(self):
        """Bytes of program memory actually occupied by instructions."""
        return sum(len(entry.encoding) for entry in self.listing)

    @property
    def size_bits(self):
        """Code size in bits, the unit of the Figure 12 comparison."""
        return self.size_bytes * 8

    @property
    def page_numbers(self):
        return sorted(self.pages)

    def image(self):
        """Flat program-memory image covering all used pages.

        The image length is ``(max_page + 1) * PAGE_SIZE``; gaps are
        zero-filled (an all-zeros byte decodes as an ALU no-op-ish
        instruction on every FlexiCore ISA, matching uninitialized ROM).
        """
        if not self.pages:
            return bytes(PAGE_SIZE)
        top = max(self.pages)
        image = bytearray((top + 1) * PAGE_SIZE)
        for page, blob in self.pages.items():
            image[page * PAGE_SIZE:page * PAGE_SIZE + len(blob)] = blob
        return bytes(image)

    def label_address(self, name):
        """Flat program address of a label."""
        try:
            page, offset = self.labels[name]
        except KeyError:
            raise SymbolError(f"no such label: '{name}'") from None
        return page * PAGE_SIZE + offset

    def mnemonic_histogram(self):
        histogram = {}
        for entry in self.listing:
            histogram[entry.mnemonic] = histogram.get(entry.mnemonic, 0) + 1
        return histogram

    def text(self):
        """Render the listing as address-annotated assembly."""
        lines = []
        for entry in self.listing:
            raw = " ".join(f"{byte:02x}" for byte in entry.encoding)
            operand_text = ", ".join(str(op) for op in entry.operands)
            lines.append(
                f"{entry.page}:{entry.offset:3d}  {raw:<6}"
                f"  {entry.mnemonic} {operand_text}".rstrip()
            )
        return "\n".join(lines)


@dataclass
class _PendingInstruction:
    page: int
    offset: int
    statement: object
    spec: object


class Assembler:
    """Two-pass assembler targeting one ISA (optionally with macros)."""

    def __init__(self, isa, macro_library=None):
        self.isa = isa
        self.macro_library = macro_library

    def assemble(self, source, source_name="<source>"):
        statements = parse_source(source, source_name)
        ctx = ExpansionContext(self.isa)
        statements = expand(statements, self.macro_library, ctx)

        # -- pass 1: layout -------------------------------------------------
        labels: Dict[str, Tuple[int, int]] = {}
        constants: Dict[str, int] = {}
        pending: List[_PendingInstruction] = []
        page_cursors: Dict[int, int] = {}
        current_page = 0

        for statement in statements:
            if statement.label is not None:
                if statement.label in labels or statement.label in constants:
                    raise SymbolError(
                        f"duplicate symbol '{statement.label}'",
                        statement.location,
                    )
                labels[statement.label] = (
                    current_page, page_cursors.get(current_page, 0)
                )
            elif statement.is_directive:
                current_page = self._run_directive(
                    statement, constants, current_page
                )
            elif statement.is_instruction:
                spec = self._spec_for(statement)
                offset = page_cursors.get(current_page, 0)
                if offset + spec.size > PAGE_SIZE:
                    raise LayoutError(
                        f"page {current_page} overflows {PAGE_SIZE} bytes; "
                        f"split the program with .page and %farjump",
                        statement.location,
                    )
                pending.append(_PendingInstruction(
                    page=current_page, offset=offset,
                    statement=statement, spec=spec,
                ))
                page_cursors[current_page] = offset + spec.size

        # -- pass 2: resolve and encode --------------------------------------
        page_images = {
            page: bytearray(cursor) for page, cursor in page_cursors.items()
        }
        listing = []
        for item in pending:
            operands = self._resolve_operands(item, labels, constants)
            encoding = item.spec.encode(operands)
            page_images[item.page][
                item.offset:item.offset + len(encoding)
            ] = encoding
            listing.append(AssembledInstruction(
                page=item.page, offset=item.offset,
                mnemonic=item.spec.mnemonic, operands=operands,
                encoding=encoding, location=item.statement.location,
            ))

        return Program(
            isa=self.isa,
            pages={page: bytes(blob) for page, blob in page_images.items()},
            labels=labels,
            constants=constants,
            listing=listing,
            source_name=source_name,
        )

    # ------------------------------------------------------------------

    def _spec_for(self, statement):
        from repro.isa.errors import EncodeError

        try:
            return self.isa.spec(statement.mnemonic)
        except EncodeError as exc:
            raise ParseError(str(exc), statement.location) from exc

    def _run_directive(self, statement, constants, current_page):
        name = statement.directive
        args = statement.directive_args
        if name == ".equ":
            if len(args) == 1:
                # Accept both ".equ NAME, VALUE" and ".equ NAME VALUE".
                args = tuple(args[0].split())
            if len(args) != 2:
                raise ParseError(
                    ".equ expects NAME, VALUE", statement.location
                )
            symbol, value_text = args
            value = parse_integer(value_text)
            if value is None:
                value = constants.get(value_text)
            if value is None:
                raise ParseError(
                    f".equ value '{value_text}' is not a constant",
                    statement.location,
                )
            if symbol in constants:
                raise SymbolError(
                    f"duplicate symbol '{symbol}'", statement.location
                )
            constants[symbol] = value
            return current_page
        if name == ".page":
            if len(args) != 1:
                raise ParseError(".page expects a page number",
                                 statement.location)
            page = parse_integer(args[0])
            if page is None or not 0 <= page < MAX_PAGES:
                raise LayoutError(
                    f"page number must be 0..{MAX_PAGES - 1}, "
                    f"got {args[0]}",
                    statement.location,
                )
            return page
        raise ParseError(f"unknown directive '{name}'", statement.location)

    def _resolve_operands(self, item, labels, constants):
        statement = item.statement
        specs = item.spec.operands
        tokens = statement.operands
        if len(tokens) != len(specs):
            raise ParseError(
                f"{item.spec.mnemonic}: expected {len(specs)} operands, "
                f"got {len(tokens)}",
                statement.location,
            )
        resolved = []
        for operand_spec, token in zip(specs, tokens):
            resolved.append(self._resolve_one(
                item, operand_spec, token, labels, constants
            ))
        return tuple(resolved)

    def _resolve_one(self, item, operand_spec, token, labels, constants):
        statement = item.statement
        kind = operand_spec.kind
        if kind == OperandKind.TARGET:
            if token.startswith("@"):
                # '@label' waives the same-page check: the page-local
                # offset is taken as-is.  Used by %farjump, whose branch
                # executes in the MMU page-switch delay shadow and lands
                # in the *new* page.
                name = token[1:]
                if name not in labels:
                    raise SymbolError(
                        f"undefined far target '{name}'", statement.location
                    )
                return labels[name][1]
            value = parse_integer(token)
            if value is not None:
                return value
            if token in labels:
                page, offset = labels[token]
                if page != item.page:
                    raise LayoutError(
                        f"branch target '{token}' is in page {page} but the "
                        f"branch is in page {item.page}; 7-bit targets are "
                        f"page-local -- use %farjump",
                        statement.location,
                    )
                return offset
            raise SymbolError(
                f"undefined branch target '{token}'", statement.location
            )
        if kind == OperandKind.MASK:
            value = parse_mask(token)
            if value is None:
                value = parse_integer(token)
            if value is None:
                raise ParseError(
                    f"bad condition mask '{token}'", statement.location
                )
            return value
        if kind == OperandKind.REG:
            value = parse_register(token)
            if value is None:
                value = parse_integer(token)
            if value is None:
                value = constants.get(token)
            if value is None:
                raise SymbolError(
                    f"undefined register/constant '{token}'",
                    statement.location,
                )
            return value
        # IMM / MEMADDR / SHAMT: literal or constant.
        value = parse_integer(token)
        if value is None:
            value = constants.get(token)
        if value is None and token in labels:
            # Allow labels as immediates (e.g. loading a page number).
            page, offset = labels[token]
            value = offset
        if value is None:
            raise SymbolError(
                f"undefined symbol '{token}'", statement.location
            )
        return value


def assemble(source, isa, macro_library=None, source_name="<source>"):
    """Convenience one-shot wrapper around :class:`Assembler`."""
    return Assembler(isa, macro_library).assemble(source, source_name)
