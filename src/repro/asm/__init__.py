"""Macro assembler and disassembler for the FlexiCore ISAs."""

from repro.asm.assembler import (
    MAX_PAGES,
    PAGE_SIZE,
    AssembledInstruction,
    Assembler,
    Program,
    assemble,
)
from repro.asm.disassembler import disassemble, format_listing, roundtrip_ok
from repro.asm.errors import (
    AsmError,
    LayoutError,
    MacroError,
    ParseError,
    SymbolError,
)
from repro.asm.macro import ExpansionContext, MacroLibrary, expand

__all__ = [
    "AsmError",
    "AssembledInstruction",
    "Assembler",
    "ExpansionContext",
    "LayoutError",
    "MAX_PAGES",
    "MacroError",
    "MacroLibrary",
    "PAGE_SIZE",
    "ParseError",
    "Program",
    "SymbolError",
    "assemble",
    "disassemble",
    "expand",
    "format_listing",
    "roundtrip_ok",
]
