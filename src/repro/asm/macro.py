"""Macro system for FlexiCore assembly.

The paper observes that benchmark programs reuse "code macros and other
small subroutine-like code sequences" (Section 6.1) -- a logical right
shift is 36 instructions on the base ISA (Listing 1) and a single ``lsri``
with the barrel-shifter extension.  We make that observation executable:
kernels are written against macro names (``%rshift``, ``%jump``,
``%br_zero`` ...), and each ISA variant supplies a :class:`MacroLibrary`
that expands those names into whatever instruction sequence the available
hardware supports.  Assembling one kernel source under different macro
libraries is how the Figure 9/10 code-size sweeps are produced.

Macros are Python callables ``fn(ctx, *args) -> list[str]`` registered on
a library.  They may invoke other macros (expansion is recursive), and
they allocate collision-free labels through :meth:`ExpansionContext.label`.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.asm.errors import MacroError
from repro.asm.parser import Location, Statement, parse_line

#: Expansion depth limit; hitting it almost always means macro recursion.
MAX_DEPTH = 32


class ExpansionContext:
    """Per-assembly state handed to macro bodies."""

    def __init__(self, isa):
        self.isa = isa
        self._counter = 0
        self._pool = {}          # subroutine name -> label (pending emit)
        self._pool_bodies = []   # [(label, body_lines)] awaiting %emit_pool

    def label(self, stem):
        """Return a fresh label unique within this assembly run."""
        self._counter += 1
        return f"__{stem}_{self._counter}"

    def request_subroutine(self, name, body_fn):
        """Ask for a shared subroutine body, deduplicated by ``name``.

        ``body_fn() -> list[str]`` supplies the body (without label or
        ``ret``) on first request.  Returns the label to ``call``.  The
        body is laid down at the next ``%emit_pool`` in program order, so
        call sites share their page with the pool -- a requirement of the
        page-local 7-bit return-address register.
        """
        if name in self._pool:
            return self._pool[name]
        label = self.label(f"sub_{name}")
        self._pool[name] = label
        self._pool_bodies.append((label, body_fn()))
        return label

    def flush_pool(self):
        """Emit and clear pending subroutine bodies (for %emit_pool)."""
        lines = []
        for label, body in self._pool_bodies:
            lines.append(f"{label}:")
            lines.extend(body)
            lines.append("ret")
        self._pool.clear()
        self._pool_bodies.clear()
        return lines


class MacroLibrary:
    """A named collection of macros targeting one ISA variant."""

    def __init__(self, name, parent=None):
        self.name = name
        self.parent = parent
        self._macros: Dict[str, Callable] = {}

    def define(self, name, fn=None):
        """Register a macro; usable as a decorator.

        >>> lib = MacroLibrary("demo")
        >>> @lib.define("jump")
        ... def jump(ctx, target):
        ...     return [f"nandi 0", f"brn {target}"]
        """
        if fn is None:
            def decorator(func):
                self._macros[name] = func
                return func
            return decorator
        self._macros[name] = fn
        return fn

    def lookup(self, name):
        lib = self
        while lib is not None:
            if name in lib._macros:
                return lib._macros[name]
            lib = lib.parent
        return None

    def names(self):
        found = set(self._macros)
        if self.parent is not None:
            found |= set(self.parent.names())
        return sorted(found)

    def __contains__(self, name):
        return self.lookup(name) is not None


def expand(statements, library, ctx, depth=0):
    """Recursively expand macro invocations into plain statements."""
    if depth > MAX_DEPTH:
        raise MacroError("macro expansion too deep (recursive macro?)")
    result: List[Statement] = []
    for statement in statements:
        if not statement.is_macro:
            result.append(statement)
            continue
        fn = library.lookup(statement.macro) if library else None
        if fn is None:
            raise MacroError(
                f"unknown macro '%{statement.macro}'"
                + (f" in library '{library.name}'" if library else ""),
                statement.location,
            )
        try:
            lines = fn(ctx, *statement.macro_args)
        except MacroError:
            raise
        except TypeError as exc:
            raise MacroError(
                f"%{statement.macro}: {exc}", statement.location
            ) from exc
        expanded = []
        for index, line in enumerate(lines):
            expanded.extend(parse_line(
                line,
                Location(
                    f"{statement.location.source}"
                    f"[%{statement.macro}@{statement.location.line}]",
                    index + 1,
                ),
            ))
        result.extend(expand(expanded, library, ctx, depth + 1))
    return result
