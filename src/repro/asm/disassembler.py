"""Linear-sweep disassembler for FlexiCore program images."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.errors import DecodeError


@dataclass(frozen=True)
class DisassembledLine:
    address: int
    raw: bytes
    text: str
    mnemonic: Optional[str]  # None for undecodable bytes

    def __str__(self):
        raw_text = " ".join(f"{byte:02x}" for byte in self.raw)
        return f"{self.address:4d}  {raw_text:<6}  {self.text}"


def disassemble(image, isa, start=0, end=None):
    """Decode ``image[start:end]`` as a linear instruction stream.

    Undecodable bytes become ``.byte`` lines rather than raising, so padding
    and the data bytes of multi-byte instructions at odd boundaries do not
    abort the sweep.
    """
    if end is None:
        end = len(image)
    lines: List[DisassembledLine] = []
    offset = start
    while offset < end:
        try:
            decoded = isa.decode(image, offset)
        except DecodeError:
            raw = bytes(image[offset:offset + 1])
            lines.append(DisassembledLine(
                address=offset, raw=raw,
                text=f".byte {raw[0]:#04x}", mnemonic=None,
            ))
            offset += 1
            continue
        lines.append(DisassembledLine(
            address=offset, raw=decoded.raw,
            text=decoded.text(), mnemonic=decoded.mnemonic,
        ))
        offset += decoded.size
    return lines


def format_listing(lines):
    return "\n".join(str(line) for line in lines)


def roundtrip_ok(program):
    """True when decode(encode(x)) re-encodes to the same bytes.

    Used by tests as an encode/decode consistency check across every ISA.
    (Operands are compared via re-encoding because negative immediates
    decode as their unsigned field values.)
    """
    image = program.image()
    for entry in program.listing:
        decoded = program.isa.decode(image, entry.address)
        if decoded.mnemonic != entry.mnemonic:
            return False
        if decoded.spec.encode(decoded.operands) != entry.encoding:
            return False
    return True
