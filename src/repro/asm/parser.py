"""Line-oriented parser for FlexiCore assembly.

The grammar matches the paper's "highly readable assembly language"
(Section 5.1), one statement per line:

.. code-block:: none

    ; comment until end of line
    label:                      ; define a label (may share a line with code)
    mnemonic op1, op2           ; instruction
    %macro arg1, arg2           ; macro invocation
    .equ NAME value             ; define an assemble-time constant
    .page N                     ; continue assembly in 128-byte page N

Operands are integers (decimal, ``0x`` hex, ``0b`` binary, negative),
symbols (labels or ``.equ`` constants), registers ``r0``..``r7``, or nzp
condition masks written as a subset of the letters ``n``, ``z``, ``p``.
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asm.errors import ParseError

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)$")


@dataclass(frozen=True)
class Location:
    """Where a statement came from (macro expansions keep their call site)."""

    source: str
    line: int

    def __str__(self):
        return f"{self.source}:{self.line}"


@dataclass
class Statement:
    """One parsed statement: a label definition, directive, instruction or
    macro invocation (exactly one of the payload fields is set)."""

    location: Location
    label: Optional[str] = None
    mnemonic: Optional[str] = None
    operands: Tuple[str, ...] = ()
    directive: Optional[str] = None
    directive_args: Tuple[str, ...] = ()
    macro: Optional[str] = None
    macro_args: Tuple[str, ...] = ()

    @property
    def is_instruction(self):
        return self.mnemonic is not None

    @property
    def is_macro(self):
        return self.macro is not None

    @property
    def is_directive(self):
        return self.directive is not None


def strip_comment(line):
    """Remove a ``;`` or ``#`` comment (FlexiCore asm has no string literals,
    so no quoting rules are needed)."""
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def split_operands(text):
    if not text:
        return ()
    return tuple(part.strip() for part in text.split(","))


def parse_line(line, location):
    """Parse one source line into zero or more :class:`Statement` objects.

    A line may carry a label and an instruction (``loop: load 0``), which
    yields two statements so downstream passes stay simple.
    """
    text = strip_comment(line)
    if not text:
        return []
    statements = []
    # Leading label(s).
    while ":" in text:
        head, _, rest = text.partition(":")
        head = head.strip()
        if not _LABEL_RE.match(head):
            break
        statements.append(Statement(location=location, label=head))
        text = rest.strip()
        if not text:
            return statements
    if text.startswith("."):
        parts = text.split(None, 1)
        name = parts[0]
        args = split_operands(parts[1]) if len(parts) > 1 else ()
        statements.append(Statement(
            location=location, directive=name, directive_args=args,
        ))
        return statements
    if text.startswith("%"):
        parts = text[1:].split(None, 1)
        if not parts or not _LABEL_RE.match(parts[0]):
            raise ParseError(f"bad macro invocation: '{text}'", location)
        args = split_operands(parts[1]) if len(parts) > 1 else ()
        statements.append(Statement(
            location=location, macro=parts[0], macro_args=args,
        ))
        return statements
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if not _LABEL_RE.match(mnemonic):
        raise ParseError(f"bad mnemonic: '{parts[0]}'", location)
    operands = split_operands(parts[1]) if len(parts) > 1 else ()
    statements.append(Statement(
        location=location, mnemonic=mnemonic, operands=operands,
    ))
    return statements


def parse_source(text, source_name="<source>"):
    """Parse a whole program into a statement list."""
    statements = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        statements.extend(
            parse_line(line, Location(source_name, line_number))
        )
    return statements


def parse_integer(token):
    """Parse an integer literal; returns None if the token is not one."""
    if not _INT_RE.match(token):
        return None
    return int(token, 0)


def parse_mask(token):
    """Parse an nzp condition-mask token like ``nz`` into its 3-bit value.

    Returns None when the token is not a pure subset of {n, z, p}.
    """
    if not token or not set(token.lower()) <= set("nzp"):
        return None
    value = 0
    for char in token.lower():
        value |= {"n": 0b100, "z": 0b010, "p": 0b001}[char]
    return value


def parse_register(token):
    """Parse ``rN`` register syntax; returns None otherwise."""
    match = re.match(r"^[rR](\d+)$", token)
    if match is None:
        return None
    return int(match.group(1))
