"""Assembler diagnostics, carrying source locations through macro expansion."""


class AsmError(Exception):
    """Base class for assembler errors."""

    def __init__(self, message, location=None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class ParseError(AsmError):
    """A source line could not be parsed."""


class SymbolError(AsmError):
    """Undefined or redefined label / constant."""


class LayoutError(AsmError):
    """Program layout violation (page overflow, cross-page branch, ...)."""


class MacroError(AsmError):
    """A macro invocation failed to expand."""
