"""repro -- a reproduction of *FlexiCores: Low Footprint, High Yield,
Field Reprogrammable Flexible Microprocessors* (ISCA 2022).

The package is organized bottom-up:

- :mod:`repro.isa`      -- the FlexiCore instruction sets (Sections 3, 6).
- :mod:`repro.asm`      -- macro assembler and disassembler (Section 5.1).
- :mod:`repro.sim`      -- functional simulator, MMU, IO and timing models.
- :mod:`repro.kernels`  -- the Table 6 benchmark suite.
- :mod:`repro.tech`     -- 0.8 um IGZO device and standard-cell models.
- :mod:`repro.netlist`  -- gate-level cores, simulation, STA, area/power.
- :mod:`repro.fab`      -- wafer fabrication, yield and variation models.
- :mod:`repro.dse`      -- the Section 6 design-space exploration.
- :mod:`repro.experiments` -- one entry point per paper table and figure.
"""

__version__ = "1.0.0"

from repro.isa import get_isa  # noqa: F401  (primary entry point)
