"""repro.conformance: randomized differential testing of redundant paths.

Everywhere the codebase keeps two implementations of one contract --
the reference step interpreter vs the predecoded fast path, the
interpreted vs the compiled gate backend, cached vs freshly computed
engine results, the vectorized vs a scalar wafer Monte Carlo, and the
assembler vs the disassembler -- this package generates random but
valid stimuli, drives both sides, and demands bit-identical answers.

Failures are automatically delta-debugged down to minimal reproducers
and persisted as a replayable corpus under
``.repro-state/conformance/``; see ``docs/CONFORMANCE.md`` and the
``repro conform`` CLI.
"""

from repro.conformance.case import (
    ConformanceCase,
    Divergence,
    compare_observations,
    first_difference,
)
from repro.conformance.corpus import (
    corpus_dir,
    entry_case,
    list_entries,
    load_entry,
    make_entry,
    save_entry,
)
from repro.conformance.oracles import (
    ALL_TARGETS,
    ORACLES,
    Oracle,
    get_oracle,
    register_oracle,
)
from repro.conformance.runner import (
    evaluate_case,
    plan_campaign,
    replay_entry,
    run_campaign,
    run_case,
    run_conformance,
)
from repro.conformance.shrink import (
    DEFAULT_SHRINK_BUDGET,
    instruction_count,
    payload_size,
    shrink_case,
)

__all__ = [
    "ALL_TARGETS",
    "ConformanceCase",
    "DEFAULT_SHRINK_BUDGET",
    "Divergence",
    "ORACLES",
    "Oracle",
    "compare_observations",
    "corpus_dir",
    "entry_case",
    "evaluate_case",
    "first_difference",
    "get_oracle",
    "instruction_count",
    "list_entries",
    "load_entry",
    "make_entry",
    "payload_size",
    "plan_campaign",
    "register_oracle",
    "replay_entry",
    "run_campaign",
    "run_case",
    "run_conformance",
    "save_entry",
    "shrink_case",
]
