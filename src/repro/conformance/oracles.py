"""The six differential oracles.

Each oracle drives one pair (or triple) of redundant execution paths
with the same generated case and compares every observable output
exactly:

- ``dispatch``  -- reference step loop vs predecoded fast dispatch
  (halt reason, final architectural state, full execution statistics,
  and the cycle-stamped output trace);
- ``backend``   -- interpreted vs compiled gate-level backend
  (per-lane mismatch counts, first-mismatch text, cycle counts, and
  toggle statistics, healthy lane plus injected stuck-at faults);
- ``vector``    -- compiled vs vector (wafer-scale NumPy) gate-level
  backend, same observables as ``backend`` but with campaigns sized
  to cross the vector backend's 64-lane word boundary;
- ``cache``     -- a job result computed directly, computed through the
  engine into a fresh cache, and read back from that cache;
- ``fab``       -- the field-batched wafer Monte Carlo vs the scalar
  per-die mirror in :mod:`repro.fab.reference`, sharing one seed
  stream (per-die process draws and every probe record);
- ``asm``       -- assemble -> disassemble -> reassemble round trips
  (image equality plus the encode/decode consistency check).

An oracle is a tiny frozen descriptor: a generator mapping
``(target, rng)`` to a JSON payload, an executor mapping a case to a
:class:`~repro.conformance.case.Divergence` (or ``None``), a relative
cost weight for budget planning, and its default targets.  To add an
oracle for a new fast path, write those two functions and register the
descriptor -- see docs/CONFORMANCE.md.
"""

import dataclasses
from dataclasses import replace
from functools import lru_cache
from typing import Callable, Tuple

from repro.conformance.case import compare_observations
from repro.conformance.generators import (
    materialize_source,
    random_fault_sites,
    random_flat_payload,
    random_paged_payload,
    random_process,
    random_voltages,
)

#: Every fabricated/DSE target the acceptance criteria name.
ALL_TARGETS = ("flexicore4", "flexicore8", "flexicore4plus")


@dataclasses.dataclass(frozen=True)
class Oracle:
    """One registered differential oracle."""

    name: str
    description: str
    generate: Callable  # (target, rng) -> payload dict
    execute: Callable   # (case) -> Divergence | None
    cost: int = 1       # relative per-case cost for budget planning
    targets: Tuple[str, ...] = ALL_TARGETS


ORACLES = {}


def register_oracle(oracle):
    ORACLES[oracle.name] = oracle
    return oracle


def get_oracle(name):
    try:
        return ORACLES[name]
    except KeyError:
        raise ValueError(
            f"unknown oracle {name!r}; choose from {sorted(ORACLES)}"
        ) from None


# ----------------------------------------------------------------------
# Shared target helpers.
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _gate_core_for(target):
    """The fabricated netlist a target's gate-level oracle runs on.

    Only the two fabricated cores execute programs at the gate level
    (the DSE variants are sized, not booted), so the FlexiCore4+ target
    exercises the backends on the FlexiCore4 die -- the differential
    question is *backend equivalence on identical stimulus*, which any
    netlist answers.
    """
    from repro.netlist.cores import build_core

    return build_core("flexicore8" if "8" in target else "flexicore4")


def _assemble(target, payload):
    from repro.kernels.kernel import Target

    return Target.named(target).assemble(
        materialize_source(payload), source_name=f"conform:{target}"
    )


# ----------------------------------------------------------------------
# Oracle 1: step dispatch vs predecoded dispatch.
# ----------------------------------------------------------------------

def generate_dispatch(target, rng):
    from repro.isa import get_isa

    isa = get_isa(target)
    if rng.random() < 0.3:
        payload = random_paged_payload(isa, rng)
        payload["max_cycles"] = int(rng.integers(256, 4096))
    else:
        payload = random_flat_payload(isa, rng)
        payload["max_cycles"] = int(rng.integers(64, 2048))
    payload["on_exhausted"] = ["raise", "hold", "zero"][
        int(rng.integers(0, 3))
    ]
    return payload


def execute_dispatch(case):
    from repro.sim.peripherals import InputStream, OutputSink
    from repro.sim.simulator import SimulationError, Simulator

    program = _assemble(case.target, case.payload)
    dispatches = case.payload.get("dispatches") or [
        "reference", "predecode",
    ]
    observations = {}
    for dispatch in dispatches:
        sink = OutputSink()
        simulator = Simulator(
            program.isa, program,
            input_fn=InputStream(
                case.payload.get("inputs", []),
                on_exhausted=case.payload.get("on_exhausted", "zero"),
            ),
            output=sink,
        )
        observed = {}
        try:
            result = simulator.run(
                max_cycles=case.payload.get("max_cycles", 1024),
                dispatch=dispatch,
            )
            observed["reason"] = result.reason
            observed["halted"] = result.halted
            observed["stats"] = dataclasses.asdict(result.stats)
        except SimulationError as exc:
            observed["error"] = str(exc)
            observed["stats"] = dataclasses.asdict(simulator.stats)
        observed["state"] = dict(simulator.state.snapshot(),
                                 mem=list(simulator.state.mem))
        observed["outputs"] = list(sink.values)
        observed["output_cycles"] = list(sink.cycles)
        observations[dispatch] = observed
    return compare_observations(case, observations)


register_oracle(Oracle(
    name="dispatch",
    description="reference step loop == predecoded fast dispatch",
    generate=generate_dispatch,
    execute=execute_dispatch,
    cost=1,
))


# ----------------------------------------------------------------------
# Oracle 2: interpreted vs compiled gate-level backend.
# ----------------------------------------------------------------------

def generate_backend(target, rng):
    from repro.isa import get_isa

    isa = get_isa(target)
    payload = random_flat_payload(isa, rng, max_instructions=24)
    payload["max_instructions"] = int(rng.integers(12, 40))
    netlist = _gate_core_for(target)
    payload["faults"] = random_fault_sites(
        netlist, rng, int(rng.integers(0, 4))
    )
    return payload


def _execute_backend_pair(case, backends):
    from repro.isa import get_isa
    from repro.netlist.verify import run_cross_check_batch

    netlist = _gate_core_for(case.target)
    isa = get_isa(case.target)
    image = _assemble(case.target, case.payload).image()
    faults = [None] + [
        (gate, stuck) for gate, stuck in case.payload.get("faults", [])
    ]
    observations = {}
    for backend in backends:
        lanes = run_cross_check_batch(
            netlist, isa, image,
            inputs=case.payload.get("inputs", []),
            max_instructions=case.payload.get("max_instructions", 32),
            faults=faults, backend=backend,
        )
        observations[backend] = [
            dataclasses.asdict(lane) for lane in lanes
        ]
    return compare_observations(case, observations)


def execute_backend(case):
    return _execute_backend_pair(case, ("interpreted", "compiled"))


register_oracle(Oracle(
    name="backend",
    description="interpreted == compiled gate-level simulation",
    generate=generate_backend,
    execute=execute_backend,
    cost=8,
))


# ----------------------------------------------------------------------
# Oracle 6: compiled vs vector (wafer-scale) gate-level backend.
# ----------------------------------------------------------------------

def generate_vector(target, rng):
    from repro.isa import get_isa

    isa = get_isa(target)
    payload = random_flat_payload(isa, rng, max_instructions=24)
    payload["max_instructions"] = int(rng.integers(12, 40))
    netlist = _gate_core_for(target)
    # Mostly small campaigns, but often enough faults that the vector
    # backend's lanes spill past bit 63 into the second uint64 word --
    # the packing arithmetic the compiled backend never exercises.
    if rng.random() < 0.25:
        count = int(rng.integers(60, 97))
    else:
        count = int(rng.integers(0, 8))
    payload["faults"] = random_fault_sites(netlist, rng, count)
    return payload


def execute_vector(case):
    return _execute_backend_pair(case, ("compiled", "vector"))


register_oracle(Oracle(
    name="vector",
    description="compiled == vector wafer-scale gate-level simulation",
    generate=generate_vector,
    execute=execute_vector,
    cost=10,
))


# ----------------------------------------------------------------------
# Oracle 3: cached vs fresh engine job results.
# ----------------------------------------------------------------------

def generate_cache(target, rng):
    process = random_process(target, rng)
    return {
        "core": target,
        "entropy": int(rng.integers(0, 2 ** 63)),
        "voltages": random_voltages(rng),
        "process_overrides": {
            name: getattr(process, name)
            for name in ("defect_density_per_mm2", "edge_defect_multiplier",
                         "speed_sigma", "edge_speed_penalty",
                         "current_sigma", "radial_current_gradient")
        },
    }


def _case_process(payload):
    from repro.fab.process import process_for

    return replace(process_for(payload["core"]),
                   **payload.get("process_overrides", {}))


def execute_cache(case):
    import tempfile

    from repro.engine import ChildSeed, Engine, Job, ResultCache
    from repro.fab.yield_model import wafer_yield_job

    payload = case.payload
    params = {
        "core": payload["core"],
        "process": _case_process(payload),
        "voltages": tuple(payload["voltages"]),
    }
    seed = ChildSeed(entropy=payload["entropy"])
    fresh = wafer_yield_job(params, seed)
    with tempfile.TemporaryDirectory(prefix="repro-conform-") as root:
        cache = ResultCache(root)
        engine = Engine(jobs=1, cache=cache)
        job = Job(wafer_yield_job, params, seed=seed,
                  label=f"conform:{payload['core']}")
        computed = engine.run([job], stage="conform-cache")[0]
        cached = engine.run([job], stage="conform-cache")[0]
        observations = {
            "fresh": fresh,
            "engine_computed": computed,
            "engine_cached": cached,
        }
        divergence = compare_observations(case, observations)
        if divergence is None and cache.hits < 1:
            divergence = compare_observations(case, {
                "expected_cache_hits": {"hits": 1},
                "observed_cache_hits": {"hits": cache.hits},
            })
    return divergence


register_oracle(Oracle(
    name="cache",
    description="direct call == engine compute == engine cache hit",
    generate=generate_cache,
    execute=execute_cache,
    cost=4,
))


# ----------------------------------------------------------------------
# Oracle 4: vectorized vs scalar wafer Monte Carlo.
# ----------------------------------------------------------------------

def generate_fab(target, rng):
    return generate_cache(target, rng)  # same parameter space


def _die_view(die):
    return {
        "defects": die.defects,
        "speed_factor": die.speed_factor,
        "current_factor": die.current_factor,
    }


def _record_view(record):
    return {
        "functional": record.functional,
        "errors": record.errors,
        "current_ma": record.current_ma,
        "failure_mode": record.failure_mode,
    }


def execute_fab(case):
    import numpy as np

    from repro.fab import reference
    from repro.fab.yield_model import _core_static, fabricate_wafer

    payload = case.payload
    netlist, report = _core_static(payload["core"])
    process = _case_process(payload)

    def run(fabricate, probe):
        rng = np.random.default_rng(
            np.random.SeedSequence(payload["entropy"])
        )
        fabricated = fabricate(
            netlist, process, rng, timing_report=report
        )
        observed = {"dies": [_die_view(die) for die in fabricated.dies]}
        for voltage in payload["voltages"]:
            result = probe(fabricated, voltage, rng)
            observed[f"probe@{voltage:g}"] = [
                _record_view(record) for record in result.records
            ]
        return observed

    observations = {
        "vectorized": run(
            fabricate_wafer,
            lambda fabricated, voltage, rng:
                fabricated.probe(voltage, rng),
        ),
        "scalar": run(
            reference.fabricate_wafer_scalar, reference.probe_scalar
        ),
    }
    return compare_observations(case, observations)


register_oracle(Oracle(
    name="fab",
    description="field-batched wafer Monte Carlo == scalar mirror",
    generate=generate_fab,
    execute=execute_fab,
    cost=2,
))


# ----------------------------------------------------------------------
# Oracle 5: assemble -> disassemble -> reassemble round trips.
# ----------------------------------------------------------------------

def generate_asm(target, rng):
    from repro.isa import get_isa

    isa = get_isa(target)
    if rng.random() < 0.3:
        return random_paged_payload(isa, rng)
    return random_flat_payload(isa, rng)


def _resource_pages(image, isa):
    """Rebuild assembly source from a disassembled image, page by page.

    Returns ``(source_text, problems)``: trailing all-zero ``.byte``
    padding is dropped (``Program.image`` zero-fills it back), while
    any other undecodable byte is reported -- an image produced by the
    assembler must disassemble cleanly.
    """
    from repro.asm.assembler import PAGE_SIZE
    from repro.asm.disassembler import disassemble

    problems = []
    source_lines = []
    for page in range(max(1, len(image) // PAGE_SIZE)):
        blob = image[page * PAGE_SIZE:(page + 1) * PAGE_SIZE]
        lines = disassemble(blob, isa)
        while lines and lines[-1].mnemonic is None \
                and lines[-1].raw == b"\x00":
            lines.pop()
        source_lines.append(f".page {page}")
        for line in lines:
            if line.mnemonic is None:
                problems.append(
                    f"page {page} offset {line.address}: "
                    f"undecodable {line.text}"
                )
            else:
                source_lines.append("    " + line.text)
    return "\n".join(source_lines) + "\n", problems


def execute_asm(case):
    from repro.asm.assembler import Assembler
    from repro.asm.disassembler import roundtrip_ok
    from repro.asm.errors import AsmError
    from repro.isa import get_isa

    isa = get_isa(case.target)
    program = _assemble(case.target, case.payload)
    image = program.image()
    observed = {"first": {"image": image.hex(),
                          "roundtrip_ok": roundtrip_ok(program)}}

    source, problems = _resource_pages(image, isa)
    if problems:
        observed["reassembled"] = {"image": f"<{'; '.join(problems)}>",
                                   "roundtrip_ok": False}
        return compare_observations(case, observed)
    try:
        reassembled = Assembler(isa).assemble(
            source, source_name="conform:reassembled"
        )
    except AsmError as exc:
        observed["reassembled"] = {
            "image": f"<reassembly failed: {exc}>",
            "roundtrip_ok": False,
        }
        return compare_observations(case, observed)
    second = reassembled.image()
    width = max(len(image), len(second))
    observed["reassembled"] = {
        "image": (second + bytes(width - len(second))).hex(),
        "roundtrip_ok": roundtrip_ok(reassembled),
    }
    observed["first"]["image"] = (
        image + bytes(width - len(image))
    ).hex()
    return compare_observations(case, observed)


register_oracle(Oracle(
    name="asm",
    description="assemble == disassemble == reassemble",
    generate=generate_asm,
    execute=execute_asm,
    cost=1,
))
