"""Campaign planning and execution for the conformance harness.

A campaign splits a case *budget* over the registered oracles (scaled
by each oracle's relative cost, so one slow gate-level case doesn't
starve a thousand cheap dispatch cases) and their targets, then runs
one engine job per ``(oracle, target)`` slice -- the
``conformance.campaign`` job function, which fans across ``--jobs``
workers exactly like the wafer Monte Carlo does.  Each case draws from
its own ``SeedSequence`` spawn child, so campaigns are bit-reproducible
at any worker count.

Failing cases are shrunk in the worker (delta debugging re-executes the
oracle, so it belongs next to the case) and returned as corpus
documents; the coordinating process persists them under
``.repro-state/conformance/`` and the CLI prints replay instructions.
"""

import time
import traceback

from repro import obs
from repro.conformance import corpus as corpus_store
from repro.conformance.case import ConformanceCase, Divergence
from repro.conformance.oracles import ORACLES, get_oracle
from repro.conformance.shrink import (
    DEFAULT_SHRINK_BUDGET,
    payload_size,
    shrink_case,
)
from repro.engine import Job, engine_or_default, job_function, spawn_seeds


def evaluate_case(oracle, case):
    """Execute one case, mapping executor crashes to divergences.

    A crash in either redundant path is a finding, not a harness
    abort: it is reported as a divergence whose field is
    ``exception`` so it shrinks and replays like any other failure.
    """
    try:
        return oracle.execute(case)
    except Exception:
        return Divergence(
            oracle=case.oracle, target=case.target,
            field="exception",
            detail=traceback.format_exc(limit=4).strip(),
        )


def run_case(oracle, target, child_seed):
    """Generate and execute one case from its own seed child."""
    rng = child_seed.rng()
    payload = oracle.generate(target, rng)
    case = ConformanceCase(
        oracle=oracle.name, target=target,
        seed=child_seed.token(), payload=payload,
    )
    return case, evaluate_case(oracle, case)


def plan_campaign(budget, oracle_names=None, targets=None):
    """``[(oracle_name, target, cases)]`` slices for one campaign.

    ``budget`` buys ``budget // cost`` cases per oracle (at least one),
    split evenly over that oracle's targets.
    """
    names = list(oracle_names) if oracle_names else list(ORACLES)
    slices = []
    for name in names:
        oracle = get_oracle(name)
        slice_targets = [
            target for target in (targets or oracle.targets)
            if target in oracle.targets
        ] or list(oracle.targets)
        cases = max(1, int(budget) // oracle.cost)
        per_target, extra = divmod(cases, len(slice_targets))
        for index, target in enumerate(slice_targets):
            count = per_target + (1 if index < extra else 0)
            if count:
                slices.append((name, target, count))
    return slices


@job_function("conformance.campaign", version="1")
def run_conformance(params, seed):
    """Engine job: one ``(oracle, target)`` slice of a campaign.

    Returns ``{"cases": n, "failures": [corpus documents]}``; failures
    are already shrunk.  Never caches meaningfully (each campaign seeds
    differently), but runs under the engine for worker fan-out, retry,
    and obs folding.
    """
    oracle = get_oracle(params["oracle"])
    target = params["target"]
    count = int(params["cases"])
    shrink_budget = int(params.get("shrink_budget",
                                   DEFAULT_SHRINK_BUDGET))
    failures = []
    with obs.span("conform.slice", oracle=oracle.name, target=target,
                  cases=count):
        for child in seed.spawn(count):
            case, divergence = run_case(oracle, target, child)
            if obs.active():
                obs.registry().counter(
                    "conform_cases_total",
                    "Conformance cases executed",
                ).inc(oracle=oracle.name, target=target)
            if divergence is None:
                continue
            if obs.active():
                obs.registry().counter(
                    "conform_divergences_total",
                    "Conformance divergences found (pre-shrink)",
                ).inc(oracle=oracle.name, target=target)
            with obs.span("conform.shrink", oracle=oracle.name,
                          size=payload_size(case.payload)):
                shrunk_payload, report = shrink_case(
                    oracle, case, evaluate_case, budget=shrink_budget
                )
            shrunk = case.with_payload(shrunk_payload)
            final = evaluate_case(oracle, shrunk)
            if final is None:  # pragma: no cover - flaky divergence
                shrunk, final = case, divergence
                report = dict(report, flaky=True)
            if obs.active():
                obs.registry().counter(
                    "conform_shrink_executions_total",
                    "Oracle re-executions spent shrinking",
                ).inc(report.get("executions", 0), oracle=oracle.name)
            failures.append(corpus_store.make_entry(
                shrunk, final, shrink_report=report
            ))
    return {"oracle": oracle.name, "target": target,
            "cases": count, "failures": failures}


def run_campaign(seed, budget, oracle_names=None, targets=None,
                 engine=None, shrink_budget=DEFAULT_SHRINK_BUDGET,
                 persist=True, state_root=None):
    """Run a full conformance campaign; returns the summary dict.

    ``{"cases", "slices": [per-slice dicts], "divergences": [corpus
    entries (persisted when ``persist``)], "elapsed_s"}``.
    """
    slices = plan_campaign(budget, oracle_names, targets)
    eng = engine_or_default(engine)
    started = time.monotonic()
    with obs.span("conform.campaign", budget=budget,
                  slices=len(slices)):
        nodes = [
            eng.submit(Job(
                run_conformance,
                {"oracle": name, "target": target, "cases": count,
                 "shrink_budget": shrink_budget},
                seed=child,
                label=f"conform:{name}:{target}",
            ))
            for (name, target, count), child
            in zip(slices, spawn_seeds(seed, len(slices)))
        ]
        eng.run_graph(stage="conformance")
        results = [node.result for node in nodes]
    divergences = []
    slice_summaries = []
    for result in results:
        slice_summaries.append({
            "oracle": result["oracle"], "target": result["target"],
            "cases": result["cases"],
            "divergences": len(result["failures"]),
        })
        for entry in result["failures"]:
            if persist:
                entry["_path"] = str(
                    corpus_store.save_entry(entry, root=state_root)
                )
            divergences.append(entry)
    return {
        "cases": sum(item["cases"] for item in slice_summaries),
        "slices": slice_summaries,
        "divergences": divergences,
        "elapsed_s": time.monotonic() - started,
    }


def replay_entry(entry):
    """Re-execute a corpus entry's case; returns a Divergence or None."""
    case = corpus_store.entry_case(entry)
    oracle = get_oracle(case.oracle)
    with obs.span("conform.replay", oracle=case.oracle,
                  target=case.target):
        return evaluate_case(oracle, case)
