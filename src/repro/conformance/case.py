"""Conformance cases and divergences (the harness's data model).

A :class:`ConformanceCase` is one randomly generated input to one
oracle: the oracle name, the target (ISA/core) it runs against, the
seed token that generated it, and a JSON-safe ``payload`` the oracle
knows how to execute.  Keeping the payload plain JSON -- instruction
lists, integer operands, fault-site pairs -- is what makes cases
shrinkable (delta debugging edits lists, not objects) and replayable
(the corpus file *is* the case).

A :class:`Divergence` records the first observable disagreement between
two redundant execution paths: which comparison field differed and a
human-readable detail of both sides.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class ConformanceCase:
    """One generated differential-test case."""

    oracle: str
    target: str
    seed: Any = None  # ChildSeed token ([entropy, [spawn...]]) or None
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self):
        return {
            "oracle": self.oracle,
            "target": self.target,
            "seed": self.seed,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, document):
        return cls(
            oracle=document["oracle"],
            target=document["target"],
            seed=document.get("seed"),
            payload=document.get("payload", {}),
        )

    def digest(self):
        """Stable short identity of (oracle, target, payload).

        The seed is deliberately excluded: two seeds that generate (or
        shrink to) the same payload are the same case.
        """
        blob = json.dumps(
            {"oracle": self.oracle, "target": self.target,
             "payload": self.payload},
            sort_keys=True, separators=(",", ":"), default=str,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    def with_payload(self, payload):
        """A copy of this case carrying a different payload (shrinking)."""
        return ConformanceCase(
            oracle=self.oracle, target=self.target,
            seed=self.seed, payload=payload,
        )


@dataclass
class Divergence:
    """The first disagreement an oracle observed between its two paths."""

    oracle: str
    target: str
    field: str  # dotted path of the first differing comparison field
    detail: str  # both sides, rendered for a human

    def to_dict(self):
        return {
            "oracle": self.oracle,
            "target": self.target,
            "field": self.field,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, document):
        return cls(
            oracle=document["oracle"],
            target=document["target"],
            field=document["field"],
            detail=document["detail"],
        )

    def __str__(self):
        return (
            f"{self.oracle}[{self.target}] diverged at "
            f"{self.field}: {self.detail}"
        )


def _render(value, limit=160):
    text = repr(value)
    if len(text) > limit:
        text = text[:limit] + "..."
    return text


def first_difference(lhs, rhs, path=""):
    """Depth-first search for the first differing leaf of two plain
    (JSON-ish) structures.  Returns ``(dotted_path, lhs_leaf, rhs_leaf)``
    or ``None`` when the structures are identical.

    Comparison is exact: floats must match bit-for-bit, which is the
    whole point of a differential harness over redundant execution
    paths (the fast path must not be "close", it must be *identical*).
    """
    if type(lhs) is not type(rhs) and not (
        isinstance(lhs, (int, float)) and isinstance(rhs, (int, float))
        and not isinstance(lhs, bool) and not isinstance(rhs, bool)
    ):
        return path or "<root>", lhs, rhs
    if isinstance(lhs, dict):
        for key in sorted(set(lhs) | set(rhs), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in lhs or key not in rhs:
                return sub, lhs.get(key, "<absent>"), rhs.get(key, "<absent>")
            found = first_difference(lhs[key], rhs[key], sub)
            if found:
                return found
        return None
    if isinstance(lhs, (list, tuple)):
        for index in range(max(len(lhs), len(rhs))):
            sub = f"{path}[{index}]"
            if index >= len(lhs) or index >= len(rhs):
                return (
                    sub,
                    lhs[index] if index < len(lhs) else "<absent>",
                    rhs[index] if index < len(rhs) else "<absent>",
                )
            found = first_difference(lhs[index], rhs[index], sub)
            if found:
                return found
        return None
    if lhs != rhs:
        return path or "<root>", lhs, rhs
    return None


def compare_observations(case, observations):
    """Compare named observations pairwise against the first one.

    ``observations`` is ``{path_name: plain_structure}``; the first
    entry is the reference.  Returns a :class:`Divergence` naming the
    first differing field, or ``None`` when every path agrees.
    """
    names = list(observations)
    reference_name = names[0]
    reference = observations[reference_name]
    for name in names[1:]:
        found = first_difference(reference, observations[name])
        if found:
            where, lhs, rhs = found
            return Divergence(
                oracle=case.oracle, target=case.target,
                field=where,
                detail=(
                    f"{reference_name}={_render(lhs)} vs "
                    f"{name}={_render(rhs)}"
                ),
            )
    return None
