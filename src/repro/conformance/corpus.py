"""The replayable failure corpus under ``.repro-state/conformance/``.

Every divergence the harness finds is persisted as one JSON document --
the shrunk case itself, the divergence it produced, and the shrink
report -- named ``<oracle>-<target>-<digest>.json``.  The file *is*
the reproduction: ``repro conform replay <id-or-path>`` loads it and
re-executes the oracle on the stored payload, so a failure found in a
nightly fuzz run (or on another machine) replays locally with no seed
archaeology.

Writes are atomic (tmp + ``os.replace``), matching the rest of the
state directory's crash-safety discipline.
"""

import json
import os
import time

from repro.conformance.case import ConformanceCase
from repro.obs.state import state_dir

#: Subdirectory of the obs state dir holding the corpus.
CORPUS_DIRNAME = "conformance"


def corpus_dir(root=None):
    """The corpus directory as a Path (not created yet)."""
    return state_dir(root) / CORPUS_DIRNAME


def make_entry(case, divergence, shrink_report=None):
    """Build one corpus document from a (shrunk) failing case."""
    return {
        "id": case.digest(),
        "created": time.time(),
        "case": case.to_dict(),
        "divergence": divergence.to_dict(),
        "shrink": shrink_report or {},
    }


def entry_filename(entry):
    case = entry["case"]
    return f"{case['oracle']}-{case['target']}-{entry['id']}.json"


def save_entry(entry, root=None):
    """Atomically persist one corpus entry; returns its path."""
    directory = corpus_dir(root)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_filename(entry)
    tmp = directory / f"{path.name}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def list_entries(root=None):
    """Every corpus entry, newest first."""
    directory = corpus_dir(root)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        entry["_path"] = str(path)
        entries.append(entry)
    entries.sort(key=lambda entry: entry.get("created", 0), reverse=True)
    return entries


def load_entry(reference, root=None):
    """Load one corpus entry by path, filename, or (partial) id."""
    if os.path.isfile(reference):
        with open(reference) as handle:
            entry = json.load(handle)
        entry["_path"] = str(reference)
        return entry
    for entry in list_entries(root):
        if entry.get("id") == reference \
                or reference in os.path.basename(entry["_path"]):
            return entry
    raise FileNotFoundError(
        f"no corpus entry matching {reference!r} under "
        f"{corpus_dir(root)}"
    )


def entry_case(entry):
    """The :class:`ConformanceCase` stored in a corpus entry."""
    return ConformanceCase.from_dict(entry["case"])


def clear(root=None):
    """Delete every corpus entry; returns how many were removed."""
    directory = corpus_dir(root)
    removed = 0
    if directory.is_dir():
        for path in directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
    return removed
