"""Random-but-valid input generators for the conformance oracles.

Programs are generated as *instruction lists*, not as text: each entry
is ``{"mnemonic": str, "operands": [...]}`` where a branch-target
operand is stored as ``{"t": k}`` -- the *index* of the instruction it
aims at, not a byte offset.  :func:`materialize_source` resolves the
indices to per-instruction labels at assembly time, clamping out-of-
range indices to the last instruction.  That representation is what
makes delta-debugging sound: any sublist of a valid instruction list is
itself a valid program (removing instructions can never dangle a
target, because targets are re-resolved against whatever survived).

Two program shapes:

- ``flat`` -- a single-page program (page 0), used by every oracle and
  the only shape the gate-level cross-check accepts;
- ``paged`` -- several pages chained with the kernel library's
  ``%farjump`` MMU escape sequence and terminated with ``%halt``,
  exercising page switches, the switch-delay shadow, and far branch
  targets in the functional-simulator oracle.

Fault sites and wafer-process perturbations are sampled here too, so
every oracle's randomness flows through one seeded generator.
"""

from dataclasses import replace

from repro.asm.assembler import PAGE_SIZE

#: Mnemonics excluded from random programs: FlexiCore8's stateful
#: 'load byte' prefix marks the *next fetched byte* as data, which an
#: instruction-list generator cannot represent (same exclusion as
#: :func:`repro.fab.testing.random_program`).
EXCLUDED_MNEMONICS = ("ldb",)

#: Per-page byte budget for generated code, leaving room for the
#: %farjump escape sequence (~12 bytes) and the %halt idiom.
PAGE_CODE_BUDGET = 96

#: WaferProcess fields the fab/cache oracles may perturb, with the
#: sampling range for each (uniform draws).
PROCESS_FIELD_RANGES = {
    "defect_density_per_mm2": (0.01, 0.3),
    "edge_defect_multiplier": (1.0, 20.0),
    "speed_sigma": (0.02, 0.3),
    "edge_speed_penalty": (1.0, 1.6),
    "current_sigma": (0.05, 0.4),
    "radial_current_gradient": (0.0, 0.15),
}


def random_instructions(isa, rng, length, byte_budget=None):
    """A list of ``length`` random well-formed instruction dicts.

    Branch targets are instruction indices in ``[0, length)``; operand
    values are drawn uniformly from each operand's non-negative range
    (negative immediates alias their unsigned encodings, so nothing is
    lost).  When ``byte_budget`` is given, the list is truncated to the
    prefix that fits (instruction sizes are static per spec).
    """
    choices = [m for m in isa.mnemonics() if m not in EXCLUDED_MNEMONICS]
    instructions = []
    used = 0
    for _ in range(length):
        mnemonic = choices[int(rng.integers(0, len(choices)))]
        spec = isa.spec(mnemonic)
        if byte_budget is not None and used + spec.size > byte_budget:
            break
        used += spec.size
        operands = []
        for operand in spec.operands:
            if operand.kind.name == "TARGET":
                operands.append({"t": int(rng.integers(0, length))})
            else:
                lo = max(operand.lo, 0)
                operands.append(int(rng.integers(lo, operand.hi + 1)))
        instructions.append({"mnemonic": mnemonic, "operands": operands})
    return instructions


def random_inputs(isa, rng, count):
    """``count`` random input-bus samples in the ISA's word range."""
    high = 1 << isa.word_bits
    return [int(value) for value in rng.integers(0, high, size=count)]


def random_flat_payload(isa, rng, max_instructions=40):
    """A single-page program payload (shape ``flat``)."""
    length = int(rng.integers(1, max_instructions + 1))
    return {
        "shape": "flat",
        "instructions": random_instructions(
            isa, rng, length, byte_budget=PAGE_SIZE - 8
        ),
        "inputs": random_inputs(isa, rng, int(rng.integers(0, 17))),
    }


def random_paged_payload(isa, rng, max_pages=3, max_per_page=14):
    """A multi-page program payload (shape ``paged``): each page holds
    random instructions and chains to the next with ``%farjump``."""
    page_count = int(rng.integers(2, max_pages + 1))
    pages = []
    for _ in range(page_count):
        length = int(rng.integers(1, max_per_page + 1))
        pages.append(random_instructions(
            isa, rng, length, byte_budget=PAGE_CODE_BUDGET
        ))
    return {
        "shape": "paged",
        "pages": pages,
        "inputs": random_inputs(isa, rng, int(rng.integers(0, 17))),
    }


def _format_instruction(instruction, resolve_target):
    operands = []
    for operand in instruction["operands"]:
        if isinstance(operand, dict):
            operands.append(resolve_target(operand["t"]))
        else:
            operands.append(str(operand))
    text = "    " + instruction["mnemonic"]
    if operands:
        text += " " + ", ".join(operands)
    return text


def materialize_source(payload):
    """Render an instruction-list payload as assembly source text.

    Every instruction gets its own label; target indices resolve to the
    label of the indexed instruction, clamped into the surviving list
    (and page-locally for the ``paged`` shape, matching the 7-bit
    page-local branch targets of the hardware).
    """
    if payload.get("shape") == "paged":
        return _materialize_paged(payload)
    instructions = payload["instructions"]
    count = len(instructions)
    lines = []
    for index, instruction in enumerate(instructions):
        lines.append(f"I{index}:")
        lines.append(_format_instruction(
            instruction,
            lambda k: f"I{min(k, count - 1)}",
        ))
    return "\n".join(lines) + "\n"


def _materialize_paged(payload):
    pages = payload["pages"]
    last = len(pages) - 1
    lines = []
    for page, instructions in enumerate(pages):
        count = len(instructions)
        lines.append(f".page {page}")
        lines.append(f"P{page}:")
        for index, instruction in enumerate(instructions):
            lines.append(f"P{page}I{index}:")
            lines.append(_format_instruction(
                instruction,
                lambda k, p=page, n=count: f"P{p}I{min(k, n - 1)}"
                if n else f"P{p}",
            ))
        if page < last:
            lines.append(f"    %farjump {page + 1}, P{page + 1}")
        else:
            lines.append("    %halt")
    return "\n".join(lines) + "\n"


def random_fault_sites(netlist, rng, count):
    """``count`` distinct stuck-at sites as JSON-safe pairs."""
    from repro.fab.testing import sample_fault_sites

    return [[gate, int(stuck)]
            for gate, stuck in sample_fault_sites(netlist, rng, count)]


def random_process(core, rng, fields=2):
    """A perturbed :class:`~repro.fab.process.WaferProcess` for ``core``.

    Perturbing a couple of fields per case keeps the fab/cache oracles
    from only ever exercising the two calibrated presets.
    """
    from repro.fab.process import process_for

    process = process_for(core)
    names = sorted(PROCESS_FIELD_RANGES)
    chosen = rng.choice(len(names), size=min(fields, len(names)),
                        replace=False)
    overrides = {}
    for index in chosen:
        name = names[int(index)]
        lo, hi = PROCESS_FIELD_RANGES[name]
        overrides[name] = float(rng.uniform(lo, hi))
    return replace(process, **overrides)


def random_voltages(rng):
    """One or two probe voltages from the paper's operating range."""
    grid = (2.5, 3.0, 3.5, 4.0, 4.5)
    count = int(rng.integers(1, 3))
    chosen = rng.choice(len(grid), size=count, replace=False)
    return sorted(float(grid[int(index)]) for index in chosen)
