"""Delta-debugging shrinker for failing conformance cases.

Classic ``ddmin`` over the list-valued payload fields (instruction
lists, per-page instruction lists, input samples, fault sites, probe
voltages): repeatedly try removing chunks, keeping any removal after
which the oracle *still* diverges, halving chunk granularity until
single-element removals stop helping.

The generators store branch targets as instruction indices that are
re-resolved (and clamped) at materialization, so every sublist of a
failing instruction list is itself a well-formed program -- the
shrinker never has to repair references.  An oracle executor that
*raises* on a candidate counts as still-failing (a crash is at least
as interesting as a divergence, and the exception is reported as one
by the runner).
"""

from copy import deepcopy

#: payload key -> minimum surviving length.  ``pages`` is nested: the
#: outer page list shrinks to one page, each page's instruction list
#: shrinks independently to empty.
SHRINKABLE_FIELDS = {
    "instructions": 0,
    "pages": 1,
    "inputs": 0,
    "faults": 0,
    "voltages": 1,
}

#: Default cap on oracle re-executions during one shrink.
DEFAULT_SHRINK_BUDGET = 256


def payload_size(payload):
    """Total removable items -- the size the shrink report quotes."""
    total = 0
    for key in SHRINKABLE_FIELDS:
        value = payload.get(key)
        if not isinstance(value, list):
            continue
        if key == "pages":
            total += sum(len(page) for page in value)
        else:
            total += len(value)
    return total


def instruction_count(payload):
    """Instructions in the payload's program (the acceptance metric)."""
    if isinstance(payload.get("pages"), list):
        return sum(len(page) for page in payload["pages"])
    if isinstance(payload.get("instructions"), list):
        return len(payload["instructions"])
    return 0


def ddmin_list(items, still_fails, min_len, budget):
    """Greedy ddmin: the smallest failing sublist found within budget.

    ``still_fails(candidate_list) -> bool``; ``budget`` is a mutable
    single-element list of remaining oracle executions.
    """
    items = list(items)
    granularity = 2
    while len(items) > min_len:
        chunk = max(1, (len(items) + granularity - 1) // granularity)
        removed = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if len(candidate) >= min_len:
                if budget[0] <= 0:
                    return items
                budget[0] -= 1
                if still_fails(candidate):
                    items = candidate
                    granularity = max(2, granularity - 1)
                    removed = True
                    break
            start += chunk
        if not removed:
            if chunk <= 1:
                break
            granularity = min(len(items), granularity * 2)
    return items


def shrink_case(oracle, case, evaluate,
                budget=DEFAULT_SHRINK_BUDGET):
    """Shrink ``case.payload`` while the oracle keeps diverging.

    ``evaluate(oracle, case) -> Divergence | None`` is the runner's
    exception-tolerant executor.  Returns ``(shrunk_payload, report)``
    where the report carries the before/after sizes and how many
    oracle executions the shrink spent.
    """
    payload = deepcopy(case.payload)
    remaining = [budget]
    original_size = payload_size(payload)

    def still_fails_with(candidate_payload):
        return evaluate(
            oracle, case.with_payload(candidate_payload)
        ) is not None

    for key, min_len in SHRINKABLE_FIELDS.items():
        value = payload.get(key)
        if not isinstance(value, list) or remaining[0] <= 0:
            continue
        if key == "pages":
            def fails_pages(candidate):
                return still_fails_with(dict(payload, pages=candidate))
            payload["pages"] = ddmin_list(
                value, fails_pages, min_len, remaining
            )
            for index, page in enumerate(list(payload["pages"])):
                def fails_page(candidate, index=index):
                    pages = list(payload["pages"])
                    pages[index] = candidate
                    return still_fails_with(dict(payload, pages=pages))
                payload["pages"][index] = ddmin_list(
                    page, fails_page, 0, remaining
                )
        else:
            def fails_field(candidate, key=key):
                return still_fails_with(dict(payload, **{key: candidate}))
            payload[key] = ddmin_list(
                value, fails_field, min_len, remaining
            )

    report = {
        "original_size": original_size,
        "shrunk_size": payload_size(payload),
        "original_instructions": instruction_count(case.payload),
        "shrunk_instructions": instruction_count(payload),
        "executions": budget - remaining[0],
    }
    return payload, report
