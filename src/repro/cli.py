"""Command-line interface: ``flexicore`` (or ``python -m repro.cli``).

Subcommands
-----------
asm          assemble a FlexiCore assembly file and print the listing
dis          disassemble a binary program image
run          assemble + simulate a program with optional inputs
kernels      run the Table 6 suite on a target and print statistics
yield        run the wafer-yield Monte Carlo (Table 5)
dse          run the Section 6 design-space exploration (Figures 11-13)
experiments  print any paper table/figure ('all' for everything)
report       write EXPERIMENTS.md
"""

import argparse
import sys

import numpy as np


def _add_isa_argument(parser, default="flexicore4"):
    parser.add_argument(
        "--isa", default=default,
        help="target ISA (flexicore4, flexicore8, flexicore4plus, "
             "extacc, extacc[...features...], loadstore)",
    )


def _target(isa_name):
    from repro.kernels.kernel import Target

    return Target.named(isa_name)


def cmd_asm(args):
    target = _target(args.isa)
    with open(args.source) as handle:
        source = handle.read()
    program = target.assemble(source, source_name=args.source)
    print(program.text())
    print(f"; {program.static_instructions} instructions, "
          f"{program.size_bytes} bytes, "
          f"{len(program.pages)} page(s)")
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(program.image())
        print(f"; image written to {args.output}")
    return 0


def cmd_dis(args):
    from repro.asm import disassemble, format_listing
    from repro.isa import get_isa

    isa = get_isa(args.isa)
    with open(args.image, "rb") as handle:
        image = handle.read()
    print(format_listing(disassemble(image, isa)))
    return 0


def cmd_run(args):
    from repro.sim import run_program

    target = _target(args.isa)
    with open(args.source) as handle:
        program = target.assemble(handle.read(), source_name=args.source)
    inputs = None
    if args.inputs:
        inputs = [int(token, 0) for token in args.inputs.split(",")]
    result, sink = run_program(
        program, inputs=inputs, max_cycles=args.max_cycles
    )
    print(f"executed {result.instructions} instructions "
          f"({result.reason})")
    print("outputs:", " ".join(f"{v:#x}" for v in sink.values))
    return 0


def cmd_kernels(args):
    from repro.kernels.suite import SUITE

    target = _target(args.isa)
    rng = np.random.default_rng(args.seed)
    print(f"Table 6 suite on {target.name}:")
    print(f"{'kernel':<16} {'static':>7} {'bytes':>6} {'pages':>6} "
          f"{'dynamic':>8} {'checked':>8}")
    for kernel in SUITE:
        inputs = kernel.generate_inputs(rng, args.transactions)
        result = kernel.check(target, inputs)
        program = kernel.program(target)
        print(f"{kernel.name:<16} {program.static_instructions:7d} "
              f"{program.size_bytes:6d} {len(program.pages):6d} "
              f"{result.stats.instructions:8d} {'OK':>8}")
    return 0


def cmd_yield(args):
    from repro.experiments.tables import format_table5

    print(format_table5())
    return 0


def cmd_dse(args):
    from repro.experiments.figures import (
        format_figure11,
        format_figure12,
        format_figure13,
    )

    print(format_figure12())
    print()
    print(format_figure13())
    print()
    print(format_figure11())
    return 0


def cmd_floorplan(args):
    from repro.netlist.cores import build_flexicore4, build_flexicore8
    from repro.netlist.dse_cores import build_extended_core
    from repro.netlist.floorplan import compare, render

    builders = {
        "flexicore4": build_flexicore4,
        "flexicore8": build_flexicore8,
        "flexicore4plus": lambda: build_extended_core(
            frozenset({"shift", "flags"}), name="flexicore4plus"
        ),
    }
    if args.core == "compare":
        print(compare([build() for build in builders.values()]))
        return 0
    if args.core not in builders:
        print(f"unknown core '{args.core}'; choose from "
              f"{sorted(builders)} or 'compare'", file=sys.stderr)
        return 2
    print(render(builders[args.core]()))
    return 0


def cmd_pareto(args):
    from repro.dse.explorer import explore, format_frontier

    metrics = tuple(args.metrics.split(","))
    bus = 8 if args.bus else None
    frontier, points = explore(metrics=metrics, bus_bits=bus)
    title = "Pareto frontier" + (" (8-bit program bus)" if args.bus
                                 else "")
    print(title)
    print(format_frontier(frontier, points, metrics))
    return 0


def cmd_trace(args):
    from repro.sim.trace import trace_program

    target = _target(args.isa)
    with open(args.source) as handle:
        program = target.assemble(handle.read(), source_name=args.source)
    inputs = None
    if args.inputs:
        inputs = [int(token, 0) for token in args.inputs.split(",")]
    tracer, outputs = trace_program(
        program, isa=target.isa, inputs=inputs,
        max_cycles=args.max_cycles, limit=args.limit,
    )
    print(tracer.text(count=args.limit))
    print("outputs:", " ".join(f"{v:#x}" for v in outputs))
    return 0


def cmd_isa(args):
    from repro.isa.docs import isa_reference

    from repro.isa import get_isa

    print(isa_reference(get_isa(args.name)))
    return 0


def cmd_verilog(args):
    from repro.netlist.export import to_verilog
    from repro.netlist.cores import build_flexicore4, build_flexicore8

    builders = {"flexicore4": build_flexicore4,
                "flexicore8": build_flexicore8}
    if args.core not in builders:
        print(f"unknown core '{args.core}'; choose from "
              f"{sorted(builders)}", file=sys.stderr)
        return 2
    text = to_verilog(builders[args.core](),
                      include_models=args.models)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_experiments(args):
    from repro.experiments.report import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment '{name}'; choose from: "
                  f"{', '.join(ALL_EXPERIMENTS)} or 'all'",
                  file=sys.stderr)
            return 2
        print(ALL_EXPERIMENTS[name]())
        print()
    return 0


def cmd_report(args):
    from repro.experiments.report import generate

    generate(args.output)
    print(f"wrote {args.output}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="flexicore",
        description="FlexiCores (ISCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a source file")
    p.add_argument("source")
    p.add_argument("-o", "--output", help="write the binary image here")
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("dis", help="disassemble a binary image")
    p.add_argument("image")
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_dis)

    p = sub.add_parser("run", help="assemble and simulate a program")
    p.add_argument("source")
    p.add_argument("--inputs", help="comma-separated IPORT samples")
    p.add_argument("--max-cycles", type=int, default=100_000)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("kernels", help="run the benchmark suite")
    p.add_argument("--transactions", type=int, default=10)
    p.add_argument("--seed", type=int, default=2022)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("yield", help="wafer-yield Monte Carlo (Table 5)")
    p.set_defaults(fn=cmd_yield)

    p = sub.add_parser("dse", help="design-space exploration summary")
    p.set_defaults(fn=cmd_dse)

    p = sub.add_parser("isa", help="print an ISA reference table")
    p.add_argument("name", help="e.g. flexicore4, extacc, loadstore")
    p.set_defaults(fn=cmd_isa)

    p = sub.add_parser("verilog",
                       help="export a core as structural Verilog")
    p.add_argument("core", help="flexicore4 or flexicore8")
    p.add_argument("-o", "--output")
    p.add_argument("--models", action="store_true",
                   help="prepend behavioral cell models")
    p.set_defaults(fn=cmd_verilog)

    p = sub.add_parser("floorplan",
                       help="ASCII module floorplan of a core (Fig. 4)")
    p.add_argument("core",
                   help="flexicore4, flexicore8, flexicore4plus, "
                        "or 'compare'")
    p.set_defaults(fn=cmd_floorplan)

    p = sub.add_parser("pareto", help="Pareto frontier over the designs")
    p.add_argument("--metrics", default="area,energy",
                   help="comma list from: area, energy, latency, code")
    p.add_argument("--bus", action="store_true",
                   help="restrict the program bus to 8 bits")
    p.set_defaults(fn=cmd_pareto)

    p = sub.add_parser("trace", help="trace a program's execution")
    p.add_argument("source")
    p.add_argument("--inputs", help="comma-separated IPORT samples")
    p.add_argument("--max-cycles", type=int, default=200)
    p.add_argument("--limit", type=int, default=100)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("experiments", help="print a paper table/figure")
    p.add_argument("name", help="e.g. table5, figure8, or 'all'")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("report", help="write EXPERIMENTS.md")
    p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
