"""Command-line interface: ``repro`` / ``flexicore`` (or
``python -m repro.cli``).

Subcommands
-----------
asm          assemble a FlexiCore assembly file and print the listing
dis          disassemble a binary program image
run          assemble + simulate a program with optional inputs
kernels      run the Table 6 suite on a target and print statistics
yield        run the wafer-yield Monte Carlo (Table 5)
dse          run the Section 6 design-space exploration (Figures 11-13)
experiments  print any paper table/figure ('all' for everything)
report       write EXPERIMENTS.md
engine       experiment-engine cache statistics / maintenance / gc
obs          observability: summary / export / tail of the last run
conform      randomized differential testing of the redundant paths
serve        run the fab-as-a-service HTTP job API (docs/SERVICE.md)
client       talk to a running service: submit / status / watch / ...

The heavy experiment commands (``yield``, ``dse``, ``pareto``,
``experiments``, ``report``) accept ``--jobs N`` to fan the work over N
worker processes and ``--no-cache`` to bypass the on-disk result cache;
results are bit-identical at any worker count.  The same commands take
``--profile`` (span tree + metrics summary on stderr), ``--trace FILE``
(Chrome ``trace_event`` JSON), ``--log-level``/``--quiet``; the
collected run persists to the state directory for ``repro obs``.

Commands that run gate-level simulation (``yield``, ``dse``,
``pareto``, ``conform run``) take ``--backend
interpreted|compiled|vector`` to pick the simulation backend
(default: compiled, the 64-lane bit-parallel engine; ``interpreted``
is the single-lane reference; ``vector`` evaluates wafer-scale NumPy
lane arrays -- see docs/GATESIM.md).  An unknown backend name exits 2
with a one-line error.  ``yield --fault-check N`` additionally grounds
the yield model with an N-fault stuck-at injection campaign per core,
and ``yield --gate-level`` recomputes the Table 5 yields by actually
simulating every fabricated die at the gate level.
"""

import argparse
import os
import sys

import numpy as np


def _add_isa_argument(parser, default="flexicore4"):
    parser.add_argument(
        "--isa", default=default,
        help="target ISA (flexicore4, flexicore8, flexicore4plus, "
             "extacc, extacc[...features...], loadstore)",
    )


def _positive_int(text):
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def _add_engine_arguments(parser):
    group = parser.add_argument_group("execution engine")
    group.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for experiment jobs (default: 1, serial)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (.repro-cache or "
             "$REPRO_CACHE_DIR)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (overrides the default)",
    )
    group.add_argument(
        "--engine-verbose", action="store_true",
        help="print per-job engine progress to stderr",
    )
    _add_executor_arguments(group)


def _add_executor_arguments(group):
    group.add_argument(
        "--executor", default=None,
        choices=("local", "steal", "socket"),
        help="engine backend: 'local' process pool (default), "
             "'steal' work-stealing deques, 'socket' a coordinator "
             "that remote 'repro worker join' processes serve",
    )
    group.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="socket executor: coordinator bind address "
             "(default 127.0.0.1:0, an ephemeral port)",
    )
    group.add_argument(
        "--min-workers", type=_positive_int, default=1, metavar="N",
        help="socket executor: workers to wait for before "
             "dispatching (default 1)",
    )


def _executor_spec(args):
    """The ``executor=`` value for :class:`Engine` from CLI flags.

    A socket spec is built eagerly so the coordinator address is known
    (and printed) before the first run; other specs pass through as
    names.
    """
    spec = getattr(args, "executor", None)
    if spec == "socket":
        from repro.engine import make_executor

        spec = make_executor(
            "socket", bind=args.bind, min_workers=args.min_workers,
            workers=getattr(args, "jobs", 1),
        )
        host, port = spec.address
        print(f"engine: socket coordinator on {host}:{port} -- "
              f"add workers with 'repro worker join {host}:{port}'",
              file=sys.stderr)
    return spec


def _configure_engine(args):
    """Install the process-wide default engine from CLI flags."""
    from repro import engine
    from repro.engine import signals

    # First Ctrl-C / SIGTERM cancels in-flight engine runs and flushes
    # observability; a second one falls through to the default handler.
    signals.install()
    hooks = [engine.progress_printer()] if getattr(
        args, "engine_verbose", False
    ) else None
    cache = None if args.no_cache else (args.cache_dir or True)
    return engine.configure(jobs=args.jobs, cache=cache, hooks=hooks,
                            executor=_executor_spec(args))


def _add_backend_argument(parser):
    # No argparse `choices`: the registry validates in
    # _configure_backend, so every command rejects an unknown backend
    # the same way (one `error:` line, exit 2) instead of argparse's
    # usage dump on some paths and a traceback on others.
    parser.add_argument(
        "--backend", default="compiled",
        help="gate-level simulation backend: 'compiled' (default, the "
             "64-lane bit-parallel engine), 'vector' (wafer-scale "
             "NumPy lane arrays), or 'interpreted' (the single-lane "
             "reference)",
    )


def _configure_backend(args):
    """Install the process-wide default simulation backend.

    Raises ``ValueError`` on an unknown name, which :func:`main` turns
    into a one-line ``error:`` message and exit status 2.
    """
    from repro.netlist import backend

    backend.configure(args.backend)
    return args.backend


def _add_obs_arguments(parser):
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--profile", action="store_true",
        help="collect spans + metrics; print the span tree and a "
             "metrics summary to stderr when done",
    )
    group.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON of the run to FILE "
             "(implies collection; open in about://tracing)",
    )
    group.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="structured-log threshold (default: warning)",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress log chatter (equivalent to --log-level error)",
    )


def _configure_obs(args):
    """Turn on the observability layer as the CLI flags ask."""
    from repro import obs

    collect = bool(getattr(args, "profile", False)
                   or getattr(args, "trace", None))
    level = getattr(args, "log_level", None)
    if getattr(args, "quiet", False):
        level = "error"
    elif level is None and getattr(args, "engine_verbose", False):
        level = "debug"
    elif level is None and collect:
        level = "info"
    obs.configure(
        metrics=collect or None,
        trace=collect or None,
        log_level=level,
        persist_log=True if level not in (None, "warning") else None,
    )


def _finish_obs(args):
    """Render/persist whatever the run collected, per the CLI flags."""
    from repro import obs

    collect = bool(getattr(args, "profile", False)
                   or getattr(args, "trace", None))
    if not collect:
        return
    obs.persist_snapshot()
    if getattr(args, "trace", None):
        with open(args.trace, "w") as handle:
            handle.write(obs.export_text(
                "chrome", snapshot=obs.registry().snapshot(),
                spans=obs.collected_spans(),
            ))
        print(f"wrote {args.trace}", file=sys.stderr)
    if getattr(args, "profile", False):
        print(obs.render_tree(obs.collected_spans()), file=sys.stderr)
        print(file=sys.stderr)
        print(obs.summary(), file=sys.stderr)


def _target(isa_name):
    from repro.kernels.kernel import Target

    return Target.named(isa_name)


def cmd_asm(args):
    target = _target(args.isa)
    with open(args.source) as handle:
        source = handle.read()
    program = target.assemble(source, source_name=args.source)
    print(program.text())
    print(f"; {program.static_instructions} instructions, "
          f"{program.size_bytes} bytes, "
          f"{len(program.pages)} page(s)")
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(program.image())
        print(f"; image written to {args.output}")
    return 0


def cmd_dis(args):
    from repro.asm import disassemble, format_listing
    from repro.isa import get_isa

    isa = get_isa(args.isa)
    with open(args.image, "rb") as handle:
        image = handle.read()
    print(format_listing(disassemble(image, isa)))
    return 0


def cmd_run(args):
    from repro.sim import run_program

    target = _target(args.isa)
    with open(args.source) as handle:
        program = target.assemble(handle.read(), source_name=args.source)
    inputs = None
    if args.inputs:
        inputs = [int(token, 0) for token in args.inputs.split(",")]
    result, sink = run_program(
        program, inputs=inputs, max_cycles=args.max_cycles
    )
    print(f"executed {result.instructions} instructions "
          f"({result.reason})")
    print("outputs:", " ".join(f"{v:#x}" for v in sink.values))
    return 0


def cmd_kernels(args):
    from repro.kernels.suite import SUITE

    target = _target(args.isa)
    rng = np.random.default_rng(args.seed)
    print(f"Table 6 suite on {target.name}:")
    print(f"{'kernel':<16} {'static':>7} {'bytes':>6} {'pages':>6} "
          f"{'dynamic':>8} {'checked':>8}")
    for kernel in SUITE:
        inputs = kernel.generate_inputs(rng, args.transactions)
        result = kernel.check(target, inputs)
        program = kernel.program(target)
        print(f"{kernel.name:<16} {program.static_instructions:7d} "
              f"{program.size_bytes:6d} {len(program.pages):6d} "
              f"{result.stats.instructions:8d} {'OK':>8}")
    return 0


def cmd_yield(args):
    from repro.experiments.tables import format_table5

    engine = _configure_engine(args)
    backend = _configure_backend(args)
    print(format_table5(wafers=args.wafers, seed=args.seed))
    if args.fault_check:
        from repro.fab.yield_model import run_fault_coverage

        coverage = run_fault_coverage(
            seed=args.seed, faults=args.fault_check, backend=backend,
        )
        print()
        print(f"fault coverage ({args.fault_check} stuck-at "
              f"faults/core, {backend} backend):")
        for core, study in coverage.items():
            print(f"  {core:<12} {study['detected']}/{study['injected']}"
                  f" detected ({100 * study['coverage']:.0f}%)")
    if args.gate_level:
        from repro.fab.process import process_for
        from repro.fab.yield_model import run_gate_yield_study

        print()
        print(f"gate-level yield ({args.wafers} wafers/core, "
              f"{backend} backend):")
        for core in ("flexicore4", "flexicore8"):
            study = run_gate_yield_study(
                process_for(core), seed=args.seed, core=core,
                wafers=args.wafers, backend=backend, engine=engine,
            )
            for voltage, bucket in sorted(study["summary"].items()):
                print(f"  {core:<12} {voltage:g} V  "
                      f"full {100 * bucket['full']:5.1f}%  "
                      f"inclusion {100 * bucket['inclusion']:5.1f}%  "
                      f"I {bucket['mean_current_ma']:.2f} mA "
                      f"(rsd {bucket['rsd']:.3f})")
    if args.engine_verbose:
        print(engine.metrics.summary(), file=sys.stderr)
    return 0


def cmd_dse(args):
    from repro.experiments.figures import (
        format_figure11,
        format_figure12,
        format_figure13,
    )

    engine = _configure_engine(args)
    _configure_backend(args)
    print(format_figure12())
    print()
    print(format_figure13())
    print()
    print(format_figure11())
    if args.engine_verbose:
        print(engine.metrics.summary(), file=sys.stderr)
    return 0


def cmd_dse_search(args):
    from repro.dse.search import SearchConfig, format_search_frontier, search
    from repro.dse.space import DesignSpace

    engine = _configure_engine(args)
    _configure_backend(args)
    space_kwargs = {}
    if args.features is not None:
        space_kwargs["features"] = tuple(
            token for token in args.features.split(",") if token
        )
    if args.microarchs is not None:
        space_kwargs["microarchs"] = tuple(
            token.upper() for token in args.microarchs.split(",") if token
        )
    if args.models is not None:
        space_kwargs["operand_models"] = tuple(
            token for token in args.models.split(",") if token
        )
    if args.bus is not None:
        space_kwargs["bus_bits"] = tuple(
            int(token) for token in args.bus.split(",") if token
        )
    config = SearchConfig(
        budget=args.budget,
        seed=args.seed,
        objectives=tuple(args.objectives.split(",")),
        population=args.population,
        space=DesignSpace(**space_kwargs),
    )
    result = search(config, engine=engine)
    print(f"Adaptive DSE search (budget {config.budget}, "
          f"seed {config.seed}, objectives "
          f"{'/'.join(config.objectives)})")
    print(format_search_frontier(result))
    if args.trail:
        result.write_trail(args.trail)
        print(f"trail: {args.trail} ({len(result.trail)} evaluations)",
              file=sys.stderr)
    if args.engine_verbose:
        print(engine.metrics.summary(), file=sys.stderr)
    return 0


def cmd_floorplan(args):
    from repro.netlist.cores import build_flexicore4, build_flexicore8
    from repro.netlist.dse_cores import build_extended_core
    from repro.netlist.floorplan import compare, render

    builders = {
        "flexicore4": build_flexicore4,
        "flexicore8": build_flexicore8,
        "flexicore4plus": lambda: build_extended_core(
            frozenset({"shift", "flags"}), name="flexicore4plus"
        ),
    }
    if args.core == "compare":
        print(compare([build() for build in builders.values()]))
        return 0
    if args.core not in builders:
        print(f"unknown core '{args.core}'; choose from "
              f"{sorted(builders)} or 'compare'", file=sys.stderr)
        return 2
    print(render(builders[args.core]()))
    return 0


def cmd_pareto(args):
    from repro.dse.explorer import explore, format_frontier

    _configure_engine(args)
    _configure_backend(args)
    metrics = tuple(args.metrics.split(","))
    bus = 8 if args.bus else None
    frontier, points = explore(metrics=metrics, bus_bits=bus)
    title = "Pareto frontier" + (" (8-bit program bus)" if args.bus
                                 else "")
    print(title)
    print(format_frontier(frontier, points, metrics))
    return 0


def cmd_trace(args):
    from repro.sim.trace import trace_program

    target = _target(args.isa)
    with open(args.source) as handle:
        program = target.assemble(handle.read(), source_name=args.source)
    inputs = None
    if args.inputs:
        inputs = [int(token, 0) for token in args.inputs.split(",")]
    tracer, outputs = trace_program(
        program, isa=target.isa, inputs=inputs,
        max_cycles=args.max_cycles, limit=args.limit,
    )
    print(tracer.text(count=args.limit))
    print("outputs:", " ".join(f"{v:#x}" for v in outputs))
    return 0


def cmd_isa(args):
    from repro.isa.docs import isa_reference

    from repro.isa import get_isa

    print(isa_reference(get_isa(args.name)))
    return 0


def cmd_verilog(args):
    from repro.netlist.export import to_verilog
    from repro.netlist.cores import build_flexicore4, build_flexicore8

    builders = {"flexicore4": build_flexicore4,
                "flexicore8": build_flexicore8}
    if args.core not in builders:
        print(f"unknown core '{args.core}'; choose from "
              f"{sorted(builders)}", file=sys.stderr)
        return 2
    text = to_verilog(builders[args.core](),
                      include_models=args.models)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_experiments(args):
    from repro.experiments.report import ALL_EXPERIMENTS

    _configure_engine(args)
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment '{name}'; choose from: "
                  f"{', '.join(ALL_EXPERIMENTS)} or 'all'",
                  file=sys.stderr)
            return 2
        print(ALL_EXPERIMENTS[name]())
        print()
    return 0


def cmd_report(args):
    from repro.experiments.report import generate

    _configure_engine(args)
    generate(args.output)
    print(f"wrote {args.output}")
    return 0


def _parse_size(text):
    """'500M' / '2G' / '64K' / '1048576' -> bytes."""
    text = str(text).strip()
    scale = 1
    suffixes = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    upper = text.upper()
    if upper.endswith("B"):
        upper = upper[:-1]
    if upper and upper[-1] in suffixes:
        scale = suffixes[upper[-1]]
        upper = upper[:-1]
    try:
        value = float(upper)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (use e.g. 500M, 2G, 1048576)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0: {text!r}")
    return int(value * scale)


def cmd_engine(args):
    # Import the job-function providers so the registry is populated.
    import repro.dse.evaluate  # noqa: F401
    import repro.fab.yield_model  # noqa: F401
    from repro.engine import ResultCache, load_last_run, registered

    cache = ResultCache(args.cache_dir) if args.cache_dir \
        else ResultCache()
    if args.action == "clear":
        stats = cache.stats()
        cache.clear()
        print(f"cleared {stats['entries']} cache entries "
              f"({stats['bytes']} bytes) under {stats['root']}")
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            print("error: 'engine gc' requires --max-bytes "
                  "(e.g. --max-bytes 500M)", file=sys.stderr)
            return 2
        report = cache.gc(args.max_bytes)
        print(f"engine cache gc: {cache.root}")
        print(f"  budget   {report['max_bytes']:>12,d} bytes")
        print(f"  before   {report['before_bytes']:>12,d} bytes")
        print(f"  after    {report['after_bytes']:>12,d} bytes")
        print(f"  evicted  {report['evicted_entries']} entries "
              f"(freed {report['evicted_bytes']:,d} bytes, "
              f"least recently used first)")
        return 0

    stats = cache.stats()
    print(f"engine cache: {stats['root']}")
    if not stats["functions"]:
        print("  (empty)")
    for name, entry in stats["functions"].items():
        print(f"  {name:<24} {entry['entries']:4d} entries  "
              f"{entry['bytes']:>10,d} bytes")
    print(f"  {'total':<24} {stats['entries']:4d} entries  "
          f"{stats['cache_bytes']:>10,d} bytes on disk")
    if stats.get("shards", 1) > 1:
        print(f"shards: {stats['shards']} "
              f"(index entries: {stats.get('index_entries', 0)})")
        for shard, entry in sorted(stats.get("per_shard", {}).items()):
            print(f"  {shard:<24} {entry['entries']:4d} entries  "
                  f"{entry['bytes']:>10,d} bytes")
    print(f"registered job functions: "
          f"{', '.join(sorted(registered())) or '(none imported)'}")
    last = load_last_run(cache.root)
    if last:
        print("last run:")
        info = last.get("executor_info") or {}
        print(f"  executor {last.get('executor', 'local')}: "
              f"{info.get('workers', last.get('workers', 1))} "
              f"worker(s)"
              + (f", {len(info['members'])} cluster member(s)"
                 if info.get("members") else ""))
        print(f"  jobs {last['jobs_completed']}/{last['jobs_submitted']}"
              f" completed, cache hit rate "
              f"{100 * last['cache_hit_rate']:.0f}%, "
              f"wall {last['wall_s']:.2f} s"
              f"{', degraded to serial' if last['degraded'] else ''}")
        for stage in last.get("stages", []):
            print(f"  stage {stage['stage']}: {stage['jobs']} jobs, "
                  f"{stage['cache_hits']} cached, "
                  f"{stage['computed']} computed, "
                  f"{stage['wall_s']:.2f} s")
    return 0


def cmd_obs(args):
    from repro import obs
    from repro.obs import logging as obs_logging

    root = args.state_dir  # None -> $REPRO_STATE_DIR / .repro-state
    if args.action == "summary":
        snapshot, spans = obs.load_snapshot(root=root)
        if not snapshot and not spans:
            print("no persisted observability data "
                  f"(run a command with --profile first; looked in "
                  f"{obs.state_dir(root)})")
            return 1
        if spans:
            print(obs.render_tree(spans))
            print()
        print(obs.summary(snapshot))
        return 0
    if args.action == "export":
        snapshot, spans = obs.load_snapshot(root=root)
        sys.stdout.write(obs.export_text(
            args.format, snapshot=snapshot, spans=spans
        ))
        return 0
    if args.action == "tail":
        records = obs_logging.tail_log(count=args.lines, root=root)
        if not records:
            print("no structured log records in "
                  f"{obs.state_dir(root)}")
            return 1
        print(obs_logging.render_log_records(records))
        return 0
    if args.action == "flight":
        from repro.obs import flight

        flight_action = args.flight_action or "show"
        if flight_action == "dump":
            path = flight.dump("cli", root=root)
            if path is None:
                print("flight dump failed (state dir not writable?)",
                      file=sys.stderr)
                return 1
            print(f"wrote flight dump: {path}")
            return 0
        if flight_action == "show":
            document = flight.load_dump(args.entry, root=root)
            if document is None:
                print("no flight dump found in "
                      f"{flight.flight_dir(root)}"
                      + (f" matching {args.entry!r}"
                         if args.entry else ""))
                return 1
            print(flight.render(document, limit=args.lines))
            return 0
        print(f"unknown flight action '{flight_action}' "
              "(use dump or show)", file=sys.stderr)
        return 2
    print(f"unknown obs action '{args.action}'", file=sys.stderr)
    return 2


def cmd_worker(args):
    from repro.engine.executors.worker import run_worker

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: expected HOST:PORT, got {args.address!r}",
              file=sys.stderr)
        return 2

    def on_event(event, detail):
        if args.verbose:
            print(f"worker: {event} {detail}", file=sys.stderr)

    print(f"joining engine coordinator at {host}:{port} "
          f"(Ctrl-C to leave)", file=sys.stderr)
    try:
        served = run_worker(host, int(port),
                            cache_dir=args.cache_dir,
                            on_event=on_event)
    except ConnectionRefusedError:
        print(f"error: no coordinator listening on {host}:{port} "
              f"(start a run with --executor socket first)",
              file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker: interrupted; leaving cluster", file=sys.stderr)
        return 0
    print(f"worker: coordinator closed; served {served} job(s)")
    return 0


def cmd_conform(args):
    from repro import conformance
    from repro.conformance import corpus as corpus_store
    from repro.engine import Engine

    action = args.conform_action

    if action == "corpus":
        if getattr(args, "clear", False):
            count = corpus_store.clear(args.state_dir)
            print(f"removed {count} corpus entries under "
                  f"{conformance.corpus_dir(args.state_dir)}")
            return 0
        entries = conformance.list_entries(args.state_dir)
        if not entries:
            print("conformance corpus is empty "
                  f"({conformance.corpus_dir(args.state_dir)})")
            return 0
        for entry in entries:
            case = entry["case"]
            shrink = entry.get("shrink") or {}
            print(f"{entry['id']}  {case['oracle']:<9} "
                  f"{case['target']:<14} "
                  f"shrunk {shrink.get('original_size', '?')}->"
                  f"{shrink.get('shrunk_size', '?')}  "
                  f"{entry['divergence']['field']}")
        print(f"{len(entries)} entries; replay with "
              "'repro conform replay <id>'")
        return 0

    if action == "replay":
        try:
            entry = conformance.load_entry(args.entry, args.state_dir)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        divergence = conformance.replay_entry(entry)
        case = entry["case"]
        print(f"replayed {entry['id']} "
              f"({case['oracle']} on {case['target']})")
        if divergence is None:
            print("  no divergence -- the failure no longer reproduces")
            return 0
        print(f"  still diverges: {divergence}")
        return 1

    # action == "run": a fresh cacheless engine -- every campaign must
    # execute its cases, never replay a previous campaign's results.
    _configure_backend(args)
    engine = Engine(jobs=args.jobs, cache=None,
                    executor=_executor_spec(args))
    oracles = args.oracles.split(",") if args.oracles else None
    targets = args.targets.split(",") if args.targets else None
    try:
        summary = conformance.run_campaign(
            args.seed, args.budget, oracle_names=oracles,
            targets=targets, engine=engine,
            shrink_budget=args.shrink_budget,
            state_root=args.state_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"conformance campaign: seed {args.seed}, "
          f"budget {args.budget}, {summary['cases']} cases in "
          f"{summary['elapsed_s']:.1f} s")
    print(f"{'oracle':<10} {'target':<14} {'cases':>6} {'diverged':>9}")
    for item in summary["slices"]:
        print(f"{item['oracle']:<10} {item['target']:<14} "
              f"{item['cases']:6d} {item['divergences']:9d}")
    if not summary["divergences"]:
        print("no divergences: all redundant paths agree")
        return 0
    print()
    print(f"{len(summary['divergences'])} divergence(s):")
    for entry in summary["divergences"]:
        divergence = entry["divergence"]
        shrink = entry.get("shrink") or {}
        print(f"  {entry['id']}: {divergence['oracle']} on "
              f"{divergence['target']} at {divergence['field']}")
        print(f"    {divergence['detail'][:200]}")
        print(f"    shrunk {shrink.get('original_size', '?')} -> "
              f"{shrink.get('shrunk_size', '?')} items; saved to "
              f"{entry.get('_path', '(not persisted)')}")
    print("replay with 'repro conform replay <id>'")
    return 1


def cmd_serve(args):
    import asyncio

    from repro.service import ServiceConfig, TenantRegistry, serve

    tenants = (TenantRegistry.from_file(args.tenants)
               if args.tenants else None)
    config = ServiceConfig(
        host=args.host, port=args.port, tenants=tenants,
        cache=args.cache_dir, engine_jobs=args.jobs,
        engine_executor=args.executor,
        max_running=args.max_running, max_queued=args.max_queued,
        metrics=True, drain_grace_s=args.drain_grace,
    )

    def ready(server):
        print(f"repro service listening on {server.base_url} "
              f"({len(server.service.tenants)} tenant(s)); "
              f"Ctrl-C or SIGTERM drains and exits", flush=True)

    asyncio.run(serve(config, ready=ready))
    print("service drained; bye")
    return 0


def _client_connection(args):
    import os

    from repro.service import ServiceClient

    url = args.url or os.environ.get(
        "REPRO_SERVICE_URL", "http://127.0.0.1:8321"
    )
    key = args.key or os.environ.get(
        "REPRO_SERVICE_KEY", "dev-local-key"
    )
    return ServiceClient(url, key, timeout=args.timeout)


def _parse_client_params(pairs):
    """['wafers=2', 'core=flexicore4'] -> params dict (values JSON)."""
    import json as json_module

    params = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(
                f"--param expects name=value, got {pair!r}"
            )
        try:
            params[name] = json_module.loads(value)
        except json_module.JSONDecodeError:
            params[name] = value  # bare strings need no quoting
    return params


def cmd_client(args):
    import json as json_module

    from repro.service import ServiceApiError

    client = _client_connection(args)
    action = args.client_action
    try:
        if action == "types":
            for name, doc in client.types().items():
                print(f"{name}: {doc['description']}")
                for pname, spec in doc["params"].items():
                    extra = []
                    if spec.get("required"):
                        extra.append("required")
                    if "default" in spec:
                        extra.append(f"default {spec['default']!r}")
                    if "choices" in spec:
                        extra.append(
                            "one of " + ", ".join(
                                map(str, spec["choices"])
                            )
                        )
                    print(f"  {pname} ({spec['type']}"
                          + ("; " + "; ".join(extra) if extra else "")
                          + ")")
            return 0
        if action == "submit":
            params = _parse_client_params(args.param)
            document = client.submit(
                args.type, params,
                traceparent=getattr(args, "traceparent", None),
            )
            if args.wait:
                document = client.wait(
                    document["id"], timeout=args.timeout
                )
            print(json_module.dumps(document, indent=2))
            return 0 if document["status"] in ("queued", "running",
                                              "completed") else 1
        if action == "status":
            print(json_module.dumps(client.status(args.job), indent=2))
            return 0
        if action == "watch":
            final = None
            for event in client.events(args.job, since=args.since):
                print(json_module.dumps(event), flush=True)
                if event["event"] in ("completed", "failed",
                                      "cancelled"):
                    final = event["event"]
            return 0 if final in (None, "completed") else 1
        if action == "cancel":
            print(json_module.dumps(client.cancel(args.job), indent=2))
            return 0
        if action == "artifact":
            data = client.artifact(args.digest)
            if args.output:
                with open(args.output, "wb") as handle:
                    handle.write(data)
                print(f"wrote {len(data)} bytes to {args.output}")
            else:
                sys.stdout.write(data.decode("utf-8", "replace"))
            return 0
        if action == "jobs":
            for doc in client.jobs():
                print(f"{doc['id']}  {doc['type']:<14} "
                      f"{doc['status']:<10} "
                      f"cache_hit={str(doc['cache_hit']).lower()}")
            return 0
        if action == "trace":
            if args.chrome:
                print(json_module.dumps(
                    client.trace(args.job, format="chrome"), indent=2
                ))
                return 0
            document = client.trace(args.job)
            print(f"trace {document['trace_id']} "
                  f"(job {document['job']}, {document['status']}, "
                  f"{document['span_count']} span(s))")
            print(document["tree"])
            return 0
        if action == "slo":
            print(json_module.dumps(client.slo(), indent=2))
            return 0
        print(f"unknown client action '{action}'", file=sys.stderr)
        return 2
    except ServiceApiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(f"error: no service at {client.host}:{client.port} "
              "(start one with 'repro serve')", file=sys.stderr)
        return 1


def cmd_top(args):
    from repro.service import ServiceApiError
    from repro.service.top import run_top

    client = _client_connection(args)
    count = 1 if args.once else args.count
    try:
        run_top(
            client, interval_s=args.interval, count=count,
            clear=not args.once and count != 1,
        )
        return 0
    except KeyboardInterrupt:
        print()  # leave the last frame visible
        return 0
    except ServiceApiError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(f"error: no service at {client.host}:{client.port} "
              "(start one with 'repro serve')", file=sys.stderr)
        return 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="flexicore",
        description="FlexiCores (ISCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble a source file")
    p.add_argument("source")
    p.add_argument("-o", "--output", help="write the binary image here")
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("dis", help="disassemble a binary image")
    p.add_argument("image")
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_dis)

    p = sub.add_parser("run", help="assemble and simulate a program")
    p.add_argument("source")
    p.add_argument("--inputs", help="comma-separated IPORT samples")
    p.add_argument("--max-cycles", type=int, default=100_000)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("kernels", help="run the benchmark suite")
    p.add_argument("--transactions", type=int, default=10)
    p.add_argument("--seed", type=int, default=2022)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("yield", help="wafer-yield Monte Carlo (Table 5)")
    p.add_argument("--wafers", type=int, default=6,
                   help="wafers per core in the Monte Carlo (default 6)")
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--fault-check", type=int, default=0, metavar="N",
                   help="also inject N stuck-at faults per core and "
                        "report how many the probe vectors detect")
    p.add_argument("--gate-level", action="store_true",
                   help="recompute Table 5 by gate-level simulation of "
                        "every fabricated die (one cross-check lane "
                        "per die; fastest with --backend vector)")
    _add_backend_argument(p)
    _add_engine_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(fn=cmd_yield)

    p = sub.add_parser("dse", help="design-space exploration summary")
    _add_backend_argument(p)
    _add_engine_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(fn=cmd_dse)
    dsub = p.add_subparsers(dest="dse_cmd")
    d = dsub.add_parser(
        "search",
        help="adaptive multi-objective search over the parametric space",
    )
    d.add_argument(
        "--budget", type=_positive_int, default=48, metavar="N",
        help="scoring-job budget, any fidelity (default 48)",
    )
    d.add_argument(
        "--seed", type=int, default=2022,
        help="search + scoring seed; fixed (budget, seed) is "
             "deterministic (default 2022)",
    )
    d.add_argument(
        "--objectives", default="area,cost,energy",
        help="comma-separated lower-is-better objectives from "
             "area/cost/energy/code (default area,cost,energy)",
    )
    d.add_argument(
        "--population", type=_positive_int, default=16, metavar="N",
        help="NSGA-II population size (default 16)",
    )
    d.add_argument(
        "--features", default=None, metavar="F1,F2",
        help="restrict the feature-gate axis (default: all gates)",
    )
    d.add_argument(
        "--microarchs", default=None, metavar="SC,P,MC",
        help="restrict the microarchitecture axis (default: SC,P,MC)",
    )
    d.add_argument(
        "--models", default=None, metavar="acc,ls",
        help="restrict the operand-model axis (default: acc,ls)",
    )
    d.add_argument(
        "--bus", default=None, metavar="0,8",
        help="program-bus widths to search; 0 = natural (default: 0,8)",
    )
    d.add_argument(
        "--trail", default=None, metavar="PATH",
        help="write the per-evaluation JSONL trail here",
    )
    _add_backend_argument(d)
    _add_engine_arguments(d)
    _add_obs_arguments(d)
    d.set_defaults(fn=cmd_dse_search)

    p = sub.add_parser("isa", help="print an ISA reference table")
    p.add_argument("name", help="e.g. flexicore4, extacc, loadstore")
    p.set_defaults(fn=cmd_isa)

    p = sub.add_parser("verilog",
                       help="export a core as structural Verilog")
    p.add_argument("core", help="flexicore4 or flexicore8")
    p.add_argument("-o", "--output")
    p.add_argument("--models", action="store_true",
                   help="prepend behavioral cell models")
    p.set_defaults(fn=cmd_verilog)

    p = sub.add_parser("floorplan",
                       help="ASCII module floorplan of a core (Fig. 4)")
    p.add_argument("core",
                   help="flexicore4, flexicore8, flexicore4plus, "
                        "or 'compare'")
    p.set_defaults(fn=cmd_floorplan)

    p = sub.add_parser("pareto", help="Pareto frontier over the designs")
    p.add_argument("--metrics", default="area,energy",
                   help="comma list from: area, energy, latency, code")
    p.add_argument("--bus", action="store_true",
                   help="restrict the program bus to 8 bits")
    _add_backend_argument(p)
    _add_engine_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(fn=cmd_pareto)

    p = sub.add_parser("trace", help="trace a program's execution")
    p.add_argument("source")
    p.add_argument("--inputs", help="comma-separated IPORT samples")
    p.add_argument("--max-cycles", type=int, default=200)
    p.add_argument("--limit", type=int, default=100)
    _add_isa_argument(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("experiments", help="print a paper table/figure")
    p.add_argument("name", help="e.g. table5, figure8, or 'all'")
    _add_engine_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("report", help="write EXPERIMENTS.md")
    p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    _add_engine_arguments(p)
    _add_obs_arguments(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "engine", help="experiment-engine cache stats / maintenance"
    )
    p.add_argument("action", choices=("stats", "clear", "gc"),
                   help="'stats' shows cache + last-run metrics; "
                        "'clear' deletes the cache; 'gc' evicts "
                        "least-recently-used entries to --max-bytes")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: .repro-cache or "
                        "$REPRO_CACHE_DIR)")
    p.add_argument("--max-bytes", type=_parse_size, default=None,
                   metavar="SIZE",
                   help="gc target size on disk (accepts K/M/G "
                        "suffixes, e.g. 500M)")
    p.set_defaults(fn=cmd_engine)

    p = sub.add_parser(
        "worker",
        help="serve engine jobs for a socket-cluster coordinator",
    )
    wsub = p.add_subparsers(dest="worker_action", required=True)
    w = wsub.add_parser(
        "join",
        help="connect to a coordinator (a run started with "
             "--executor socket) and execute its jobs",
    )
    w.add_argument("address", metavar="HOST:PORT",
                   help="coordinator address printed by the run")
    w.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="this worker's local result cache (default: "
                        ".repro-cache or $REPRO_CACHE_DIR)")
    w.add_argument("--verbose", action="store_true",
                   help="print per-job events to stderr")
    w.set_defaults(fn=cmd_worker)

    p = sub.add_parser(
        "obs",
        help="observability: summary / export / tail / flight recorder",
    )
    p.add_argument("action",
                   choices=("summary", "export", "tail", "flight"),
                   help="'summary' prints the span tree + metrics of "
                        "the last profiled run; 'export' emits it in a "
                        "machine format; 'tail' shows recent log "
                        "records; 'flight' dumps/shows the always-on "
                        "flight recorder ring")
    p.add_argument("flight_action", nargs="?", default=None,
                   choices=("dump", "show"),
                   help="with 'flight': 'dump' writes the current ring "
                        "to <state>/flight/, 'show' renders the latest "
                        "(or a named) dump")
    p.add_argument("entry", nargs="?", default=None,
                   help="with 'flight show': a dump filename or path "
                        "(default: the latest)")
    p.add_argument("--format", default="prometheus",
                   choices=("prometheus", "jsonl", "chrome"),
                   help="export format (default: prometheus)")
    p.add_argument("-n", "--lines", type=_positive_int, default=20,
                   help="log records to show with 'tail', or flight "
                        "records with 'flight show' (default 20)")
    p.add_argument("--state-dir", default=None,
                   help="state directory (default: .repro-state or "
                        "$REPRO_STATE_DIR)")
    p.set_defaults(fn=cmd_obs)

    p = sub.add_parser(
        "conform",
        help="randomized differential testing of the redundant paths",
    )
    csub = p.add_subparsers(dest="conform_action", required=True)

    c = csub.add_parser(
        "run", help="run a conformance campaign across the oracles"
    )
    c.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    c.add_argument("--budget", type=_positive_int, default=200,
                   help="case budget per oracle, scaled by oracle cost "
                        "(default 200)")
    c.add_argument("--oracles", default=None,
                   help="comma list of oracles to run (default: all of "
                        "dispatch, backend, vector, cache, fab, asm)")
    c.add_argument("--targets", default=None,
                   help="comma list of targets (default: flexicore4, "
                        "flexicore8, flexicore4plus where applicable)")
    c.add_argument("--shrink-budget", type=_positive_int, default=256,
                   help="oracle re-executions allowed per shrink "
                        "(default 256)")
    c.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes for campaign slices "
                        "(default 1)")
    c.add_argument("--state-dir", default=None,
                   help="state directory for the failure corpus "
                        "(default: .repro-state or $REPRO_STATE_DIR)")
    _add_backend_argument(c)
    _add_executor_arguments(c)
    _add_obs_arguments(c)
    c.set_defaults(fn=cmd_conform)

    c = csub.add_parser(
        "replay", help="re-execute a persisted failing case"
    )
    c.add_argument("entry",
                   help="corpus entry: a path, an id, or a filename "
                        "fragment")
    c.add_argument("--state-dir", default=None)
    c.set_defaults(fn=cmd_conform)

    c = csub.add_parser(
        "corpus", help="list (or clear) the failure corpus"
    )
    c.add_argument("--clear", action="store_true",
                   help="delete every persisted corpus entry")
    c.add_argument("--state-dir", default=None)
    c.set_defaults(fn=cmd_conform)

    p = sub.add_parser(
        "serve",
        help="run the fab-as-a-service HTTP job API (docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8321,
                   help="bind port (default 8321; 0 = ephemeral)")
    p.add_argument("--tenants", default=None, metavar="FILE",
                   help="tenant config JSON ({'tenants': [{'name', "
                        "'key', 'rate', 'burst', 'max_active'}]}); "
                        "default: a single 'dev' tenant with key "
                        "'dev-local-key'")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   metavar="N",
                   help="engine worker processes per job (default 1)")
    p.add_argument("--executor", default=None,
                   choices=("local", "steal"),
                   help="engine backend per job (default local; the "
                        "socket backend needs a per-run coordinator "
                        "and is CLI-only)")
    p.add_argument("--max-running", type=_positive_int, default=2,
                   metavar="N",
                   help="jobs running concurrently (default 2)")
    p.add_argument("--max-queued", type=int, default=8, metavar="N",
                   help="queued jobs beyond the running set before "
                        "429 backpressure (default 8)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared result-cache directory (default: "
                        ".repro-cache or $REPRO_CACHE_DIR)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="S",
                   help="seconds a SIGTERM drain waits for in-flight "
                        "jobs (default 30)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "client", help="talk to a running repro service"
    )
    p.add_argument("--url", default=None,
                   help="service URL (default: $REPRO_SERVICE_URL or "
                        "http://127.0.0.1:8321)")
    p.add_argument("--key", default=None,
                   help="API key (default: $REPRO_SERVICE_KEY or the "
                        "dev key)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="request/wait timeout in seconds (default 300)")
    ksub = p.add_subparsers(dest="client_action", required=True)

    k = ksub.add_parser("types", help="list job types and schemas")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("submit", help="submit a job")
    k.add_argument("type", help="job type (see 'client types')")
    k.add_argument("--param", action="append", metavar="NAME=VALUE",
                   help="job parameter; value parsed as JSON, bare "
                        "strings allowed (repeatable)")
    k.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print the "
                        "final document")
    k.add_argument("--traceparent", default=None, metavar="HEADER",
                   help="propagate a W3C traceparent (default: the "
                        "service mints one per job)")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("status", help="fetch one job's document")
    k.add_argument("job", help="job id")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("watch",
                        help="stream a job's progress events (NDJSON)")
    k.add_argument("job", help="job id")
    k.add_argument("--since", type=int, default=0,
                   help="first event sequence number (default 0)")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("cancel", help="request job cancellation")
    k.add_argument("job", help="job id")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("artifact", help="download an artifact")
    k.add_argument("digest", help="artifact digest (from the job doc)")
    k.add_argument("-o", "--output", default=None,
                   help="write to FILE instead of stdout")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("jobs", help="list this tenant's jobs")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("trace",
                        help="fetch one job's assembled span tree")
    k.add_argument("job", help="job id")
    k.add_argument("--chrome", action="store_true",
                   help="emit Chrome trace_event JSON instead of the "
                        "tree document")
    k.set_defaults(fn=cmd_client)

    k = ksub.add_parser("slo", help="per-tenant SLO report")
    k.set_defaults(fn=cmd_client)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over /v1/stats + /v1/slo",
    )
    p.add_argument("--url", default=None,
                   help="service URL (default: $REPRO_SERVICE_URL or "
                        "http://127.0.0.1:8321)")
    p.add_argument("--key", default=None,
                   help="API key (default: $REPRO_SERVICE_KEY or the "
                        "dev key)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="request timeout in seconds (default 30)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between frames (default 2)")
    p.add_argument("--count", type=_positive_int, default=None,
                   metavar="N",
                   help="render N frames then exit (default: forever)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame without clearing the "
                        "screen (same as --count 1)")
    p.set_defaults(fn=cmd_top)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    from repro.obs import flight as _flight

    # SIGQUIT (Ctrl-\) dumps the always-on flight recorder ring to the
    # state dir and keeps running -- post-mortem for a wedged command.
    _flight.install_sigquit()
    if hasattr(args, "profile"):
        _configure_obs(args)
    try:
        status = args.fn(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed our stdout; point it at devnull
        # so the interpreter's shutdown flush doesn't traceback too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except Exception as exc:
        from repro.asm.errors import AsmError
        from repro.engine import EngineCancelled
        from repro.isa.errors import IsaError

        if isinstance(exc, EngineCancelled):
            print("cancelled", file=sys.stderr)
            return 130
        if isinstance(exc, (AsmError, IsaError, ValueError, KeyError,
                            FileNotFoundError, IsADirectoryError)):
            # User errors (bad name, bad file, bad value) exit 2 with
            # one line on stderr instead of a traceback.
            message = exc.args[0] if (
                isinstance(exc, KeyError) and exc.args
            ) else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
        raise
    if hasattr(args, "profile"):
        _finish_obs(args)
    return status


if __name__ == "__main__":
    sys.exit(main())
