"""Setup shim: enables legacy editable installs on hosts without `wheel`."""
from setuptools import setup

setup()
