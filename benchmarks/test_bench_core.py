"""Throughput benchmarks of the substrate itself.

Not paper results -- these track the toolkit's own performance: ISA
simulation rate, assembler speed, gate-level simulation rate, netlist
construction and STA.
"""

import numpy as np
import pytest

from repro.asm import Assembler, assemble
from repro.isa import get_isa
from repro.kernels.kernel import Target
from repro.kernels.suite import get_kernel
from repro.sim import Simulator, run_program


class TestIsaSimulation:
    def test_simulator_throughput(self, benchmark):
        """Instructions per second of the functional simulator."""
        isa = get_isa("flexicore4")
        program = assemble(
            "loop: load 0\naddi 1\nstore 2\nxor 2\nstore 1\n"
            "nandi 0\nbrn loop\n",
            isa,
        )

        def run_10k():
            simulator = Simulator(isa, program,
                                  input_fn=lambda: 5)
            return simulator.run(max_cycles=10_000).instructions

        instructions = benchmark(run_10k)
        assert instructions == 10_000

    def test_xorshift_full_period(self, benchmark):
        """One full 255-byte PRNG period on the base ISA (incl. MMU)."""
        target = Target.named("flexicore4")
        kernel = get_kernel("xorshift8")
        program = kernel.program(target)

        def full_period():
            result, outputs = kernel.run(target, [0] * 255)
            return outputs

        outputs = benchmark.pedantic(full_period, rounds=1, iterations=1)
        assert len(outputs) == 510


class TestAssembler:
    def test_assemble_calculator(self, benchmark):
        target = Target.named("flexicore4")
        kernel = get_kernel("calculator")
        source = kernel.source(target)
        assembler = Assembler(target.isa, target.library)
        program = benchmark(assembler.assemble, source)
        assert program.static_instructions > 100


class TestGateLevel:
    def test_netlist_construction(self, benchmark):
        from repro.netlist.cores import build_flexicore4

        netlist = benchmark(build_flexicore4)
        assert netlist.gate_count > 200

    def test_gate_simulation_rate(self, benchmark):
        from repro.netlist.cores import build_flexicore4
        from repro.netlist.sim import GateLevelSimulator

        netlist = build_flexicore4()

        def run_200_cycles():
            sim = GateLevelSimulator(netlist)
            sim.set_inputs({"instr": 0x43, "iport": 5})  # addi 3
            for _ in range(200):
                sim.step()
            return sim.cycles

        assert benchmark(run_200_cycles) == 200

    def test_static_timing_analysis(self, benchmark):
        from repro.netlist.cores import build_flexicore8
        from repro.netlist.sta import analyze

        netlist = build_flexicore8()
        report = benchmark(analyze, netlist)
        assert report.critical_delay_units > 10


class TestFabrication:
    def test_wafer_fabrication_and_probe(self, benchmark):
        from repro.fab import FC4_WAFER, fabricate_wafer
        from repro.netlist.cores import build_flexicore4

        netlist = build_flexicore4()

        def one_wafer():
            rng = np.random.default_rng(0)
            wafer = fabricate_wafer(netlist, FC4_WAFER, rng)
            return wafer.probe(4.5, rng)

        probe = benchmark(one_wafer)
        assert len(probe.records) > 100
