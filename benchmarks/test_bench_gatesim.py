"""Gate-level simulation backend benchmark: the 20-fault campaign.

The acceptance property of the compiled bit-parallel backend: the
standard 20-fault FlexiCore4 injection campaign -- one 64-lane batched
run -- is at least 10x faster than the interpreted reference, which
cross-checks the 20 faults one serial run at a time.  Both campaigns
must produce identical verdicts.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): single repetition
with a reduced instruction budget and no speedup threshold -- it checks
that the campaign runs and the backends agree, not how fast the runner
machine is.  Run locally with ``pytest benchmarks/test_bench_gatesim.py
-s`` for the timing report.
"""

import os
import time

import numpy as np

from benchmarks.conftest import print_result
from repro.fab.testing import fault_injection_study
from repro.isa import get_isa
from repro.netlist.cores import build_flexicore4

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
FAULTS = 20
MAX_INSTRUCTIONS = 60 if SMOKE else 300
ROUNDS = 1 if SMOKE else 3


def _campaign(netlist, isa, backend, seed=2022):
    """The Section 4.1 fault campaign with a fixed sampling seed, so
    both backends draw the same inputs and the same fault sites."""
    rng = np.random.default_rng(seed)
    return fault_injection_study(
        netlist, isa, rng, faults=FAULTS,
        max_instructions=MAX_INSTRUCTIONS, backend=backend,
    )


class TestFaultCampaignSpeedup:
    def test_compiled_campaign_is_10x_faster(self):
        """Acceptance: batched lanes beat the serial per-fault loop 10x."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")

        started = time.perf_counter()
        interpreted = _campaign(netlist, isa, "interpreted")
        interpreted_s = time.perf_counter() - started

        started = time.perf_counter()
        compiled = _campaign(netlist, isa, "compiled")
        compiled_s = time.perf_counter() - started

        assert interpreted.injected == compiled.injected == FAULTS
        assert compiled.details == interpreted.details
        assert compiled.coverage == interpreted.coverage

        ratio = interpreted_s / compiled_s
        if not SMOKE:
            assert ratio >= 10.0, (interpreted_s, compiled_s)
        print_result(
            f"Gate-sim backend speedup ({FAULTS}-fault campaign, "
            f"FlexiCore4, {MAX_INSTRUCTIONS} instructions)",
            f"interpreted {interpreted_s * 1e3:8.1f} ms "
            f"({FAULTS} serial runs)\n"
            f"compiled    {compiled_s * 1e3:8.1f} ms "
            f"(1 batched 64-lane run)\n"
            f"ratio       {ratio:8.1f}x (acceptance: >= 10x"
            f"{', smoke: unchecked' if SMOKE else ''})\n"
            f"coverage    {compiled.coverage:8.0%} "
            f"({compiled.detected}/{compiled.injected} detected)",
        )

    def test_compiled_campaign_bench(self, benchmark):
        """Steady-state cost of the batched compiled campaign."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        study = benchmark.pedantic(
            lambda: _campaign(netlist, isa, "compiled"),
            rounds=ROUNDS, iterations=1,
        )
        assert study.injected == FAULTS
        assert study.coverage >= 0.5

    def test_interpreted_campaign_bench(self, benchmark):
        """Reference cost of the serial interpreted campaign (recorded
        in the same benchmark JSON for the speedup to be computable
        from artifacts alone)."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        study = benchmark.pedantic(
            lambda: _campaign(netlist, isa, "interpreted"),
            rounds=ROUNDS, iterations=1,
        )
        assert study.injected == FAULTS
