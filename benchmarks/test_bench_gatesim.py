"""Gate-level simulation backend benchmarks.

Two acceptance properties, one per packed backend:

- **Compiled vs interpreted** (the 20-fault campaign): one 64-lane
  batched run is at least 10x faster than the interpreted reference,
  which cross-checks the 20 faults one serial run at a time.
- **Vector vs compiled** (the wafer-scale campaign): a multi-thousand
  lane campaign through the vector backend -- every lane advanced by
  one NumPy settle pass -- is at least 10x faster than the same
  campaign chunked through 64-lane compiled runs.

Both comparisons require bit-identical results before any timing
counts.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): single repetition
with reduced lane/instruction budgets and no speedup thresholds -- it
checks that the campaigns run and the backends agree, not how fast the
runner machine is.  Run locally with
``pytest benchmarks/test_bench_gatesim.py -s`` for the timing report.

Set ``REPRO_BENCH_GATESIM_JSON=<path>`` to emit a machine-readable
``BENCH_GATESIM.json`` summary (CI uploads it with the obs artifacts).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import print_result
from repro.fab.testing import (
    directed_program,
    fault_injection_study,
    sample_fault_sites,
)
from repro.isa import get_isa
from repro.netlist.cores import build_flexicore4
from repro.netlist.verify import run_cross_check_batch

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
FAULTS = 20
MAX_INSTRUCTIONS = 60 if SMOKE else 300
ROUNDS = 1 if SMOKE else 3

#: Wafer-scale campaign: lanes per run and the acceptance threshold.
#: 4096 lanes is ~33 wafers of dies (or an 8x deeper fault campaign
#: than the whole fc4 site list); well past the >= 1024-lane floor the
#: acceptance criterion names.
WAFER_LANES = 256 if SMOKE else 4096
WAFER_INSTRUCTIONS = 20 if SMOKE else 120
WAFER_ACCEPTANCE = 10.0


def _campaign(netlist, isa, backend, seed=2022):
    """The Section 4.1 fault campaign with a fixed sampling seed, so
    both backends draw the same inputs and the same fault sites."""
    rng = np.random.default_rng(seed)
    return fault_injection_study(
        netlist, isa, rng, faults=FAULTS,
        max_instructions=MAX_INSTRUCTIONS, backend=backend,
    )


class TestFaultCampaignSpeedup:
    def test_compiled_campaign_is_10x_faster(self):
        """Acceptance: batched lanes beat the serial per-fault loop 10x."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")

        started = time.perf_counter()
        interpreted = _campaign(netlist, isa, "interpreted")
        interpreted_s = time.perf_counter() - started

        started = time.perf_counter()
        compiled = _campaign(netlist, isa, "compiled")
        compiled_s = time.perf_counter() - started

        assert interpreted.injected == compiled.injected == FAULTS
        assert compiled.details == interpreted.details
        assert compiled.coverage == interpreted.coverage

        ratio = interpreted_s / compiled_s
        if not SMOKE:
            assert ratio >= 10.0, (interpreted_s, compiled_s)
        print_result(
            f"Gate-sim backend speedup ({FAULTS}-fault campaign, "
            f"FlexiCore4, {MAX_INSTRUCTIONS} instructions)",
            f"interpreted {interpreted_s * 1e3:8.1f} ms "
            f"({FAULTS} serial runs)\n"
            f"compiled    {compiled_s * 1e3:8.1f} ms "
            f"(1 batched 64-lane run)\n"
            f"ratio       {ratio:8.1f}x (acceptance: >= 10x"
            f"{', smoke: unchecked' if SMOKE else ''})\n"
            f"coverage    {compiled.coverage:8.0%} "
            f"({compiled.detected}/{compiled.injected} detected)",
        )

    def test_compiled_campaign_bench(self, benchmark):
        """Steady-state cost of the batched compiled campaign."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        study = benchmark.pedantic(
            lambda: _campaign(netlist, isa, "compiled"),
            rounds=ROUNDS, iterations=1,
        )
        assert study.injected == FAULTS
        assert study.coverage >= 0.5

    def test_interpreted_campaign_bench(self, benchmark):
        """Reference cost of the serial interpreted campaign (recorded
        in the same benchmark JSON for the speedup to be computable
        from artifacts alone)."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        study = benchmark.pedantic(
            lambda: _campaign(netlist, isa, "interpreted"),
            rounds=ROUNDS, iterations=1,
        )
        assert study.injected == FAULTS


def _wafer_campaign(netlist):
    """One fixed wafer-scale fault list: mostly single-fault lanes
    cycling over every distinct fc4 site, a healthy lane every ninth
    (die with no defects), drawn once so both backends see the same
    campaign."""
    rng = np.random.default_rng(7)
    sites = sample_fault_sites(netlist, rng, 10_000)  # clamps to all
    faults = [
        None if lane % 9 == 0 else sites[lane % len(sites)]
        for lane in range(WAFER_LANES)
    ]
    inputs = [int(value) for value in rng.integers(0, 16, size=64)]
    return faults, inputs


def _run_wafer(backend, netlist, isa, program, inputs, faults):
    return run_cross_check_batch(
        netlist, isa, program, inputs=inputs,
        max_instructions=WAFER_INSTRUCTIONS, faults=faults,
        backend=backend,
    )


class TestWaferScaleSpeedup:
    def test_vector_campaign_is_10x_faster_than_chunked(self):
        """Acceptance: one vector run beats the 64-lane chunk loop 10x
        at wafer scale, with lane-for-lane identical results."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        program = directed_program(isa)
        faults, inputs = _wafer_campaign(netlist)

        # Warm both paths once (kernel specialization, predecode
        # tables) and use the warmup outputs as the equivalence check:
        # CrossCheckResult equality covers mismatch counts, the exact
        # first-mismatch text, and both toggle statistics per lane.
        compiled = _run_wafer(
            "compiled", netlist, isa, program, inputs, faults
        )
        vectored = _run_wafer(
            "vector", netlist, isa, program, inputs, faults
        )
        assert len(vectored) == WAFER_LANES
        assert vectored == compiled

        def best_seconds(backend):
            best = float("inf")
            for _ in range(ROUNDS):
                started = time.perf_counter()
                _run_wafer(
                    backend, netlist, isa, program, inputs, faults
                )
                best = min(best, time.perf_counter() - started)
            return best

        compiled_s = best_seconds("compiled")
        vector_s = best_seconds("vector")
        ratio = compiled_s / vector_s
        if not SMOKE:
            assert ratio >= WAFER_ACCEPTANCE, (compiled_s, vector_s)

        detected = sum(1 for lane in vectored if not lane.passed)
        payload = {
            "lanes": WAFER_LANES,
            "instructions": WAFER_INSTRUCTIONS,
            "chunks_compiled": -(-WAFER_LANES // 64),
            "compiled_s": compiled_s,
            "vector_s": vector_s,
            "speedup": ratio,
            "lanes_per_second_vector": WAFER_LANES / vector_s,
            "detected": detected,
            "acceptance": WAFER_ACCEPTANCE,
            "smoke": SMOKE,
        }
        artifact = os.environ.get("REPRO_BENCH_GATESIM_JSON")
        if artifact:
            with open(artifact, "w") as handle:
                json.dump(payload, handle, indent=2)
        print_result(
            f"Wafer-scale gate-sim speedup ({WAFER_LANES}-lane "
            f"campaign, FlexiCore4, {WAFER_INSTRUCTIONS} instructions)",
            f"compiled {compiled_s * 1e3:8.1f} ms "
            f"({payload['chunks_compiled']} chunked 64-lane runs)\n"
            f"vector   {vector_s * 1e3:8.1f} ms (1 run, "
            f"{payload['lanes_per_second_vector']:,.0f} lanes/s)\n"
            f"ratio    {ratio:8.1f}x (acceptance: >= "
            f"{WAFER_ACCEPTANCE:.0f}x"
            f"{', smoke: unchecked' if SMOKE else ''})\n"
            f"faulted  {detected:8d} of {WAFER_LANES} lanes caught",
        )

    def test_vector_campaign_bench(self, benchmark):
        """Steady-state cost of the single wafer-scale vector run."""
        netlist = build_flexicore4()
        isa = get_isa("flexicore4")
        program = directed_program(isa)
        faults, inputs = _wafer_campaign(netlist)
        results = benchmark.pedantic(
            lambda: _run_wafer(
                "vector", netlist, isa, program, inputs, faults
            ),
            rounds=ROUNDS, iterations=1,
        )
        assert len(results) == WAFER_LANES
