"""Adaptive DSE search benchmark.

Two acceptance properties over the same seeded space:

- **Search vs exhaustive**: the adaptive search's frontier weakly
  dominates the exhaustive grid's frontier on (area, yield-adjusted
  cost, energy) while spending at most 25% of the grid's evaluations.
- **Warm cache**: repeating the identical search against the same
  result cache answers at least 90% of its evaluations as cache hits.

Both runs score through the same engine jobs, so the exhaustive grid
scored after the search already reuses every design the search
touched.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): a tiny
single-fidelity space and budget -- it checks the loop runs, stays
deterministic, and re-warms from cache, not the 25% evaluation ratio
(a handful-sized space cannot show it).  Run locally with
``pytest benchmarks/test_bench_search.py -s`` for the full report.

Set ``REPRO_BENCH_SEARCH_JSON=<path>`` to emit a machine-readable
``BENCH_SEARCH.json`` summary (CI uploads it with the obs artifacts).
"""

import json
import os
import time

from benchmarks.conftest import print_result
from repro.dse.search import (
    SearchConfig,
    exhaustive,
    format_search_frontier,
    frontier_of,
    search,
    weakly_dominates,
)
from repro.dse.space import DesignSpace
from repro.engine import Engine

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: The benchmark space: every cheap-to-moderate feature gate crossed
#: with the single- and multi-cycle microarchitectures (130 genomes).
#: Smoke trims it to a 9-point space a CI shard scores in ~1 s.
SPACE = DesignSpace(
    operand_models=("acc", "ls"),
    microarchs=("SC",) if SMOKE else ("SC", "MC"),
    features=("adc", "shift", "flags") if SMOKE
    else ("adc", "shift", "flags", "mult", "xchg", "subr"),
    bus_bits=(0,),
)
BUDGET = 7 if SMOKE else 32
SEED = 2022
MAX_EVAL_RATIO = 0.25
MIN_WARM_HIT_RATIO = 0.9


def _config():
    if SMOKE:
        # Single fidelity: a 7-evaluation budget has no room for a
        # screen-then-promote ladder.
        return SearchConfig(budget=BUDGET, seed=SEED, population=6,
                            space=SPACE, screen_transactions=12,
                            screen_wafers=5)
    return SearchConfig(budget=BUDGET, seed=SEED, population=12,
                        space=SPACE)


class TestSearchVsExhaustive:
    def test_search_dominates_grid_at_quarter_cost(self, tmp_path):
        """Acceptance: the searched frontier covers the exhaustive
        frontier at <= 25% of the grid's evaluations."""
        config = _config()
        engine = Engine(jobs=4, cache=tmp_path)

        started = time.perf_counter()
        result = search(config, engine=engine)
        search_s = time.perf_counter() - started

        started = time.perf_counter()
        grid_scores = exhaustive(space=SPACE, config=config,
                                 engine=engine)
        grid_s = time.perf_counter() - started
        grid = frontier_of(grid_scores, config.objectives)

        searched = [entry.values for entry in result.frontier]
        missing = [
            name for name, values in grid
            if not any(weakly_dominates(found, values)
                       for found in searched)
        ]
        ratio = result.evaluations / len(grid_scores)

        assert not missing, (
            f"grid frontier points not dominated: {missing}"
        )
        if not SMOKE:
            assert ratio <= MAX_EVAL_RATIO, (
                f"search spent {result.evaluations} evaluations, "
                f"{ratio:.0%} of the {len(grid_scores)}-point grid"
            )

        # -- warm repeat: the same search replays from the cache.
        warm = search(config, engine=Engine(jobs=4, cache=tmp_path))
        assert warm.frontier_names() == result.frontier_names()
        hit_ratio = warm.cache_hits / warm.evaluations
        assert hit_ratio >= MIN_WARM_HIT_RATIO, (
            f"warm search answered only {hit_ratio:.0%} from cache"
        )

        payload = {
            "space_size": result.space_size,
            "budget": BUDGET,
            "seed": SEED,
            "objectives": list(config.objectives),
            "evaluations": result.evaluations,
            "generations": result.generations,
            "grid_evaluations": len(grid_scores),
            "eval_ratio": ratio,
            "max_eval_ratio": MAX_EVAL_RATIO,
            "search_s": search_s,
            "exhaustive_s": grid_s,
            "frontier": result.frontier_names(),
            "grid_frontier": [name for name, _ in grid],
            "warm_cache_hit_ratio": hit_ratio,
            "min_warm_hit_ratio": MIN_WARM_HIT_RATIO,
            "smoke": SMOKE,
        }
        artifact = os.environ.get("REPRO_BENCH_SEARCH_JSON")
        if artifact:
            with open(artifact, "w") as handle:
                json.dump(payload, handle, indent=2)
        print_result(
            f"Adaptive DSE search vs the exhaustive grid "
            f"({result.space_size}-point space, budget {BUDGET})",
            format_search_frontier(result) + "\n"
            f"grid     {len(grid_scores):4d} evaluations in "
            f"{grid_s:6.1f} s\n"
            f"search   {result.evaluations:4d} evaluations in "
            f"{search_s:6.1f} s ({ratio:.0%} of the grid"
            f"{', smoke: ratio unchecked' if SMOKE else ''})\n"
            f"warm     {hit_ratio:.0%} of the repeat answered "
            f"from cache",
        )
