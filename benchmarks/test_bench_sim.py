"""ISA-simulator fast-path benchmark: the Table 6 kernel suite.

The acceptance property of the predecoded dispatch: running the whole
kernel suite (pre-assembled, inputs pre-drawn, so only simulation is
measured) is at least 5x faster than the single-step reference loop,
with bit-identical results.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): single repetition
with a reduced transaction count and no speedup threshold -- it checks
that both paths run and agree, not how fast the runner machine is.
Run locally with ``pytest benchmarks/test_bench_sim.py -s`` for the
timing report.

Set ``REPRO_BENCH_SIM_JSON=<path>`` to emit a machine-readable
``BENCH_SIM.json`` summary (CI uploads it with the obs artifacts).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import print_result
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE
from repro.sim import clear_predecode_cache, run_program

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
TRANSACTIONS = 2 if SMOKE else 12
REPEATS = 1 if SMOKE else 3
#: Suite passes per timing sample (amortizes the clock resolution).
LOOPS = 1 if SMOKE else 5
ACCEPTANCE = 5.0


def suite_cases():
    """(kernel name, assembled program, inputs) for every suite kernel,
    prepared up front so the timed region is simulation only."""
    target = Target.named("flexicore4")
    rng = np.random.default_rng(2022)
    return [
        (
            kernel.name,
            kernel.program(target),
            kernel.generate_inputs(rng, TRANSACTIONS),
        )
        for kernel in SUITE
    ]


def run_suite(cases, fastpath):
    """One pass over the suite; returns total retired instructions."""
    total = 0
    for _, program, inputs in cases:
        result, _ = run_program(
            program, inputs=list(inputs), fastpath=fastpath,
        )
        total += result.instructions
    return total


def _best_seconds(cases, fastpath):
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(LOOPS):
            run_suite(cases, fastpath)
        best = min(best, (time.perf_counter() - started) / LOOPS)
    return best


class TestFastPathSpeedup:
    def test_fastpath_is_5x_faster(self):
        """Acceptance: predecoded dispatch beats the step loop 5x."""
        cases = suite_cases()
        clear_predecode_cache()
        # Warm both paths once: the first fast run builds the tables
        # (steady state is what DSE sweeps and fault campaigns see) and
        # the totals double as an equivalence check.
        fast_total = run_suite(cases, fastpath=True)
        ref_total = run_suite(cases, fastpath=False)
        assert fast_total == ref_total

        reference_s = _best_seconds(cases, fastpath=False)
        fastpath_s = _best_seconds(cases, fastpath=True)
        ratio = reference_s / fastpath_s
        if not SMOKE:
            assert ratio >= ACCEPTANCE, (reference_s, fastpath_s)

        payload = {
            "suite": [name for name, _, _ in cases],
            "transactions": TRANSACTIONS,
            "instructions_per_pass": ref_total,
            "reference_s": reference_s,
            "fastpath_s": fastpath_s,
            "speedup": ratio,
            "reference_ips": ref_total / reference_s,
            "fastpath_ips": fast_total / fastpath_s,
            "acceptance": ACCEPTANCE,
            "smoke": SMOKE,
        }
        artifact = os.environ.get("REPRO_BENCH_SIM_JSON")
        if artifact:
            with open(artifact, "w") as handle:
                json.dump(payload, handle, indent=2)
        print_result(
            f"ISA fast-path speedup (Table 6 suite, flexicore4, "
            f"{TRANSACTIONS} transactions, {ref_total} instructions)",
            f"reference {reference_s * 1e3:8.1f} ms "
            f"({payload['reference_ips']:,.0f} instr/s)\n"
            f"predecode {fastpath_s * 1e3:8.1f} ms "
            f"({payload['fastpath_ips']:,.0f} instr/s)\n"
            f"ratio     {ratio:8.1f}x (acceptance: >= {ACCEPTANCE:.0f}x"
            f"{', smoke: unchecked' if SMOKE else ''})",
        )

    def test_fastpath_suite_bench(self, benchmark):
        """Steady-state cost of the predecoded suite pass."""
        cases = suite_cases()
        run_suite(cases, fastpath=True)  # build tables outside the timer
        total = benchmark.pedantic(
            lambda: run_suite(cases, fastpath=True),
            rounds=REPEATS, iterations=1,
        )
        assert total > 0

    def test_reference_suite_bench(self, benchmark):
        """Reference cost of the step-loop suite pass (recorded in the
        same benchmark JSON so the speedup is computable from artifacts
        alone)."""
        cases = suite_cases()
        total = benchmark.pedantic(
            lambda: run_suite(cases, fastpath=False),
            rounds=REPEATS, iterations=1,
        )
        assert total > 0
