"""Regeneration benchmarks: one target per paper figure."""

import numpy as np
import pytest

from benchmarks.conftest import print_result
from repro.experiments import figures


class TestFigure6:
    def test_figure6(self, benchmark):
        from repro.fab import FC4_WAFER, fabricate_wafer
        from repro.netlist.cores import build_flexicore4

        netlist = build_flexicore4()

        def probe_wafer():
            rng = np.random.default_rng(6)
            wafer = fabricate_wafer(netlist, FC4_WAFER, rng)
            return wafer.probe(4.5, rng).error_map()

        error_map = benchmark(probe_wafer)
        assert any(errors == 0 for errors in error_map.values())
        print_result("Figure 6 (error wafer maps)",
                     figures.format_figure6())


class TestFigure7:
    def test_figure7(self, benchmark):
        from repro.fab import FC4_WAFER, fabricate_wafer
        from repro.netlist.cores import build_flexicore4

        netlist = build_flexicore4()

        def probe_currents():
            rng = np.random.default_rng(7)
            wafer = fabricate_wafer(netlist, FC4_WAFER, rng)
            return wafer.probe(4.5, rng).current_statistics()

        mean, std, rsd = benchmark(probe_currents)
        assert 0.05 < rsd < 0.3
        print_result("Figure 7 (current wafer maps)",
                     figures.format_figure7())


class TestFigure8:
    def test_figure8(self, benchmark):
        def kernel_evaluation():
            figures.figure8.cache_clear()
            return figures.figure8()

        data = benchmark.pedantic(kernel_evaluation, rounds=1,
                                  iterations=1)
        assert data["rows"]["Calculator (mul)"]["time_ms"] > \
            data["rows"]["Thresholding"]["time_ms"]
        print_result("Figure 8 (kernel latency and energy)",
                     figures.format_figure8())


class TestFigure9:
    def test_figure9(self, benchmark):
        from repro.dse.features import feature_sweep

        def sweep():
            return feature_sweep()

        base, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert len(reports) == 8
        print_result("Figure 9 (extension area vs code size)",
                     figures.format_figure9())


class TestFigure10:
    def test_figure10(self, benchmark):
        data = benchmark.pedantic(figures.figure10, rounds=1,
                                  iterations=1)
        assert data["by_feature"]["shift"]["IntAvg"] < 0.6
        print_result("Figure 10 (per-benchmark code size)",
                     figures.format_figure10())


class TestFigure11:
    def test_figure11(self, benchmark):
        def evaluate():
            figures._dse_wide.cache_clear()
            return figures.figure11()

        data = benchmark.pedantic(evaluate, rounds=1, iterations=1)
        assert data["energy"]["LS P"]["Avg"] < 1.0
        print_result("Figure 11 (DSE performance and energy)",
                     figures.format_figure11())


class TestFigure12:
    def test_figure12(self, benchmark):
        rows = benchmark.pedantic(figures.figure12, rounds=1,
                                  iterations=1)
        assert rows["LS P"]["area"] > rows["Acc SC"]["area"]
        print_result("Figure 12 (area vs code size)",
                     figures.format_figure12())


class TestFigure13:
    def test_figure13(self, benchmark):
        rows = benchmark.pedantic(figures.figure13, rounds=1,
                                  iterations=1)
        assert rows["LS SC"]["bus"] is None
        print_result("Figure 13 (relative energy, both buses)",
                     figures.format_figure13())
