"""Regeneration benchmarks: one target per paper table.

Each bench regenerates its table from scratch (clearing memoization so
the measured time is the real model cost) and prints the rows the paper
reports.  Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to
see the tables).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_result
from repro.experiments import tables


def _fresh_module_table(build):
    netlist = build()
    return tables._module_table(netlist)


class TestTable2:
    def test_table2(self, benchmark):
        from repro.netlist.cores import build_flexicore4

        rows = benchmark(_fresh_module_table, build_flexicore4)
        assert rows["memory"]["area_pct"] > 40
        print_result("Table 2 (FlexiCore4 module breakdown)",
                     tables.format_table2())


class TestTable3:
    def test_table3(self, benchmark):
        from repro.netlist.cores import build_flexicore8

        rows = benchmark(_fresh_module_table, build_flexicore8)
        assert rows["memory"]["area_pct"] > 25
        print_result("Table 3 (FlexiCore8 module breakdown)",
                     tables.format_table3())


class TestTable4:
    def test_table4(self, benchmark):
        rows = benchmark.pedantic(tables.table4, rounds=1, iterations=1)
        assert rows["FlexiCore8"]["devices"] > rows["FlexiCore4"]["devices"]
        print_result("Table 4 (FlexiCore comparison)",
                     tables.format_table4())


class TestTable5:
    def test_table5(self, benchmark):
        """The yield Monte Carlo; benchmarked at two wafers per core."""
        from repro.fab import FC4_WAFER, run_yield_study
        from repro.netlist.cores import build_flexicore4

        netlist = build_flexicore4()

        def monte_carlo():
            rng = np.random.default_rng(1)
            return run_yield_study(netlist, FC4_WAFER, rng, wafers=2)

        summary = benchmark.pedantic(monte_carlo, rounds=2, iterations=1)
        assert 0.6 < summary[4.5]["inclusion"] <= 1.0
        print_result("Table 5 (yield)", tables.format_table5())


class TestTable6:
    def test_table6(self, benchmark):
        from repro.kernels.kernel import Target
        from repro.kernels.suite import SUITE

        def assemble_suite():
            target = Target.named("flexicore4")
            return {k.name: k.program(target).static_instructions
                    for k in SUITE}

        counts = benchmark(assemble_suite)
        assert counts["Calculator"] > counts["Thresholding"]
        print_result("Table 6 (static instruction counts)",
                     tables.format_table6())


class TestTable7:
    def test_table7(self, benchmark):
        data = benchmark.pedantic(tables.table7, rounds=1, iterations=1)
        assert data["this_work"]["width"] == 4
        print_result("Table 7 (flexible-IC comparison)",
                     tables.format_table7())


class TestSection35:
    def test_msp430_comparison(self, benchmark):
        from repro.netlist.msp430 import section35_comparison

        comparison = benchmark(section35_comparison)
        assert comparison["area_ratio"] > 10
        print_result(
            "Section 3.5 (openMSP430 in IGZO)",
            f"area ratio  {comparison['area_ratio']:.1f}x (paper 30x)\n"
            f"power ratio {comparison['power_ratio']:.1f}x (paper 23x)",
        )
